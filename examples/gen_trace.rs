//! Generates a deterministic recorded-signal CSV for the single-input
//! example designs (`fir.sna`, `diffeq.sna`, …), printed to stdout:
//!
//! ```text
//! cargo run --release --example gen_trace            # 20000 rows
//! cargo run --release --example gen_trace -- 500     # 500 rows
//! cargo run --release --example gen_trace -- 500 0.9 # amplitude 0.9
//! ```
//!
//! The signal is a Weyl sequence (golden-ratio multiply, the same
//! generator the core trace tests use): uniform on `[-amp, amp]`,
//! reproducible bit-for-bit on every platform, no RNG state. Pipe it to
//! a file and feed it to the trace verbs:
//!
//! ```text
//! cargo run --release --example gen_trace > /tmp/x.csv
//! cargo run --release -- trace report examples/fir.sna --trace /tmp/x.csv
//! ```

fn main() {
    let mut args = std::env::args().skip(1);
    let rows: usize = args
        .next()
        .map(|s| s.parse().expect("rows must be an integer"))
        .unwrap_or(20_000);
    let amp: f64 = args
        .next()
        .map(|s| s.parse().expect("amplitude must be a number"))
        .unwrap_or(0.8);
    println!("x");
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for _ in 0..rows {
        state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        // Top 53 bits → uniform in [0, 1) exactly representable in f64.
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        println!("{}", amp * (2.0 * u - 1.0));
    }
}
