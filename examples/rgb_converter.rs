//! Error PDFs of the ITU RGB→YCrCb converter at a given word length —
//! the paper's Figure 3 in miniature.
//!
//! Run with: `cargo run --release --example rgb_converter`

use sna::core::{EngineKind, SnaAnalysis};
use sna::designs::rgb_to_ycrcb;
use sna::fixp::WlConfig;
use sna::hist::RenderOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = rgb_to_ycrcb();
    println!("{} — inputs ∈ [70, 100]\n", design.description);

    let w = 12;
    let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, w)?;
    let reports = SnaAnalysis::new(&design.dfg, &cfg, &design.input_ranges)
        .engine(EngineKind::Auto)
        .bins(64)
        .run()?;

    for (name, r) in &reports {
        println!(
            "output {name}: mean {:.3e}, σ {:.3e}, bounds [{:.3e}, {:.3e}]",
            r.mean,
            r.std_dev(),
            r.support.0,
            r.support.1
        );
        if let Some(pdf) = &r.histogram {
            print!(
                "{}",
                pdf.render_ascii(&RenderOptions {
                    max_rows: 12,
                    bar_width: 40,
                    ..RenderOptions::default()
                })
            );
        }
        println!();
    }

    // How the three channels compare: Cr/Cb carry the 0.5 coefficient
    // paths, so their noise profile differs from Y's.
    let y = &reports[0].1;
    let cb = &reports[1].1;
    println!(
        "SQNR for a unit-power signal: Y {:.1} dB, Cb {:.1} dB",
        y.sqnr_db(1.0),
        cb.sqnr_db(1.0)
    );
    Ok(())
}
