//! Designing to an SQNR target: find the smallest uniform word length that
//! meets a signal-to-quantization-noise requirement, validate the analytic
//! prediction against bit-true Monte-Carlo simulation, then recover area
//! with mixed word lengths.
//!
//! Run with: `cargo run --release --example fir_noise_budget`

use sna::core::NaModel;
use sna::designs::fir;
use sna::dfg::LtiOptions;
use sna::fixp::{monte_carlo_error, MonteCarloOptions, WlConfig};
use sna::hls::SynthesisConstraints;
use sna::opt::Optimizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = fir(11);
    let target_sqnr_db = 50.0;
    // Uniform input on [-1, 1]: signal power 1/3 at the filter input; the
    // low-pass keeps most of it, so use the input power as the reference.
    let signal_power = 1.0 / 3.0;

    println!("{} — target SQNR {target_sqnr_db} dB\n", design.description);

    let model = NaModel::build(&design.dfg, &design.input_ranges, &LtiOptions::default())?;
    let mut chosen = None;
    println!("{:>4} | {:>12} | {:>9}", "W", "noise power", "SQNR dB");
    println!("{}", "-".repeat(32));
    for w in 6..=24u8 {
        let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, w)?;
        let power = model.total_power(&design.dfg, &cfg);
        let sqnr = 10.0 * (signal_power / power).log10();
        println!("{w:>4} | {power:>12.3e} | {sqnr:>9.1}");
        if sqnr >= target_sqnr_db && chosen.is_none() {
            chosen = Some((w, cfg, power));
        }
    }
    let (w, cfg, predicted) = chosen.expect("24 bits always meets 50 dB here");
    println!("\nsmallest uniform W meeting the target: {w}");

    // Validate against bit-true simulation.
    let measured = monte_carlo_error(
        &design.dfg,
        &cfg,
        &design.input_ranges,
        &MonteCarloOptions {
            samples: 30_000,
            steps: 64,
            warmup: 16,
            ..Default::default()
        },
    )?;
    let measured_power = measured[0].power;
    println!(
        "predicted noise power {predicted:.3e}, measured {measured_power:.3e} (ratio {:.2})",
        predicted / measured_power
    );

    // Recover cost with mixed word lengths at the same noise budget.
    let opt = Optimizer::new(
        &design.dfg,
        &design.input_ranges,
        SynthesisConstraints::default(),
    )?;
    let fixed = opt.uniform(w)?;
    let tuned = opt.waterfill(fixed.noise_power)?;
    println!(
        "\nuniform  W={w}: area {:.0} µm², power {:.1} µW",
        fixed.cost.area_um2, fixed.cost.power_uw
    );
    println!(
        "waterfill:    area {:.0} µm², power {:.1} µW  (noise {:.3e} ≤ budget {:.3e})",
        tuned.cost.area_um2, tuned.cost.power_uw, tuned.noise_power, fixed.noise_power
    );
    Ok(())
}
