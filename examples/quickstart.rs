//! Quickstart: analyze the rounding noise of a small weighted-sum datapath
//! and print its error PDF.
//!
//! Run with: `cargo run --example quickstart`

use sna::core::{EngineKind, SnaAnalysis};
use sna::dfg::DfgBuilder;
use sna::fixp::WlConfig;
use sna::hist::RenderOptions;
use sna::interval::Interval;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // y = 0.3·x1 + 0.6·x2 − 0.1·x3
    let mut b = DfgBuilder::new();
    let x1 = b.input("x1");
    let x2 = b.input("x2");
    let x3 = b.input("x3");
    let t1 = b.mul_const(0.3, x1);
    let t2 = b.mul_const(0.6, x2);
    let t3 = b.mul_const(0.1, x3);
    let s = b.add(t1, t2);
    let y = b.sub(s, t3);
    b.output("y", y);
    let dfg = b.build()?;

    let ranges = vec![Interval::new(-1.0, 1.0)?; 3];

    println!("datapath: y = 0.3·x1 + 0.6·x2 − 0.1·x3, inputs ∈ [-1, 1]\n");
    println!(
        "{:>4} | {:>12} | {:>12} | {:>24}",
        "W", "mean", "std dev", "guaranteed bounds"
    );
    println!("{}", "-".repeat(64));
    for w in [8u8, 12, 16] {
        let cfg = WlConfig::from_ranges(&dfg, &ranges, w)?;
        let reports = SnaAnalysis::new(&dfg, &cfg, &ranges)
            .engine(EngineKind::Auto)
            .bins(128)
            .run()?;
        let r = &reports[0].1;
        println!(
            "{w:>4} | {:>12.3e} | {:>12.3e} | [{:>10.3e}, {:>10.3e}]",
            r.mean,
            r.std_dev(),
            r.support.0,
            r.support.1
        );
    }

    // Show the full error PDF at W = 8.
    let cfg = WlConfig::from_ranges(&dfg, &ranges, 8)?;
    let reports = SnaAnalysis::new(&dfg, &cfg, &ranges).bins(128).run()?;
    if let Some(pdf) = &reports[0].1.histogram {
        println!("\nerror PDF at W = 8:\n");
        print!(
            "{}",
            pdf.render_ascii(&RenderOptions {
                max_rows: 24,
                ..RenderOptions::default()
            })
        );
    }
    Ok(())
}
