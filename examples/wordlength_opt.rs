//! Noise-constrained word-length optimization of the FIR-25 case study —
//! one row of the paper's Table 4, live.
//!
//! Run with: `cargo run --release --example wordlength_opt`

use sna::designs::fir25;
use sna::hls::SynthesisConstraints;
use sna::opt::Optimizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = fir25();
    println!("{}\n", design.description);

    let opt = Optimizer::new(
        &design.dfg,
        &design.input_ranges,
        SynthesisConstraints::default(),
    )?;

    let w = 12;
    let fixed = opt.uniform(w)?;
    println!(
        "fixed W={w}:   area {:>9.0} µm², power {:>9.1} µW, latency {:>4} cycles, noise {:.3e}",
        fixed.cost.area_um2, fixed.cost.power_uw, fixed.cost.latency_cycles, fixed.noise_power
    );

    // Optimize with the uniform design's noise as the constraint.
    let tuned = opt.greedy(fixed.noise_power, w + 8)?;
    println!(
        "optimized:   area {:>9.0} µm², power {:>9.1} µW, latency {:>4} cycles, noise {:.3e}",
        tuned.cost.area_um2, tuned.cost.power_uw, tuned.cost.latency_cycles, tuned.noise_power
    );

    let imp = |a: f64, b: f64| 100.0 * (a - b) / a;
    println!(
        "improvement: area {:.1}%, power {:.1}%, latency {:.1}%",
        imp(fixed.cost.area_um2, tuned.cost.area_um2),
        imp(fixed.cost.power_uw, tuned.cost.power_uw),
        imp(
            fixed.cost.latency_cycles as f64,
            tuned.cost.latency_cycles as f64
        )
    );

    // Show the mixed word-length assignment the optimizer found.
    let mut hist = std::collections::BTreeMap::new();
    for &wl in &tuned.word_lengths {
        *hist.entry(wl).or_insert(0usize) += 1;
    }
    println!("\nword-length histogram of the optimized design:");
    for (wl, count) in hist {
        println!("  {wl:>2} bits × {count}");
    }
    Ok(())
}
