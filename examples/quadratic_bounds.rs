//! The paper's quadratic example: compare IA, AA and SNA bounds, and watch
//! the SNA estimate converge as granularity grows (Tables 1–2 in miniature).
//!
//! Run with: `cargo run --release --example quadratic_bounds`

use sna::core::{CartesianEngine, UncertainInput};
use sna::interval::{AffineContext, Interval};

fn quadratic(v: &[Interval]) -> Interval {
    // y = a·x² + b·x + c with v = [x, a, b, c].
    v[1] * v[0].sqr() + v[2] * v[0] + v[3]
}

fn inputs(g: usize) -> Result<Vec<UncertainInput>, Box<dyn std::error::Error>> {
    Ok(vec![
        UncertainInput::uniform("x", -1.0, 1.0, g)?,
        UncertainInput::uniform("a", 9.0, 10.0, g)?,
        UncertainInput::uniform("b", -6.0, -4.0, g)?,
        UncertainInput::uniform("c", 6.0, 7.0, g)?,
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("y = a·x² + b·x + c,  x∈[-1,1], a∈[9,10], b∈[-6,-4], c∈[6,7]\n");

    // Interval arithmetic (Table 1, IA row).
    let x = Interval::new(-1.0, 1.0)?;
    let a = Interval::new(9.0, 10.0)?;
    let b = Interval::new(-6.0, -4.0)?;
    let c = Interval::new(6.0, 7.0)?;
    let ia = a * x.sqr() + b * x + c;
    println!("IA : y ∈ {ia}");

    // Affine arithmetic (Table 1, AA row): x² as an uncorrelated product.
    let ctx = AffineContext::new();
    let xa = ctx.from_interval(x);
    let aa_a = ctx.from_interval(a);
    let aa_b = ctx.from_interval(b);
    let aa_c = ctx.from_interval(c);
    let x2 = xa.mul(&xa.clone(), &ctx);
    let y = aa_a.mul(&x2, &ctx) + aa_b.mul(&xa, &ctx) + aa_c;
    println!(
        "AA : y = {:.1} ± {:.1}  ⇒  y ∈ {}",
        y.center(),
        y.radius(),
        y.to_interval()
    );

    // SNA at increasing granularity (Table 2).
    println!("\nSNA (Cartesian histogram method):");
    println!(
        "{:>4} | {:>9} | {:>9} | {:>9} | {:>9}",
        "g", "mean", "variance", "xl", "xh"
    );
    println!("{}", "-".repeat(52));
    for g in [2usize, 4, 8, 16, 32, 64] {
        let report = CartesianEngine::new(256).analyze(&inputs(g)?, quadratic)?;
        println!(
            "{g:>4} | {:>9.4} | {:>9.4} | {:>9.4} | {:>9.4}",
            report.mean - 6.5, // error around the AA centre, as in Table 2
            report.variance,
            report.support.0 - 6.5,
            report.support.1 - 6.5
        );
    }
    println!("\ntrue range: y ∈ [5, 23] (error ∈ [-1.5, 16.5] about centre 6.5)");
    Ok(())
}
