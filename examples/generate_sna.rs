//! Regenerates the `.sna` sources under `examples/` for the paper designs
//! whose coefficients are computed (FIR windowed sinc, diff-eq poles):
//!
//! ```text
//! cargo run --example generate_sna
//! ```
//!
//! Literals are printed with `{}` (shortest round-trip form), so the
//! generated text re-parses to bit-identical constants and the lowered
//! graphs simulate exactly like the `sna::designs` builders — the
//! equivalence tests in `crates/lang/tests/designs_equivalence.rs` hold
//! to `==`, not to a tolerance.

use std::fmt::Write as _;
use std::path::Path;

use sna::designs::{diff_eq_coefficients, fir_coefficients};

fn fir_sna(taps: usize) -> String {
    let h = fir_coefficients(taps);
    let mut out = String::new();
    writeln!(
        out,
        "# Design II — {taps}-tap direct-form low-pass FIR (windowed sinc, unit DC gain).\n\
         # Matches sna::designs::fir({taps}); regenerate with `cargo run --example generate_sna`.\n\
         input x in [-1, 1];"
    )
    .unwrap();
    for k in 1..taps {
        let prev = if k == 1 {
            "x".to_string()
        } else {
            format!("x{}", k - 1)
        };
        writeln!(out, "x{k} = delay {prev};").unwrap();
    }
    write!(out, "y = {}*x", h[0]).unwrap();
    for (k, &hk) in h[1..].iter().enumerate() {
        write!(out, "\n  + {}*x{}", hk, k + 1).unwrap();
    }
    out.push_str(";\noutput y;\n");
    out
}

fn diffeq_sna(order: usize) -> String {
    let (d, b0) = diff_eq_coefficients(order);
    let mut out = String::new();
    writeln!(
        out,
        "# Design I — order-{order} difference equation y[n] = b0·x[n] − Σ dk·y[n−k]\n\
         # (stable poles, unit DC gain). Matches sna::designs::diff_eq({order});\n\
         # regenerate with `cargo run --example generate_sna`.\n\
         input x in [-1, 1];\n\
         g = {b0}*x;"
    )
    .unwrap();
    writeln!(out, "t1 = delay y;").unwrap();
    for k in 2..=order {
        writeln!(out, "t{k} = delay t{};", k - 1).unwrap();
    }
    write!(out, "y = g").unwrap();
    for (k, &dk) in d.iter().enumerate() {
        write!(out, "\n  + {}*t{}", -dk, k + 1).unwrap();
    }
    out.push_str(";\noutput y;\n");
    out
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    for (name, text) in [("fir.sna", fir_sna(25)), ("diffeq.sna", diffeq_sna(18))] {
        let path = dir.join(name);
        std::fs::write(&path, &text).expect("write .sna file");
        println!("wrote {} ({} bytes)", path.display(), text.len());
    }
}
