//! Design-space exploration: sweep uniform word lengths over the RGB
//! converter, extract the Pareto front over (area, power, latency,
//! noise), and show the accuracy/cost trade curve a designer picks from.
//!
//! Run with: `cargo run --release --example design_space`

use sna::designs::rgb_to_ycrcb;
use sna::hls::SynthesisConstraints;
use sna::opt::Optimizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = rgb_to_ycrcb();
    println!("{} — uniform word-length sweep\n", design.description);

    let opt = Optimizer::new(
        &design.dfg,
        &design.input_ranges,
        SynthesisConstraints::default(),
    )?;
    let front = opt.pareto_sweep(6..=20)?;

    println!(
        "{:>4} | {:>10} | {:>9} | {:>7} | {:>11} | {:>9}",
        "W", "area µm²", "power µW", "cycles", "noise", "SQNR dB"
    );
    println!("{}", "-".repeat(66));
    let signal_power = 85.0f64.powi(2); // mid-scale video level
    for e in &front {
        let w = e.word_lengths.iter().max().unwrap();
        let sqnr = 10.0 * (signal_power / e.noise_power).log10();
        println!(
            "{w:>4} | {:>10.0} | {:>9.1} | {:>7} | {:>11.3e} | {:>9.1}",
            e.cost.area_um2, e.cost.power_uw, e.cost.latency_cycles, e.noise_power, sqnr
        );
    }
    println!(
        "\n{} non-dominated points (every sweep point survives: noise falls\n\
         and cost rises monotonically with W — the textbook trade curve).",
        front.len()
    );

    // Pick the cheapest point above 60 dB SQNR and refine it.
    if let Some(e) = front
        .iter()
        .find(|e| 10.0 * (signal_power / e.noise_power).log10() >= 60.0)
    {
        let w = *e.word_lengths.iter().max().unwrap();
        println!("\ncheapest ≥60 dB point: W = {w}; optimizing at its noise budget…");
        let tuned = opt.greedy(e.noise_power, w + 6)?;
        println!(
            "  fixed:     area {:>8.0}, power {:>8.1}, latency {}",
            e.cost.area_um2, e.cost.power_uw, e.cost.latency_cycles
        );
        println!(
            "  optimized: area {:>8.0}, power {:>8.1}, latency {}",
            tuned.cost.area_um2, tuned.cost.power_uw, tuned.cost.latency_cycles
        );
    }
    Ok(())
}
