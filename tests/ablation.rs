//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! * the mass-deposit policy of histogram arithmetic (exact push-forward
//!   vs the paper's basic uniform spread vs midpoint);
//! * granularity vs accuracy of the Cartesian engine;
//! * time-unrolling as an alternative route to sequential-noise analysis.

use sna::core::{CartesianEngine, SymbolicEngine, SymbolicOptions, UncertainInput};
use sna::dfg::DfgBuilder;
use sna::fixp::WlConfig;
use sna::hist::{DepositPolicy, Histogram};
use sna::interval::Interval;

fn quadratic(v: &[Interval]) -> Interval {
    v[1] * v[0].sqr() + v[2] * v[0] + v[3]
}

fn quadratic_inputs(g: usize) -> Vec<UncertainInput> {
    vec![
        UncertainInput::uniform("x", -1.0, 1.0, g).unwrap(),
        UncertainInput::uniform("a", 9.0, 10.0, g).unwrap(),
        UncertainInput::uniform("b", -6.0, -4.0, g).unwrap(),
        UncertainInput::uniform("c", 6.0, 7.0, g).unwrap(),
    ]
}

/// Monte-Carlo reference histogram of the quadratic's output.
fn quadratic_mc(samples: usize, bins: usize) -> Histogram {
    let mut state: u64 = 0x1234_5678_9ABC_DEF0;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        z as f64 / u64::MAX as f64
    };
    let values: Vec<f64> = (0..samples)
        .map(|_| {
            let x = -1.0 + 2.0 * next();
            let a = 9.0 + next();
            let b = -6.0 + 2.0 * next();
            let c = 6.0 + next();
            a * x * x + b * x + c
        })
        .collect();
    Histogram::from_samples(values, bins).unwrap()
}

/// The exact trapezoid deposit yields a PDF at least as close to ground
/// truth as the paper's basic uniform deposit, at equal granularity; the
/// midpoint deposit trades soundness for sharpness.
#[test]
fn deposit_policy_ablation_on_the_quadratic() {
    let reference = quadratic_mc(400_000, 64);
    let mut distances = Vec::new();
    for policy in [DepositPolicy::Uniform, DepositPolicy::Midpoint] {
        let report = CartesianEngine::new(64)
            .with_deposit(policy)
            .analyze(&quadratic_inputs(16), quadratic)
            .unwrap();
        let pdf = report.histogram.unwrap();
        distances.push((policy, pdf.kolmogorov_distance(&reference)));
    }
    // Both discretizations land close to ground truth at g=16...
    for &(policy, d) in &distances {
        assert!(d < 0.15, "{policy:?}: KS distance {d}");
    }
    // ...and the uniform (outer) policy has sound support while midpoint
    // does not: checked in the bench harness tests; here we check the
    // ordering of spread (midpoint under-disperses).
    let outer = CartesianEngine::new(64)
        .analyze(&quadratic_inputs(16), quadratic)
        .unwrap();
    let inner = CartesianEngine::new(64)
        .with_deposit(DepositPolicy::Midpoint)
        .analyze(&quadratic_inputs(16), quadratic)
        .unwrap();
    assert!(inner.variance <= outer.variance);
}

/// Accuracy improves monotonically with granularity (the paper's central
/// efficiency/precision trade-off), measured as KS distance to a
/// Monte-Carlo reference.
#[test]
fn granularity_accuracy_tradeoff() {
    let reference = quadratic_mc(400_000, 64);
    let mut last = f64::INFINITY;
    for g in [4usize, 8, 16, 32] {
        let report = CartesianEngine::new(64)
            .analyze(&quadratic_inputs(g), quadratic)
            .unwrap();
        let d = report.histogram.unwrap().kolmogorov_distance(&reference);
        assert!(
            d <= last + 0.01,
            "KS distance must not grow with granularity: g={g}, {d} vs {last}"
        );
        last = d;
    }
    assert!(last < 0.06, "g=32 should be close to ground truth: {last}");
}

/// Unrolling + the symbolic engine gives per-step transient noise of an
/// IIR, converging to the LTI engine's steady-state prediction.
#[test]
fn transient_noise_via_unrolling_converges_to_steady_state() {
    // One-pole IIR y = x + 0.5·y[n-1].
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let fb = b.delay_placeholder();
    let t = b.mul_const(0.5, fb);
    let y = b.add(x, t);
    b.bind_delay(fb, y).unwrap();
    b.output("y", y);
    let g = b.build().unwrap();
    let ranges = vec![Interval::new(-0.4, 0.4).unwrap()];

    // Steady state from the LTI engine.
    let cfg = WlConfig::from_ranges(&g, &ranges, 12).unwrap();
    let steady = sna::core::SnaAnalysis::new(&g, &cfg, &ranges)
        .engine(sna::core::EngineKind::Lti)
        .bins(64)
        .run()
        .unwrap()[0]
        .1
        .variance;

    // Transient from the unrolled graph + symbolic engine.
    let steps = 12;
    let unrolled = g.unroll(steps).unwrap();
    let uranges = vec![Interval::new(-0.4, 0.4).unwrap(); steps];
    let ucfg = WlConfig::from_ranges(&unrolled, &uranges, 12).unwrap();
    let res = SymbolicEngine::new(SymbolicOptions {
        symbol_bins: 16,
        out_bins: 64,
        ..Default::default()
    })
    .analyze(&unrolled, &ucfg, &uranges)
    .unwrap();

    // Variance grows monotonically step over step…
    let vars: Vec<f64> = res.reports.iter().map(|(_, r)| r.variance).collect();
    for pair in vars.windows(2) {
        assert!(
            pair[1] >= pair[0] * 0.999,
            "transient variance must not shrink: {vars:?}"
        );
    }
    // …and approaches the steady-state value (pole 0.5 settles fast).
    let last = *vars.last().unwrap();
    let ratio = last / steady;
    assert!(
        (0.5..1.6).contains(&ratio),
        "transient end {last} vs steady {steady} (ratio {ratio})"
    );
}
