//! Cross-crate integration tests: the full SNA pipeline from datapath
//! construction through noise analysis, bit-true validation, synthesis
//! and word-length optimization.

use sna::core::{EngineKind, SnaAnalysis};
use sna::designs::{fir, rgb_to_ycrcb, Design};
use sna::fixp::{monte_carlo_error, MonteCarloOptions, WlConfig};
use sna::hls::{synthesize, SynthesisConstraints};
use sna::interval::Interval;
use sna::opt::Optimizer;

/// Every analysis engine's prediction must be consistent with bit-true
/// Monte-Carlo simulation on a real design (the RGB converter).
#[test]
fn sna_prediction_covers_bit_true_simulation_on_rgb() {
    let design = rgb_to_ycrcb();
    let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 10).unwrap();
    let predicted = SnaAnalysis::new(&design.dfg, &cfg, &design.input_ranges)
        .engine(EngineKind::Auto)
        .bins(96)
        .run()
        .unwrap();
    let measured = monte_carlo_error(
        &design.dfg,
        &cfg,
        &design.input_ranges,
        &MonteCarloOptions {
            samples: 30_000,
            ..Default::default()
        },
    )
    .unwrap();
    for ((name, p), m) in predicted.iter().zip(measured.iter()) {
        assert_eq!(name, &m.name);
        // Guaranteed bounds enclose every observed error.
        assert!(
            p.support.0 <= m.min && p.support.1 >= m.max,
            "{name}: predicted [{}, {}] vs observed [{}, {}]",
            p.support.0,
            p.support.1,
            m.min,
            m.max
        );
        // Variance agrees within a factor of two.
        let ratio = p.variance / m.variance;
        assert!(ratio > 0.5 && ratio < 2.0, "{name}: variance ratio {ratio}");
    }
}

/// The symbolic engine and the classical NA baseline agree on linear
/// combinational designs (both are exact there).
#[test]
fn symbolic_and_na_agree_on_rgb() {
    let design = rgb_to_ycrcb();
    let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 12).unwrap();
    let symbolic = SnaAnalysis::new(&design.dfg, &cfg, &design.input_ranges)
        .engine(EngineKind::Symbolic)
        .bins(32)
        .run()
        .unwrap();
    let na = SnaAnalysis::new(&design.dfg, &cfg, &design.input_ranges)
        .engine(EngineKind::Na)
        .run()
        .unwrap();
    for ((n1, s), (n2, a)) in symbolic.iter().zip(na.iter()) {
        assert_eq!(n1, n2);
        let ratio = s.variance / a.variance;
        assert!(
            (0.8..1.25).contains(&ratio),
            "{n1}: symbolic {} vs NA {}",
            s.variance,
            a.variance
        );
    }
}

/// All four paper designs run the full pipeline: range analysis, noise
/// model, synthesis, and a (cheap) optimization round.
#[test]
fn paper_suite_full_pipeline() {
    for design in Design::paper_suite() {
        let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 12)
            .unwrap_or_else(|e| panic!("{}: {e}", design.name));
        let imp = synthesize(&design.dfg, &cfg, &SynthesisConstraints::default())
            .unwrap_or_else(|e| panic!("{}: {e}", design.name));
        assert!(imp.cost.area_um2 > 0.0);
        let opt = Optimizer::new(
            &design.dfg,
            &design.input_ranges,
            SynthesisConstraints::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", design.name));
        let fixed = opt.uniform(10).unwrap();
        assert!(fixed.noise_power > 0.0, "{}", design.name);
    }
}

/// Noise power scales as ~2^-2W on every paper design (the paper's
/// tables show ×≈1/256 per 8 bits).
#[test]
fn noise_scales_with_wordlength_on_the_suite() {
    for design in Design::paper_suite() {
        let opt = Optimizer::new(
            &design.dfg,
            &design.input_ranges,
            SynthesisConstraints::default(),
        )
        .unwrap();
        let n8 = opt.uniform(8).unwrap().noise_power;
        let n16 = opt.uniform(16).unwrap().noise_power;
        let factor = n8 / n16;
        assert!(
            factor > 1.0e3 && factor < 1.0e7,
            "{}: noise factor over 8 bits = {factor:.3e}",
            design.name
        );
    }
}

/// Optimization under the uniform design's noise budget never increases
/// the weighted cost, for each design and reference word length.
#[test]
fn optimization_never_regresses_weighted_cost() {
    let design = fir(9);
    let opt = Optimizer::new(
        &design.dfg,
        &design.input_ranges,
        SynthesisConstraints::default(),
    )
    .unwrap();
    for w in [8u8, 12] {
        let fixed = opt.uniform(w).unwrap();
        let tuned = opt.greedy(fixed.noise_power, w + 6).unwrap();
        assert!(tuned.noise_power <= fixed.noise_power * (1.0 + 1e-12));
        assert!(
            tuned.weighted_cost <= fixed.weighted_cost * (1.0 + 1e-12),
            "W={w}: {} vs {}",
            tuned.weighted_cost,
            fixed.weighted_cost
        );
    }
}

/// The classic IA-vs-AA-vs-SNA story end-to-end through the facade crate.
#[test]
fn quadratic_story_through_facade() {
    use sna::core::{CartesianEngine, UncertainInput};

    let x = Interval::new(-1.0, 1.0).unwrap();
    let a = Interval::new(9.0, 10.0).unwrap();
    let b = Interval::new(-6.0, -4.0).unwrap();
    let c = Interval::new(6.0, 7.0).unwrap();
    let ia = a * x.sqr() + b * x + c;
    assert_eq!(ia, Interval::new(0.0, 23.0).unwrap());

    let inputs = vec![
        UncertainInput::uniform("x", -1.0, 1.0, 16).unwrap(),
        UncertainInput::uniform("a", 9.0, 10.0, 16).unwrap(),
        UncertainInput::uniform("b", -6.0, -4.0, 16).unwrap(),
        UncertainInput::uniform("c", 6.0, 7.0, 16).unwrap(),
    ];
    let report = CartesianEngine::new(128)
        .analyze(&inputs, |v| v[1] * v[0].sqr() + v[2] * v[0] + v[3])
        .unwrap();
    // SNA is strictly tighter than AA ([-10, 23]) and encloses [5, 23].
    assert!(report.support.0 > -10.0 && report.support.0 <= 5.0);
    assert!(report.support.1 >= 23.0 - 1e-9 && report.support.1 < 23.5);
    // And it produces a PDF, which IA/AA cannot.
    assert!(report.histogram.is_some());
}

/// Sequential designs: the LTI engine's bounds hold against long bit-true
/// simulations of Design I.
#[test]
fn design1_bounds_hold_in_simulation() {
    let design = sna::designs::diff_eq18();
    let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 14).unwrap();
    let predicted = SnaAnalysis::new(&design.dfg, &cfg, &design.input_ranges)
        .engine(EngineKind::Lti)
        .bins(64)
        .run()
        .unwrap();
    let measured = monte_carlo_error(
        &design.dfg,
        &cfg,
        &design.input_ranges,
        &MonteCarloOptions {
            samples: 8_000,
            steps: 200,
            warmup: 60,
            ..Default::default()
        },
    )
    .unwrap();
    let p = &predicted[0].1;
    let m = &measured[0];
    assert!(
        p.support.0 <= m.min && p.support.1 >= m.max,
        "bounds [{}, {}] vs observed [{}, {}]",
        p.support.0,
        p.support.1,
        m.min,
        m.max
    );
    let ratio = p.variance / m.variance;
    assert!(ratio > 0.5 && ratio < 3.0, "variance ratio {ratio}");
}
