//! Property-based tests for the fixed-point substrate.
//!
//! Invariants: quantization error bounds per rounding mode, bit-true `Fx`
//! arithmetic against exact rational computation, saturation ordering,
//! and format geometry.

use proptest::prelude::*;
use sna_fixp::{Format, Fx, Overflow, Quantizer, Rounding};

fn format_strategy() -> impl Strategy<Value = Format> {
    (2u8..32, 0u8..31).prop_filter_map("frac must fit", |(total, frac)| {
        Format::new(total, frac.min(total - 1)).ok()
    })
}

proptest! {
    #[test]
    fn nearest_error_is_at_most_half_step(fmt in format_strategy(), x in -1000.0..1000.0f64) {
        let q = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
        let v = q.quantize(x);
        if x >= fmt.min_value() && x <= fmt.max_value() {
            prop_assert!((v - x).abs() <= fmt.resolution() / 2.0 + 1e-12,
                         "x={x} v={v} fmt={fmt}");
        } else {
            // Saturated: clamped to the representable range.
            prop_assert!(v == fmt.min_value() || v == fmt.max_value());
        }
    }

    #[test]
    fn truncation_never_rounds_up(fmt in format_strategy(), x in -1000.0..1000.0f64) {
        let q = Quantizer::new(fmt, Rounding::Truncate, Overflow::Saturate);
        let v = q.quantize(x);
        if x >= fmt.min_value() && x <= fmt.max_value() {
            prop_assert!(v <= x + 1e-12);
            prop_assert!(x - v < fmt.resolution() + 1e-12);
        }
    }

    #[test]
    fn quantization_is_idempotent(fmt in format_strategy(), x in -100.0..100.0f64) {
        let q = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
        let once = q.quantize(x);
        prop_assert_eq!(once, q.quantize(once));
    }

    #[test]
    fn fx_add_is_exact_when_wide_enough(
        a in -100i64..100, b in -100i64..100, frac in 0u8..8)
    {
        // Values on the grid of Q(15-frac).frac; a 32-bit result keeps all
        // bits, so addition must be exact.
        let fmt = Format::new(16, frac).unwrap();
        let wide = Format::new(32, frac).unwrap();
        let qn = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
        let qw = Quantizer::new(wide, Rounding::Nearest, Overflow::Saturate);
        let fa = Fx::from_mantissa(a, fmt).unwrap();
        let fb = Fx::from_mantissa(b, fmt).unwrap();
        let sum = fa.add(&fb, &qw);
        prop_assert_eq!(sum.to_f64(), fa.to_f64() + fb.to_f64());
        let _ = qn;
    }

    #[test]
    fn fx_mul_matches_rational_arithmetic(
        a in -1000i64..1000, b in -1000i64..1000, fa in 0u8..10, fb in 0u8..10)
    {
        let fmt_a = Format::new(24, fa).unwrap();
        let fmt_b = Format::new(24, fb).unwrap();
        let out = Format::new(40, (fa + fb).min(39)).unwrap();
        let q = Quantizer::new(out, Rounding::Nearest, Overflow::Saturate);
        let x = Fx::from_mantissa(a, fmt_a).unwrap();
        let y = Fx::from_mantissa(b, fmt_b).unwrap();
        let p = x.mul(&y, &q);
        // Exact product is on the grid of fa+fb ≤ out.frac bits: exact.
        prop_assert_eq!(p.to_f64(), x.to_f64() * y.to_f64());
    }

    #[test]
    fn saturation_clamps_in_order(fmt in format_strategy(), x in -1.0e6..1.0e6f64, y in -1.0e6..1.0e6f64) {
        let q = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
        // Quantization with saturation preserves order.
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi) + 1e-12);
    }

    #[test]
    fn wrap_is_periodic(x in -100.0..100.0f64) {
        let fmt = Format::new(8, 2).unwrap(); // period 2^6 = 64 in value
        let q = Quantizer::new(fmt, Rounding::Nearest, Overflow::Wrap);
        let period = (fmt.max_value() - fmt.min_value()) + fmt.resolution();
        let a = q.quantize(x);
        let b = q.quantize(x + period);
        prop_assert!((a - b).abs() < 1e-9, "x={x}: {a} vs {b}");
    }

    #[test]
    fn format_geometry(fmt in format_strategy()) {
        prop_assert_eq!(
            fmt.int_bits() + fmt.frac_bits() + 1,
            fmt.word_length()
        );
        prop_assert!(fmt.min_value() < 0.0);
        prop_assert!(fmt.max_value() > 0.0);
        // Asymmetric two's complement: |min| = max + resolution.
        prop_assert!((fmt.min_value().abs() - fmt.max_value() - fmt.resolution()).abs() < 1e-12);
    }

    #[test]
    fn requantize_to_same_format_is_identity(
        m in -10_000i64..10_000, frac in 0u8..12)
    {
        let fmt = Format::new(20, frac).unwrap();
        let q = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
        let v = Fx::from_mantissa(m, fmt).unwrap();
        prop_assert_eq!(v.requantize(&q).mantissa(), m);
    }
}
