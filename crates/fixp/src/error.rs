use std::error::Error;
use std::fmt;

use sna_dfg::DfgError;
use sna_hist::HistError;

/// Errors produced by fixed-point construction and simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum FixpError {
    /// The requested format is not representable (word length out of the
    /// supported 2..=48 range, or more fractional bits than total bits
    /// allow).
    InvalidFormat {
        /// Requested total word length.
        total_bits: u8,
        /// Requested fractional bits.
        frac_bits: u8,
    },
    /// A value range cannot fit in the requested word length even with zero
    /// fractional bits.
    RangeTooWide {
        /// The range that had to be covered.
        lo: f64,
        /// Upper end of the range.
        hi: f64,
        /// The word length that was available.
        total_bits: u8,
    },
    /// A fixed-point division by zero.
    DivisionByZero,
    /// An underlying graph operation failed.
    Dfg(DfgError),
    /// An underlying histogram operation failed.
    Hist(HistError),
    /// The Monte-Carlo driver was asked for zero samples.
    NoSamples,
}

impl fmt::Display for FixpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixpError::InvalidFormat {
                total_bits,
                frac_bits,
            } => write!(
                f,
                "invalid fixed-point format: {total_bits} total bits, {frac_bits} fractional"
            ),
            FixpError::RangeTooWide { lo, hi, total_bits } => {
                write!(f, "range [{lo}, {hi}] does not fit in {total_bits} bits")
            }
            FixpError::DivisionByZero => write!(f, "fixed-point division by zero"),
            FixpError::Dfg(e) => write!(f, "graph error: {e}"),
            FixpError::Hist(e) => write!(f, "histogram error: {e}"),
            FixpError::NoSamples => write!(f, "monte-carlo requires at least one sample"),
        }
    }
}

impl Error for FixpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FixpError::Dfg(e) => Some(e),
            FixpError::Hist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for FixpError {
    fn from(e: DfgError) -> Self {
        FixpError::Dfg(e)
    }
}

impl From<HistError> for FixpError {
    fn from(e: HistError) -> Self {
        FixpError::Hist(e)
    }
}
