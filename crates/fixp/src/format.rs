use std::fmt;

use sna_interval::Interval;

use crate::FixpError;

/// Maximum supported word length.  48 bits keeps every representable value
/// and every pairwise product exactly representable in the `i128`
/// intermediates used by [`Fx`](crate::Fx), and exactly representable in
/// `f64` (mantissa 53 bits) for interoperability.
pub const MAX_WORD_LENGTH: u8 = 48;

/// A signed two's-complement fixed-point format: `total_bits` in all (one of
/// which is the sign), of which `frac_bits` are fractional.
///
/// Representable values are `m · 2^-frac_bits` for integer mantissas
/// `m ∈ [-2^(total-1), 2^(total-1) - 1]`.
///
/// # Example
///
/// ```
/// use sna_fixp::Format;
///
/// # fn main() -> Result<(), sna_fixp::FixpError> {
/// let fmt = Format::new(16, 8)?; // Q7.8
/// assert_eq!(fmt.resolution(), 1.0 / 256.0);
/// assert_eq!(fmt.int_bits(), 7);
/// assert!(fmt.max_value() > 127.99 && fmt.min_value() == -128.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Format {
    total_bits: u8,
    frac_bits: u8,
}

impl Format {
    /// Creates a format with `total_bits` word length (including sign) and
    /// `frac_bits` fractional bits.
    ///
    /// # Errors
    ///
    /// Returns [`FixpError::InvalidFormat`] unless
    /// `2 <= total_bits <= 48` and `frac_bits <= total_bits - 1`.
    pub fn new(total_bits: u8, frac_bits: u8) -> Result<Self, FixpError> {
        if !(2..=MAX_WORD_LENGTH).contains(&total_bits) || frac_bits > total_bits - 1 {
            return Err(FixpError::InvalidFormat {
                total_bits,
                frac_bits,
            });
        }
        Ok(Format {
            total_bits,
            frac_bits,
        })
    }

    /// Chooses the format of width `total_bits` whose integer part is just
    /// wide enough to hold `range`, maximizing fractional precision.
    ///
    /// # Errors
    ///
    /// Returns [`FixpError::RangeTooWide`] when even `frac_bits == 0` cannot
    /// cover the range, or [`FixpError::InvalidFormat`] for a bad width.
    pub fn from_range(range: Interval, total_bits: u8) -> Result<Self, FixpError> {
        if !(2..=MAX_WORD_LENGTH).contains(&total_bits) {
            return Err(FixpError::InvalidFormat {
                total_bits,
                frac_bits: 0,
            });
        }
        // Smallest i such that -2^i <= lo and hi <= 2^i (approximately; the
        // asymmetric two's-complement range is honoured by the check below).
        let mut int_bits = 0u8;
        loop {
            let frac = total_bits - 1 - int_bits;
            let fmt = Format {
                total_bits,
                frac_bits: frac,
            };
            if fmt.min_value() <= range.lo() && range.hi() <= fmt.max_value() {
                return Ok(fmt);
            }
            if int_bits == total_bits - 1 {
                return Err(FixpError::RangeTooWide {
                    lo: range.lo(),
                    hi: range.hi(),
                    total_bits,
                });
            }
            int_bits += 1;
        }
    }

    /// Total word length including the sign bit.
    pub fn word_length(&self) -> u8 {
        self.total_bits
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Number of integer bits (excluding sign).
    pub fn int_bits(&self) -> u8 {
        self.total_bits - 1 - self.frac_bits
    }

    /// The quantization step `2^-frac_bits`.
    pub fn resolution(&self) -> f64 {
        2.0f64.powi(-(self.frac_bits as i32))
    }

    /// Largest representable value.
    pub fn max_value(&self) -> f64 {
        (self.max_mantissa() as f64) * self.resolution()
    }

    /// Smallest (most negative) representable value.
    pub fn min_value(&self) -> f64 {
        (self.min_mantissa() as f64) * self.resolution()
    }

    pub(crate) fn max_mantissa(&self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    pub(crate) fn min_mantissa(&self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Returns this format widened/narrowed to a new total word length,
    /// keeping the integer part (so the same value range is covered).
    ///
    /// # Errors
    ///
    /// Returns [`FixpError::InvalidFormat`] when the integer part no longer
    /// fits.
    pub fn with_word_length(&self, total_bits: u8) -> Result<Format, FixpError> {
        let int_bits = self.int_bits();
        if total_bits < int_bits + 1 + 1 {
            // Need at least sign + int bits + 0 frac, and >= 2 total.
            return Err(FixpError::InvalidFormat {
                total_bits,
                frac_bits: 0,
            });
        }
        Format::new(total_bits, total_bits - 1 - int_bits)
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits(), self.frac_bits())
    }
}

/// Quantization (precision-loss) mode of a functional unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Rounding {
    /// Round to nearest (ties away from zero) — error in `[-q/2, q/2]`.
    #[default]
    Nearest,
    /// Truncate toward negative infinity (drop bits) — error in `(-q, 0]`.
    Truncate,
}

/// Overflow mode of a functional unit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Overflow {
    /// Clamp to the representable range.
    #[default]
    Saturate,
    /// Two's-complement wrap-around.
    Wrap,
}

/// A complete quantization rule: format + rounding + overflow.
///
/// # Example
///
/// ```
/// use sna_fixp::{Format, Overflow, Quantizer, Rounding};
///
/// # fn main() -> Result<(), sna_fixp::FixpError> {
/// let fmt = Format::new(4, 0)?; // integers -8..=7
/// let sat = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
/// assert_eq!(sat.quantize(100.0), 7.0);
/// let wrap = Quantizer::new(fmt, Rounding::Nearest, Overflow::Wrap);
/// assert_eq!(wrap.quantize(9.0), -7.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Quantizer {
    /// Target format.
    pub format: Format,
    /// Precision-loss mode.
    pub rounding: Rounding,
    /// Overflow mode.
    pub overflow: Overflow,
}

impl Quantizer {
    /// Bundles a format with rounding and overflow modes.
    pub fn new(format: Format, rounding: Rounding, overflow: Overflow) -> Self {
        Quantizer {
            format,
            rounding,
            overflow,
        }
    }

    /// Quantizes a real value to the representable grid, returning the
    /// represented value (exact in `f64` for word lengths ≤ 48).
    pub fn quantize(&self, x: f64) -> f64 {
        (self.mantissa_of(x) as f64) * self.format.resolution()
    }

    /// The mantissa the value maps to (rounding and overflow applied).
    pub fn mantissa_of(&self, x: f64) -> i64 {
        let scaled = x / self.format.resolution();
        let m = match self.rounding {
            Rounding::Nearest => scaled.round(),
            Rounding::Truncate => scaled.floor(),
        };
        self.handle_overflow_f64(m)
    }

    pub(crate) fn handle_overflow_f64(&self, m: f64) -> i64 {
        let max = self.format.max_mantissa();
        let min = self.format.min_mantissa();
        if m >= min as f64 && m <= max as f64 {
            return m as i64;
        }
        match self.overflow {
            Overflow::Saturate => {
                if m > max as f64 {
                    max
                } else {
                    min
                }
            }
            Overflow::Wrap => {
                let modulus = (max - min + 1) as f64; // 2^total
                let wrapped = (m - min as f64).rem_euclid(modulus) + min as f64;
                wrapped as i64
            }
        }
    }

    pub(crate) fn handle_overflow_i128(&self, m: i128) -> i64 {
        let max = self.format.max_mantissa() as i128;
        let min = self.format.min_mantissa() as i128;
        if m >= min && m <= max {
            return m as i64;
        }
        match self.overflow {
            Overflow::Saturate => {
                if m > max {
                    max as i64
                } else {
                    min as i64
                }
            }
            Overflow::Wrap => {
                let modulus = max - min + 1;
                ((m - min).rem_euclid(modulus) + min) as i64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_construction_and_validation() {
        assert!(Format::new(8, 7).is_ok());
        assert!(Format::new(8, 8).is_err());
        assert!(Format::new(1, 0).is_err());
        assert!(Format::new(49, 0).is_err());
        let f = Format::new(16, 12).unwrap();
        assert_eq!(f.word_length(), 16);
        assert_eq!(f.frac_bits(), 12);
        assert_eq!(f.int_bits(), 3);
        assert_eq!(format!("{f}"), "Q3.12");
    }

    #[test]
    fn representable_range() {
        let f = Format::new(8, 4).unwrap(); // Q3.4
        assert_eq!(f.resolution(), 0.0625);
        assert_eq!(f.max_value(), 7.9375);
        assert_eq!(f.min_value(), -8.0);
    }

    #[test]
    fn from_range_maximizes_precision() {
        let r = Interval::new(-1.0, 1.0).unwrap();
        let f = Format::from_range(r, 8).unwrap();
        // Needs 1 integer bit (since +1.0 > max of Q0.7 = 0.992…).
        assert_eq!(f.int_bits(), 1);
        let narrow = Interval::new(-0.5, 0.4).unwrap();
        let f = Format::from_range(narrow, 8).unwrap();
        assert_eq!(f.int_bits(), 0);
        let wide = Interval::new(-1e9, 1e9).unwrap();
        assert!(matches!(
            Format::from_range(wide, 8),
            Err(FixpError::RangeTooWide { .. })
        ));
    }

    #[test]
    fn with_word_length_preserves_int_bits() {
        let f = Format::new(8, 4).unwrap();
        let wide = f.with_word_length(16).unwrap();
        assert_eq!(wide.int_bits(), 3);
        assert_eq!(wide.frac_bits(), 12);
        assert!(f.with_word_length(4).is_err()); // 3 int bits don't fit
    }

    #[test]
    fn nearest_rounding() {
        let q = Quantizer::new(
            Format::new(8, 2).unwrap(),
            Rounding::Nearest,
            Overflow::Saturate,
        );
        assert_eq!(q.quantize(1.1), 1.0);
        assert_eq!(q.quantize(1.13), 1.25);
        assert_eq!(q.quantize(-1.13), -1.25);
        // Exactly representable values pass through.
        assert_eq!(q.quantize(2.75), 2.75);
    }

    #[test]
    fn truncation_rounds_toward_negative_infinity() {
        let q = Quantizer::new(
            Format::new(8, 2).unwrap(),
            Rounding::Truncate,
            Overflow::Saturate,
        );
        assert_eq!(q.quantize(1.9), 1.75);
        assert_eq!(q.quantize(-1.1), -1.25);
        assert_eq!(q.quantize(-0.01), -0.25);
    }

    #[test]
    fn saturation_clamps() {
        let q = Quantizer::new(
            Format::new(6, 2).unwrap(), // range [-8, 7.75]
            Rounding::Nearest,
            Overflow::Saturate,
        );
        assert_eq!(q.quantize(100.0), 7.75);
        assert_eq!(q.quantize(-100.0), -8.0);
    }

    #[test]
    fn wrap_is_modular() {
        let q = Quantizer::new(
            Format::new(4, 0).unwrap(), // integers -8..=7
            Rounding::Nearest,
            Overflow::Wrap,
        );
        assert_eq!(q.quantize(8.0), -8.0);
        assert_eq!(q.quantize(9.0), -7.0);
        assert_eq!(q.quantize(-9.0), 7.0);
        assert_eq!(q.quantize(16.0), 0.0);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let fmt = Format::new(12, 6).unwrap();
        let qn = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
        let qt = Quantizer::new(fmt, Rounding::Truncate, Overflow::Saturate);
        let step = fmt.resolution();
        let mut x = -30.0;
        while x < 30.0 {
            let en = qn.quantize(x) - x;
            assert!(en.abs() <= step / 2.0 + 1e-12, "nearest error at {x}");
            let et = qt.quantize(x) - x;
            assert!(
                et <= 0.0 + 1e-12 && et > -step - 1e-12,
                "trunc error at {x}"
            );
            x += 0.137;
        }
    }
}
