//! Monte-Carlo measurement of fixed-point output error against the `f64`
//! reference — the empirical ground truth ("Actual Values" in the paper's
//! Table 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sna_dfg::{Dfg, Simulator};
use sna_hist::Histogram;
use sna_interval::Interval;

use crate::{FixedSimulator, FixpError, WlConfig};

/// Options for [`monte_carlo_error`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonteCarloOptions {
    /// Number of random input vectors.
    pub samples: usize,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// Bins of the empirical error histogram.
    pub bins: usize,
    /// For sequential graphs: steps to simulate per sample trajectory
    /// (errors are collected after `warmup` steps).
    pub steps: usize,
    /// For sequential graphs: steps to discard at the start of each
    /// trajectory.
    pub warmup: usize,
}

impl Default for MonteCarloOptions {
    fn default() -> Self {
        MonteCarloOptions {
            samples: 100_000,
            seed: 0x5eed_cafe,
            bins: 64,
            steps: 64,
            warmup: 16,
        }
    }
}

/// Empirical error statistics of one output.
#[derive(Clone, Debug)]
pub struct OutputErrorStats {
    /// Output name (as declared on the graph).
    pub name: String,
    /// Mean error.
    pub mean: f64,
    /// Error variance.
    pub variance: f64,
    /// Smallest observed error.
    pub min: f64,
    /// Largest observed error.
    pub max: f64,
    /// Mean squared error (noise power).
    pub power: f64,
    /// Histogram of the observed errors.
    pub histogram: Histogram,
}

impl OutputErrorStats {
    fn from_samples(name: &str, samples: &[f64], bins: usize) -> Result<Self, FixpError> {
        if samples.is_empty() {
            return Err(FixpError::NoSamples);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = samples.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n;
        let power = samples.iter().map(|e| e * e).sum::<f64>() / n;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let histogram = Histogram::from_samples(samples.iter().copied(), bins)?;
        Ok(OutputErrorStats {
            name: name.to_string(),
            mean,
            variance,
            min,
            max,
            power,
            histogram,
        })
    }
}

/// Measures the output error `fixed − reference` of `dfg` under `config`
/// with uniformly distributed random inputs drawn from `input_ranges`.
///
/// Combinational graphs get one evaluation per sample; sequential graphs
/// are simulated for `opts.steps` cycles per sample with fresh random
/// inputs each cycle, collecting errors after `opts.warmup` (fixed-point
/// and reference simulators run in lock-step from reset).
///
/// # Errors
///
/// * [`FixpError::NoSamples`] when `opts.samples == 0`;
/// * simulation failures are propagated (division by zero, input count).
pub fn monte_carlo_error(
    dfg: &Dfg,
    config: &WlConfig,
    input_ranges: &[Interval],
    opts: &MonteCarloOptions,
) -> Result<Vec<OutputErrorStats>, FixpError> {
    if opts.samples == 0 {
        return Err(FixpError::NoSamples);
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let n_out = dfg.outputs().len();
    let mut errors: Vec<Vec<f64>> = vec![Vec::new(); n_out];
    let mut inputs = vec![0.0; dfg.n_inputs()];

    if dfg.is_combinational() {
        for _ in 0..opts.samples {
            draw(&mut rng, input_ranges, &mut inputs);
            let reference = dfg.evaluate(&inputs)?;
            let mut fixed_sim = FixedSimulator::new(dfg, config);
            let fixed = fixed_sim.step(&inputs)?;
            for (k, errs) in errors.iter_mut().enumerate() {
                errs.push(fixed[k] - reference[k]);
            }
        }
    } else {
        // Spread the sample budget over trajectories.
        let per_traj = (opts.steps - opts.warmup).max(1);
        let trajectories = opts.samples.div_ceil(per_traj);
        for _ in 0..trajectories {
            let mut ref_sim = Simulator::new(dfg);
            let mut fixed_sim = FixedSimulator::new(dfg, config);
            for step in 0..opts.steps {
                draw(&mut rng, input_ranges, &mut inputs);
                let reference = ref_sim.step(&inputs)?;
                let fixed = fixed_sim.step(&inputs)?;
                if step >= opts.warmup {
                    for (k, errs) in errors.iter_mut().enumerate() {
                        errs.push(fixed[k] - reference[k]);
                    }
                }
            }
        }
    }

    dfg.outputs()
        .iter()
        .zip(errors.iter())
        .map(|((name, _), errs)| OutputErrorStats::from_samples(name, errs, opts.bins))
        .collect()
}

fn draw(rng: &mut StdRng, ranges: &[Interval], out: &mut [f64]) {
    for (v, r) in out.iter_mut().zip(ranges.iter()) {
        *v = if r.is_point() {
            r.lo()
        } else {
            rng.gen_range(r.lo()..r.hi())
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Format, Overflow, Rounding};
    use sna_dfg::DfgBuilder;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn rounding_error_statistics_match_theory() {
        // y = x quantized to Q1.6: error ~ U[-q/2, q/2], var = q²/12.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        // A pass-through arithmetic node so the input quantization is the
        // only error source: y = x + 0.
        let zero = b.constant(0.0);
        let y = b.add(x, zero);
        b.output("y", y);
        let g = b.build().unwrap();
        let fmt = Format::new(8, 6).unwrap();
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        let stats = monte_carlo_error(
            &g,
            &cfg,
            &[iv(-1.0, 1.0)],
            &MonteCarloOptions {
                samples: 40_000,
                ..Default::default()
            },
        )
        .unwrap();
        let s = &stats[0];
        let qstep = fmt.resolution();
        assert!(s.mean.abs() < qstep / 10.0, "mean {}", s.mean);
        let expected_var = qstep * qstep / 12.0;
        assert!(
            (s.variance - expected_var).abs() < 0.15 * expected_var,
            "variance {} vs {expected_var}",
            s.variance
        );
        assert!(s.min >= -qstep / 2.0 - 1e-12 && s.max <= qstep / 2.0 + 1e-12);
    }

    #[test]
    fn truncation_biases_mean_negative() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let zero = b.constant(0.0);
        let y = b.add(x, zero);
        b.output("y", y);
        let g = b.build().unwrap();
        let fmt = Format::new(8, 6).unwrap();
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Truncate, Overflow::Saturate);
        let stats = monte_carlo_error(
            &g,
            &cfg,
            &[iv(-1.0, 1.0)],
            &MonteCarloOptions {
                samples: 20_000,
                ..Default::default()
            },
        )
        .unwrap();
        let q = fmt.resolution();
        // Truncation error mean ≈ -q/2.
        assert!(
            (stats[0].mean + q / 2.0).abs() < q / 8.0,
            "mean {}",
            stats[0].mean
        );
    }

    #[test]
    fn error_grows_as_word_length_shrinks() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(0.9, x);
        let y = b.add(t, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let mut powers = Vec::new();
        for w in [16u8, 12, 8] {
            let cfg = WlConfig::from_ranges(&g, &[iv(-1.0, 1.0)], w).unwrap();
            let stats = monte_carlo_error(
                &g,
                &cfg,
                &[iv(-1.0, 1.0)],
                &MonteCarloOptions {
                    samples: 5_000,
                    ..Default::default()
                },
            )
            .unwrap();
            powers.push(stats[0].power);
        }
        assert!(powers[0] < powers[1] && powers[1] < powers[2]);
        // Noise power scales roughly ×16 per 2 fewer fractional bits... at
        // least two orders of magnitude across 8 bits.
        assert!(powers[2] / powers[0] > 100.0);
    }

    #[test]
    fn sequential_errors_are_collected_after_warmup() {
        // One-pole IIR: errors accumulate through feedback.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let cfg = WlConfig::from_ranges(&g, &[iv(-1.0, 1.0)], 12).unwrap();
        let stats = monte_carlo_error(
            &g,
            &cfg,
            &[iv(-1.0, 1.0)],
            &MonteCarloOptions {
                samples: 4_000,
                steps: 48,
                warmup: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(stats[0].variance > 0.0);
        // Deterministic across runs with the same seed.
        let again = monte_carlo_error(
            &g,
            &cfg,
            &[iv(-1.0, 1.0)],
            &MonteCarloOptions {
                samples: 4_000,
                steps: 48,
                warmup: 16,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stats[0].variance, again[0].variance);
    }

    #[test]
    fn zero_samples_is_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.neg(x);
        b.output("y", y);
        let g = b.build().unwrap();
        let fmt = Format::new(8, 4).unwrap();
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        assert!(matches!(
            monte_carlo_error(
                &g,
                &cfg,
                &[iv(-1.0, 1.0)],
                &MonteCarloOptions {
                    samples: 0,
                    ..Default::default()
                }
            ),
            Err(FixpError::NoSamples)
        ));
    }
}
