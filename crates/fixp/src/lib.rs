//! Fixed-point arithmetic substrate: formats, bit-true simulation and
//! Monte-Carlo error measurement.
//!
//! The SNA paper optimizes the *word length* of every functional unit in a
//! datapath.  This crate supplies the ground truth that any such analysis
//! must be validated against:
//!
//! * [`Format`] — signed two's-complement fixed-point formats
//!   (total word length + fractional bits), with [`Rounding`] (round to
//!   nearest / truncate) and [`Overflow`] (saturate / wrap) modes, exactly
//!   the arithmetic-feature space enumerated in the paper's introduction;
//! * [`Fx`] — exact fixed-point values (integer mantissas, `i128`
//!   intermediates — no double-rounding through `f64`);
//! * [`WlConfig`] — a per-node format assignment for a
//!   [`sna_dfg::Dfg`], the object the word-length optimizer mutates;
//! * [`FixedSimulator`] — bit-true, cycle-accurate simulation of a DFG
//!   under a [`WlConfig`];
//! * [`monte_carlo_error`] — empirical output-error statistics (mean,
//!   variance, bounds, histogram) versus the `f64` reference, the
//!   "Actual Values" row of the paper's Table 2.
//!
//! # Example
//!
//! ```
//! use sna_fixp::{Format, Rounding, Quantizer, Overflow};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Quantizing 0.3 to Q1.6 (8 bits total: 1 sign, 1 integer, 6 fraction):
//! let fmt = Format::new(8, 6)?;
//! let q = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
//! let v = q.quantize(0.3);
//! assert!((v - 0.296875).abs() < 1e-12); // 19/64
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod format;
mod fx;
mod monte_carlo;
mod sim;

pub use error::FixpError;
pub use format::{Format, Overflow, Quantizer, Rounding, MAX_WORD_LENGTH};
pub use fx::Fx;
pub use monte_carlo::{monte_carlo_error, MonteCarloOptions, OutputErrorStats};
pub use sim::{FixedSimulator, WlConfig};
