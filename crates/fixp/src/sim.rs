use sna_dfg::{Dfg, DfgError, NodeId, Op, RangeOptions};
use sna_interval::Interval;

use crate::{FixpError, Format, Fx, Overflow, Quantizer, Rounding};

/// A per-node fixed-point format assignment for a [`Dfg`] — the object the
/// word-length optimizer mutates.
///
/// Every node carries a full [`Quantizer`] (format + rounding + overflow).
/// The usual construction path is [`WlConfig::from_ranges`]: run range
/// analysis, give every node the same word length `w`, and let each node's
/// integer part be just wide enough for its range (fraction gets the rest).
///
/// # Example
///
/// ```
/// use sna_dfg::DfgBuilder;
/// use sna_fixp::WlConfig;
/// use sna_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new();
/// let x = b.input("x");
/// let y = b.mul_const(0.5, x);
/// b.output("y", y);
/// let dfg = b.build()?;
/// let cfg = WlConfig::from_ranges(&dfg, &[Interval::new(-1.0, 1.0)?], 8)?;
/// assert_eq!(cfg.format(y).word_length(), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WlConfig {
    quantizers: Vec<Quantizer>,
}

impl WlConfig {
    /// Gives every node the same quantizer.
    pub fn uniform(dfg: &Dfg, format: Format, rounding: Rounding, overflow: Overflow) -> Self {
        WlConfig {
            quantizers: vec![Quantizer::new(format, rounding, overflow); dfg.len()],
        }
    }

    /// Uniform word length `w`, per-node integer bits from range analysis
    /// (round-to-nearest, saturating).
    ///
    /// Uses the interval fixpoint where it converges and falls back to the
    /// L1 impulse-response bound for linear feedback structures (see
    /// [`sna_dfg::Dfg::ranges_auto`]).
    ///
    /// # Errors
    ///
    /// Propagates range-analysis failures ([`FixpError::Dfg`]) and format
    /// failures when a node's range cannot fit in `w` bits
    /// ([`FixpError::RangeTooWide`]).
    pub fn from_ranges(dfg: &Dfg, input_ranges: &[Interval], w: u8) -> Result<Self, FixpError> {
        let ranges = dfg.ranges_auto(
            input_ranges,
            &RangeOptions::default(),
            &sna_dfg::LtiOptions::default(),
        )?;
        let quantizers = ranges
            .iter()
            .map(|&r| {
                Format::from_range(r, w)
                    .map(|f| Quantizer::new(f, Rounding::Nearest, Overflow::Saturate))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WlConfig { quantizers })
    }

    /// Like [`WlConfig::from_ranges`] but with a per-node word-length
    /// vector (`w[i]` for node `i`) — the optimizer's parameterization.
    ///
    /// # Errors
    ///
    /// Same as [`WlConfig::from_ranges`]; additionally
    /// [`FixpError::InvalidFormat`] when `w.len() != dfg.len()`.
    pub fn from_ranges_per_node(
        dfg: &Dfg,
        input_ranges: &[Interval],
        w: &[u8],
    ) -> Result<Self, FixpError> {
        if w.len() != dfg.len() {
            return Err(FixpError::InvalidFormat {
                total_bits: 0,
                frac_bits: 0,
            });
        }
        let ranges = dfg.ranges_auto(
            input_ranges,
            &RangeOptions::default(),
            &sna_dfg::LtiOptions::default(),
        )?;
        let quantizers = ranges
            .iter()
            .zip(w.iter())
            .map(|(&r, &wi)| {
                Format::from_range(r, wi)
                    .map(|f| Quantizer::new(f, Rounding::Nearest, Overflow::Saturate))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WlConfig { quantizers })
    }

    /// Builds a config from already-computed per-node value ranges and a
    /// word-length vector — the constant-time path used inside
    /// word-length-optimization loops.
    ///
    /// # Errors
    ///
    /// [`FixpError::InvalidFormat`] on length mismatch;
    /// [`FixpError::RangeTooWide`] when a range does not fit its width.
    pub fn from_precomputed_ranges(node_ranges: &[Interval], w: &[u8]) -> Result<Self, FixpError> {
        if w.len() != node_ranges.len() {
            return Err(FixpError::InvalidFormat {
                total_bits: 0,
                frac_bits: 0,
            });
        }
        let quantizers = node_ranges
            .iter()
            .zip(w.iter())
            .map(|(&r, &wi)| {
                Format::from_range(r, wi)
                    .map(|f| Quantizer::new(f, Rounding::Nearest, Overflow::Saturate))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(WlConfig { quantizers })
    }

    /// The quantizer of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the graph this config was built
    /// for.
    pub fn quantizer(&self, node: NodeId) -> &Quantizer {
        &self.quantizers[node.index()]
    }

    /// The format of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn format(&self, node: NodeId) -> Format {
        self.quantizers[node.index()].format
    }

    /// Replaces the quantizer of a node.
    ///
    /// # Errors
    ///
    /// Returns [`FixpError::InvalidFormat`] for an out-of-range node.
    pub fn set_quantizer(&mut self, node: NodeId, q: Quantizer) -> Result<(), FixpError> {
        match self.quantizers.get_mut(node.index()) {
            Some(slot) => {
                *slot = q;
                Ok(())
            }
            None => Err(FixpError::InvalidFormat {
                total_bits: 0,
                frac_bits: 0,
            }),
        }
    }

    /// Changes only the word length of a node, preserving its integer part,
    /// rounding and overflow modes.
    ///
    /// # Errors
    ///
    /// Returns [`FixpError::InvalidFormat`] when the integer part does not
    /// fit in `w` bits or the node is out of range.
    pub fn set_word_length(&mut self, node: NodeId, w: u8) -> Result<(), FixpError> {
        let q = *self
            .quantizers
            .get(node.index())
            .ok_or(FixpError::InvalidFormat {
                total_bits: 0,
                frac_bits: 0,
            })?;
        let format = q.format.with_word_length(w)?;
        self.quantizers[node.index()] = Quantizer::new(format, q.rounding, q.overflow);
        Ok(())
    }

    /// Sets the rounding mode of every node.
    pub fn set_rounding_all(&mut self, rounding: Rounding) {
        for q in &mut self.quantizers {
            q.rounding = rounding;
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.quantizers.len()
    }

    /// Whether the config is empty.
    pub fn is_empty(&self) -> bool {
        self.quantizers.is_empty()
    }

    /// Word lengths per node (the optimizer's decision vector).
    pub fn word_lengths(&self) -> Vec<u8> {
        self.quantizers
            .iter()
            .map(|q| q.format.word_length())
            .collect()
    }
}

/// Bit-true, cycle-accurate simulator of a [`Dfg`] under a [`WlConfig`].
///
/// Every node's result is requantized to that node's format immediately
/// after the operation, matching hardware where each functional unit's
/// output register has a fixed width.
#[derive(Clone, Debug)]
pub struct FixedSimulator<'a> {
    dfg: &'a Dfg,
    config: &'a WlConfig,
    values: Vec<Fx>,
}

impl<'a> FixedSimulator<'a> {
    /// Creates a simulator with all delay states at fixed-point zero.
    pub fn new(dfg: &'a Dfg, config: &'a WlConfig) -> Self {
        let values = (0..dfg.len())
            .map(|i| Fx::zero(config.quantizers[i].format))
            .collect();
        FixedSimulator {
            dfg,
            config,
            values,
        }
    }

    /// Resets all delay state to zero.
    pub fn reset(&mut self) {
        for (i, v) in self.values.iter_mut().enumerate() {
            *v = Fx::zero(self.config.quantizers[i].format);
        }
    }

    /// The fixed-point value of every node after the last step.
    pub fn values(&self) -> &[Fx] {
        &self.values
    }

    /// Advances one cycle; inputs are quantized to their nodes' formats.
    ///
    /// # Errors
    ///
    /// * [`FixpError::Dfg`] wrapping [`DfgError::WrongInputCount`];
    /// * [`FixpError::DivisionByZero`] when a fixed-point divisor is zero
    ///   (which can happen even when the real divisor is not, after
    ///   quantization).
    pub fn step(&mut self, inputs: &[f64]) -> Result<Vec<f64>, FixpError> {
        if inputs.len() != self.dfg.n_inputs() {
            return Err(FixpError::Dfg(DfgError::WrongInputCount {
                expected: self.dfg.n_inputs(),
                got: inputs.len(),
            }));
        }
        for &id in self.dfg.topo_order() {
            let node = self.dfg.node(id);
            let q = &self.config.quantizers[id.index()];
            let v = match node.op() {
                Op::Input(i) => Fx::from_f64(inputs[i], q),
                Op::Const(c) => Fx::from_f64(c, q),
                Op::Add => {
                    let a = self.values[node.args()[0].index()];
                    let b = self.values[node.args()[1].index()];
                    a.add(&b, q)
                }
                Op::Sub => {
                    let a = self.values[node.args()[0].index()];
                    let b = self.values[node.args()[1].index()];
                    a.sub(&b, q)
                }
                Op::Mul => {
                    let a = self.values[node.args()[0].index()];
                    let b = self.values[node.args()[1].index()];
                    a.mul(&b, q)
                }
                Op::Div => {
                    let a = self.values[node.args()[0].index()];
                    let b = self.values[node.args()[1].index()];
                    a.div(&b, q)?
                }
                Op::Neg => self.values[node.args()[0].index()].neg(q),
                Op::Delay => unreachable!("delays are excluded from the topo order"),
            };
            self.values[id.index()] = v;
        }
        let outputs = self
            .dfg
            .outputs()
            .iter()
            .map(|&(_, id)| self.values[id.index()].to_f64())
            .collect();
        // Latch delay states, requantizing to the delay node's format.
        let latches: Vec<(usize, Fx)> = self
            .dfg
            .delay_nodes()
            .iter()
            .map(|&d| {
                let src = self.dfg.node(d).args()[0];
                let q = &self.config.quantizers[d.index()];
                (d.index(), self.values[src.index()].requantize(q))
            })
            .collect();
        for (idx, v) in latches {
            self.values[idx] = v;
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    fn scaled_sum() -> Dfg {
        // y = 0.3·x1 + 0.6·x2
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn from_ranges_assigns_tight_integer_parts() {
        let g = scaled_sum();
        let cfg = WlConfig::from_ranges(&g, &[iv(-1.0, 1.0), iv(-1.0, 1.0)], 16).unwrap();
        for (id, node) in g.nodes() {
            let f = cfg.format(id);
            assert_eq!(f.word_length(), 16, "node {id}");
            // All signals fit in roughly [-1, 1]: at most 1 integer bit.
            assert!(f.int_bits() <= 1, "node {id} ({:?}) got {f}", node.op());
        }
    }

    #[test]
    fn wide_word_lengths_track_reference_closely() {
        let g = scaled_sum();
        let cfg = WlConfig::from_ranges(&g, &[iv(-1.0, 1.0), iv(-1.0, 1.0)], 32).unwrap();
        let mut sim = FixedSimulator::new(&g, &cfg);
        let exact = g.evaluate(&[0.7, -0.2]).unwrap();
        let fixed = sim.step(&[0.7, -0.2]).unwrap();
        assert!((exact[0] - fixed[0]).abs() < 1e-6);
    }

    #[test]
    fn narrow_word_lengths_show_quantization_error() {
        let g = scaled_sum();
        let cfg = WlConfig::from_ranges(&g, &[iv(-1.0, 1.0), iv(-1.0, 1.0)], 6).unwrap();
        let mut sim = FixedSimulator::new(&g, &cfg);
        let exact = g.evaluate(&[0.7, -0.2]).unwrap();
        let fixed = sim.step(&[0.7, -0.2]).unwrap();
        let err = (exact[0] - fixed[0]).abs();
        assert!(err > 1e-6, "expected visible quantization error");
        // ...but bounded by a few quantization steps along the path.
        assert!(err < 0.1, "error {err} unexpectedly large");
    }

    #[test]
    fn per_node_word_lengths() {
        let g = scaled_sum();
        let w = vec![12u8; g.len()];
        let cfg = WlConfig::from_ranges_per_node(&g, &[iv(-1.0, 1.0), iv(-1.0, 1.0)], &w).unwrap();
        assert_eq!(cfg.word_lengths(), w);
        assert!(WlConfig::from_ranges_per_node(&g, &[iv(-1.0, 1.0), iv(-1.0, 1.0)], &[8]).is_err());
    }

    #[test]
    fn set_word_length_preserves_integer_part() {
        let g = scaled_sum();
        let mut cfg = WlConfig::from_ranges(&g, &[iv(-1.0, 1.0), iv(-1.0, 1.0)], 16).unwrap();
        let (_, y) = g.outputs()[0].clone();
        let int_bits = cfg.format(y).int_bits();
        cfg.set_word_length(y, 10).unwrap();
        assert_eq!(cfg.format(y).word_length(), 10);
        assert_eq!(cfg.format(y).int_bits(), int_bits);
    }

    #[test]
    fn sequential_accumulator_with_saturation() {
        // acc[n] = acc[n-1] + x: saturates at the format maximum.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let prev = b.delay_placeholder();
        let acc = b.add(x, prev);
        b.bind_delay(prev, acc).unwrap();
        b.output("acc", acc);
        let g = b.build().unwrap();
        let fmt = Format::new(6, 2).unwrap(); // range [-8, 7.75]
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        let mut sim = FixedSimulator::new(&g, &cfg);
        let mut last = 0.0;
        for _ in 0..20 {
            last = sim.step(&[1.0]).unwrap()[0];
        }
        assert_eq!(last, 7.75);
    }

    #[test]
    fn fixed_division_by_quantized_zero() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let q = b.div(x, y);
        b.output("q", q);
        let g = b.build().unwrap();
        let fmt = Format::new(8, 2).unwrap();
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        let mut sim = FixedSimulator::new(&g, &cfg);
        // 0.05 quantizes to 0 in Q5.2 → division by zero at runtime.
        assert!(matches!(
            sim.step(&[1.0, 0.05]),
            Err(FixpError::DivisionByZero)
        ));
    }

    #[test]
    fn truncation_mode_biases_the_output() {
        let g = scaled_sum();
        let mut cfg = WlConfig::from_ranges(&g, &[iv(-1.0, 1.0), iv(-1.0, 1.0)], 8).unwrap();
        cfg.set_rounding_all(Rounding::Truncate);
        let mut sim = FixedSimulator::new(&g, &cfg);
        // Truncation error is always <= 0 relative to the exact value at
        // each node, so the output error accumulates negatively (both path
        // gains are positive here).
        let mut bias = 0.0;
        let mut x = -0.9;
        while x < 0.9 {
            let exact = g.evaluate(&[x, -x]).unwrap()[0];
            let fixed = sim.step(&[x, -x]).unwrap()[0];
            bias += fixed - exact;
            x += 0.1;
        }
        assert!(bias < 0.0);
    }
}
