use std::fmt;

use crate::{FixpError, Format, Quantizer, Rounding};

/// An exact fixed-point value: an integer mantissa tagged with its
/// [`Format`].
///
/// All arithmetic goes through `i128` intermediates, so results are
/// *bit-true*: no double rounding through `f64` can occur.  Binary
/// operations let the caller pick the result quantizer, mirroring hardware
/// where the output format of a functional unit is a design choice.
///
/// # Example
///
/// ```
/// use sna_fixp::{Format, Fx, Overflow, Quantizer, Rounding};
///
/// # fn main() -> Result<(), sna_fixp::FixpError> {
/// let fmt = Format::new(8, 4)?;
/// let q = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
/// let a = Fx::from_f64(1.5, &q);
/// let b = Fx::from_f64(2.25, &q);
/// let sum = a.add(&b, &q);
/// assert_eq!(sum.to_f64(), 3.75);
/// let prod = a.mul(&b, &q);
/// assert_eq!(prod.to_f64(), 3.375);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fx {
    mantissa: i64,
    format: Format,
}

impl Fx {
    /// The zero value in the given format.
    pub fn zero(format: Format) -> Self {
        Fx {
            mantissa: 0,
            format,
        }
    }

    /// Quantizes an `f64` into a fixed-point value.
    pub fn from_f64(x: f64, q: &Quantizer) -> Self {
        Fx {
            mantissa: q.mantissa_of(x),
            format: q.format,
        }
    }

    /// Builds a value from a raw mantissa.
    ///
    /// # Errors
    ///
    /// Returns [`FixpError::InvalidFormat`] when the mantissa does not fit
    /// the format.
    pub fn from_mantissa(mantissa: i64, format: Format) -> Result<Self, FixpError> {
        if mantissa < format.min_mantissa() || mantissa > format.max_mantissa() {
            return Err(FixpError::InvalidFormat {
                total_bits: format.word_length(),
                frac_bits: format.frac_bits(),
            });
        }
        Ok(Fx { mantissa, format })
    }

    /// The raw mantissa.
    pub fn mantissa(&self) -> i64 {
        self.mantissa
    }

    /// The format.
    pub fn format(&self) -> Format {
        self.format
    }

    /// The represented real value (exact for word lengths ≤ 48).
    pub fn to_f64(&self) -> f64 {
        self.mantissa as f64 * self.format.resolution()
    }

    /// Requantizes into a (possibly different) format.
    pub fn requantize(&self, q: &Quantizer) -> Fx {
        let shift = q.format.frac_bits() as i32 - self.format.frac_bits() as i32;
        let scaled = shift_round(self.mantissa as i128, shift, q.rounding);
        Fx {
            mantissa: q.handle_overflow_i128(scaled),
            format: q.format,
        }
    }

    /// Exact sum, quantized by `q`.
    pub fn add(&self, rhs: &Fx, q: &Quantizer) -> Fx {
        let f = self.format.frac_bits().max(rhs.format.frac_bits());
        let a = (self.mantissa as i128) << (f - self.format.frac_bits());
        let b = (rhs.mantissa as i128) << (f - rhs.format.frac_bits());
        let shift = q.format.frac_bits() as i32 - f as i32;
        let m = shift_round(a + b, shift, q.rounding);
        Fx {
            mantissa: q.handle_overflow_i128(m),
            format: q.format,
        }
    }

    /// Exact difference, quantized by `q`.
    pub fn sub(&self, rhs: &Fx, q: &Quantizer) -> Fx {
        self.add(&rhs.neg_exact(), q)
    }

    /// Exact product, quantized by `q`.
    pub fn mul(&self, rhs: &Fx, q: &Quantizer) -> Fx {
        let prod = self.mantissa as i128 * rhs.mantissa as i128;
        let f = self.format.frac_bits() as i32 + rhs.format.frac_bits() as i32;
        let shift = q.format.frac_bits() as i32 - f;
        let m = shift_round(prod, shift, q.rounding);
        Fx {
            mantissa: q.handle_overflow_i128(m),
            format: q.format,
        }
    }

    /// Quotient, quantized by `q`.
    ///
    /// # Errors
    ///
    /// Returns [`FixpError::DivisionByZero`] for a zero divisor.
    pub fn div(&self, rhs: &Fx, q: &Quantizer) -> Result<Fx, FixpError> {
        if rhs.mantissa == 0 {
            return Err(FixpError::DivisionByZero);
        }
        // value = (ma / mb) · 2^(fb - fa); target mantissa at 2^-fr:
        // m = round(ma · 2^(fb - fa + fr) / mb).
        let exp = rhs.format.frac_bits() as i32 - self.format.frac_bits() as i32
            + q.format.frac_bits() as i32;
        let (mut num, mut den) = (self.mantissa as i128, rhs.mantissa as i128);
        if exp >= 0 {
            num <<= exp as u32;
        } else {
            den <<= (-exp) as u32;
        }
        let m = div_round(num, den, q.rounding);
        Ok(Fx {
            mantissa: q.handle_overflow_i128(m),
            format: q.format,
        })
    }

    /// Exact negation in the same format (saturating on the most negative
    /// mantissa, whose negation is not representable).
    pub fn neg_exact(&self) -> Fx {
        let m = if self.mantissa == self.format.min_mantissa() {
            self.format.max_mantissa()
        } else {
            -self.mantissa
        };
        Fx {
            mantissa: m,
            format: self.format,
        }
    }

    /// Negation quantized by `q` (honours `q`'s overflow mode).
    pub fn neg(&self, q: &Quantizer) -> Fx {
        let shift = q.format.frac_bits() as i32 - self.format.frac_bits() as i32;
        let m = shift_round(-(self.mantissa as i128), shift, q.rounding);
        Fx {
            mantissa: q.handle_overflow_i128(m),
            format: q.format,
        }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

/// Shifts `m` by `shift` fractional places (`>0` = more precision, exact;
/// `<0` = dropping bits, rounded per `rounding`).
fn shift_round(m: i128, shift: i32, rounding: Rounding) -> i128 {
    if shift >= 0 {
        m << shift as u32
    } else {
        let s = (-shift) as u32;
        match rounding {
            Rounding::Truncate => m >> s, // arithmetic shift = floor
            Rounding::Nearest => {
                let half = 1i128 << (s - 1);
                // Round half away from zero.
                if m >= 0 {
                    (m + half) >> s
                } else {
                    -((-m + half) >> s)
                }
            }
        }
    }
}

/// Division with floor (`Truncate`) or round-half-away (`Nearest`)
/// semantics, exact in integer arithmetic.
fn div_round(num: i128, den: i128, rounding: Rounding) -> i128 {
    // Normalize so the divisor is positive; the quotient is unchanged.
    let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
    let floor = num.div_euclid(den);
    match rounding {
        Rounding::Truncate => floor,
        Rounding::Nearest => {
            let rem = num - floor * den; // 0 <= rem < den
                                         // Round half away from zero: the exact quotient is
                                         // floor + rem/den; bump when rem/den >= 1/2 (for positive
                                         // quotients) or > 1/2 (for negative ones, where "away from
                                         // zero" means keeping the floor at exactly half).
            let twice = 2 * rem;
            let exact_is_negative = num < 0;
            if twice > den || (twice == den && !exact_is_negative) {
                floor + 1
            } else {
                floor
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Overflow;

    fn q(total: u8, frac: u8) -> Quantizer {
        Quantizer::new(
            Format::new(total, frac).unwrap(),
            Rounding::Nearest,
            Overflow::Saturate,
        )
    }

    fn qt(total: u8, frac: u8) -> Quantizer {
        Quantizer::new(
            Format::new(total, frac).unwrap(),
            Rounding::Truncate,
            Overflow::Saturate,
        )
    }

    #[test]
    fn round_trip_representable_values() {
        let quant = q(16, 8);
        for v in [-3.5, -0.00390625, 0.0, 1.25, 100.0] {
            let fx = Fx::from_f64(v, &quant);
            assert_eq!(fx.to_f64(), v.clamp(-128.0, 127.99609375));
        }
    }

    #[test]
    fn add_with_mixed_formats_is_exact() {
        let qa = q(16, 8);
        let qb = q(16, 4);
        let a = Fx::from_f64(1.00390625, &qa); // 257/256
        let b = Fx::from_f64(2.0625, &qb); // 33/16
        let sum = a.add(&b, &q(24, 12));
        assert_eq!(sum.to_f64(), 1.00390625 + 2.0625);
    }

    #[test]
    fn mul_is_bit_true() {
        let quant = q(16, 8);
        let a = Fx::from_f64(1.5, &quant);
        let b = Fx::from_f64(-2.25, &quant);
        // Full product needs 16 fractional bits; target has 8 → rounding.
        let p = a.mul(&b, &quant);
        assert_eq!(p.to_f64(), -3.375);
        // A product needing rounding: 0.00390625² = 2⁻¹⁶ rounds to 0 or 2⁻⁸.
        let tiny = Fx::from_f64(0.00390625, &quant);
        let p = tiny.mul(&tiny, &quant);
        assert_eq!(p.to_f64(), 0.0); // 2⁻¹⁶ < half of 2⁻⁸
    }

    #[test]
    fn truncation_biases_downward() {
        let quant = qt(8, 2);
        let a = Fx::from_f64(1.75, &q(8, 4));
        // 1.75 is representable; requantize with truncation to Q5.2: exact.
        assert_eq!(a.requantize(&quant).to_f64(), 1.75);
        let b = Fx::from_f64(1.9375, &q(8, 4));
        assert_eq!(b.requantize(&quant).to_f64(), 1.75);
        let c = Fx::from_f64(-1.9375, &q(8, 4));
        assert_eq!(c.requantize(&quant).to_f64(), -2.0);
    }

    #[test]
    fn division_matches_reference() {
        let quant = q(24, 12);
        let a = Fx::from_f64(1.0, &quant);
        let b = Fx::from_f64(3.0, &quant);
        let r = a.div(&b, &quant).unwrap();
        assert!((r.to_f64() - 1.0 / 3.0).abs() <= quant.format.resolution() / 2.0);
        let neg = Fx::from_f64(-1.0, &quant);
        let r = neg.div(&b, &quant).unwrap();
        assert!((r.to_f64() + 1.0 / 3.0).abs() <= quant.format.resolution() / 2.0);
        assert!(a.div(&Fx::zero(quant.format), &quant).is_err());
    }

    #[test]
    fn saturation_on_overflowing_results() {
        let quant = q(8, 4); // range [-8, 7.9375]
        let a = Fx::from_f64(7.0, &quant);
        let b = Fx::from_f64(5.0, &quant);
        assert_eq!(a.add(&b, &quant).to_f64(), 7.9375);
        assert_eq!(a.mul(&b, &quant).to_f64(), 7.9375);
        let na = Fx::from_f64(-8.0, &quant);
        assert_eq!(na.add(&na, &quant).to_f64(), -8.0);
        // Negating the most negative value saturates.
        assert_eq!(na.neg_exact().to_f64(), 7.9375);
    }

    #[test]
    fn wrap_mode_wraps_sums() {
        let fmt = Format::new(4, 0).unwrap();
        let quant = Quantizer::new(fmt, Rounding::Nearest, Overflow::Wrap);
        let a = Fx::from_f64(7.0, &quant);
        let one = Fx::from_f64(1.0, &quant);
        assert_eq!(a.add(&one, &quant).to_f64(), -8.0);
    }

    #[test]
    fn from_mantissa_validates() {
        let fmt = Format::new(8, 0).unwrap();
        assert!(Fx::from_mantissa(127, fmt).is_ok());
        assert!(Fx::from_mantissa(128, fmt).is_err());
        assert!(Fx::from_mantissa(-128, fmt).is_ok());
        assert!(Fx::from_mantissa(-129, fmt).is_err());
    }

    #[test]
    fn nearest_rounding_of_shift_is_symmetric() {
        // 1.5 ulp at the target resolution rounds away from zero both ways.
        let src = q(16, 4);
        let dst = q(16, 2);
        let a = Fx::from_f64(0.375, &src); // 1.5 · 2⁻²
        assert_eq!(a.requantize(&dst).to_f64(), 0.5);
        let b = Fx::from_f64(-0.375, &src);
        assert_eq!(b.requantize(&dst).to_f64(), -0.5);
    }
}
