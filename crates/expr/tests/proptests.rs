//! Property-based tests for the polynomial algebra.
//!
//! Invariants: ring axioms on sampled points, moment/evaluation
//! consistency, soundness of interval enclosures, and partition/truncation
//! completeness.

use proptest::prelude::*;
use sna_expr::{Monomial, Poly, SymbolId, SymbolTable};
use sna_interval::Interval;

const NSYM: usize = 4;

fn table() -> (SymbolTable, Vec<SymbolId>) {
    let mut t = SymbolTable::new();
    let ids = (0..NSYM)
        .map(|i| t.add_uniform(format!("s{i}"), 64).unwrap())
        .collect();
    (t, ids)
}

/// A random polynomial of bounded degree/terms over the table's symbols.
fn poly_strategy() -> impl Strategy<Value = Poly> {
    proptest::collection::vec(
        (proptest::collection::vec(0u32..3, NSYM), -10.0..10.0f64),
        0..6,
    )
    .prop_map(|terms| {
        let (_, ids) = table();
        Poly::from_terms(
            terms
                .into_iter()
                .map(|(exps, c)| (Monomial::from_factors(ids.iter().copied().zip(exps)), c)),
        )
    })
}

fn assignment_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0..1.0f64, NSYM)
}

fn eval(p: &Poly, point: &[f64]) -> f64 {
    p.eval_f64(|id| point[id.index() as usize])
}

proptest! {
    #[test]
    fn addition_is_pointwise(a in poly_strategy(), b in poly_strategy(), x in assignment_strategy()) {
        let s = a.add(&b);
        let expect = eval(&a, &x) + eval(&b, &x);
        prop_assert!((eval(&s, &x) - expect).abs() < 1e-9 * (1.0 + expect.abs()));
    }

    #[test]
    fn multiplication_is_pointwise(a in poly_strategy(), b in poly_strategy(), x in assignment_strategy()) {
        let p = a.mul(&b);
        let expect = eval(&a, &x) * eval(&b, &x);
        prop_assert!((eval(&p, &x) - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn subtraction_of_self_is_zero(a in poly_strategy()) {
        prop_assert!(a.sub(&a).is_zero());
    }

    #[test]
    fn distributivity(a in poly_strategy(), b in poly_strategy(), c in poly_strategy(), x in assignment_strategy()) {
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        prop_assert!((eval(&left, &x) - eval(&right, &x)).abs()
                     < 1e-6 * (1.0 + eval(&left, &x).abs()));
    }

    #[test]
    fn interval_evaluation_encloses_point_evaluation(a in poly_strategy(), x in assignment_strategy()) {
        let range = a.eval_interval(|_| Interval::UNIT);
        let v = eval(&a, &x);
        prop_assert!(range.lo() - 1e-9 <= v && v <= range.hi() + 1e-9,
                     "{v} outside {range}");
    }

    #[test]
    fn mean_is_within_interval_bounds(a in poly_strategy()) {
        let (t, _) = table();
        let mean = a.mean(&t);
        let range = a.eval_interval(|_| Interval::UNIT);
        prop_assert!(range.lo() - 1e-9 <= mean && mean <= range.hi() + 1e-9);
    }

    #[test]
    fn variance_is_nonnegative_and_zero_for_constants(c in -5.0..5.0f64, a in poly_strategy()) {
        let (t, _) = table();
        prop_assert!(a.variance(&t) >= 0.0);
        prop_assert!(Poly::constant(c).variance(&t).abs() < 1e-12);
    }

    #[test]
    fn truncation_partitions_terms(a in poly_strategy(), d in 0u32..4) {
        let (kept, dropped) = a.truncate_degree(d);
        prop_assert_eq!(kept.add(&dropped), a.clone());
        prop_assert!(kept.degree() <= d || kept.is_zero());
        for (m, _) in dropped.terms() {
            prop_assert!(m.degree() > d);
        }
    }

    #[test]
    fn partition_is_complete(a in poly_strategy()) {
        let (_, ids) = table();
        let target = ids[0];
        let (with, without) = a.partition(|s| s == target);
        prop_assert_eq!(with.add(&without), a.clone());
        for (m, _) in without.terms() {
            prop_assert_eq!(m.exponent(target), 0);
        }
        for (m, _) in with.terms() {
            prop_assert!(m.exponent(target) > 0);
        }
    }

    #[test]
    fn scale_is_linear_in_moments(a in poly_strategy(), k in -4.0..4.0f64) {
        let (t, _) = table();
        let scaled = a.scale(k);
        prop_assert!((scaled.mean(&t) - k * a.mean(&t)).abs() < 1e-9 * (1.0 + a.mean(&t).abs()));
        prop_assert!((scaled.variance(&t) - k * k * a.variance(&t)).abs()
                     < 1e-6 * (1.0 + a.variance(&t)));
    }

    #[test]
    fn monomial_mul_matches_pointwise(ea in proptest::collection::vec(0u32..4, NSYM),
                                      eb in proptest::collection::vec(0u32..4, NSYM),
                                      x in assignment_strategy()) {
        let (_, ids) = table();
        let ma = Monomial::from_factors(ids.iter().copied().zip(ea));
        let mb = Monomial::from_factors(ids.iter().copied().zip(eb));
        let prod = ma.mul(&mb);
        let va = ma.eval_f64(|id| x[id.index() as usize]);
        let vb = mb.eval_f64(|id| x[id.index() as usize]);
        let vp = prod.eval_f64(|id| x[id.index() as usize]);
        prop_assert!((vp - va * vb).abs() < 1e-9 * (1.0 + (va * vb).abs()));
    }
}
