use std::collections::BTreeMap;
use std::fmt;

use sna_interval::Interval;

use crate::{Monomial, SymbolId, SymbolTable};

/// A sparse multivariate polynomial `Σ c_m · m` over noise symbols.
///
/// `Poly` is the concrete realization of the paper's Eq. (1) numerator: the
/// uncertainty of a value is an algebraic combination of noise symbols with
/// real coefficients.  Because symbols are independent random variables with
/// known PDFs, the mean and variance of a `Poly` are computable *exactly*
/// from symbol moments, and guaranteed bounds come from interval evaluation.
///
/// # Example
///
/// ```
/// use sna_expr::{Poly, SymbolTable};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = SymbolTable::new();
/// let e1 = t.add_uniform("e1", 32)?;
/// let e2 = t.add_uniform("e2", 32)?;
/// // err = 0.5·ε₁ + 0.25·ε₂ + 0.125·ε₁ε₂
/// let err = Poly::symbol(e1).scale(0.5)
///     .add(&Poly::symbol(e2).scale(0.25))
///     .add(&Poly::symbol(e1).mul(&Poly::symbol(e2)).scale(0.125));
/// assert!(err.mean(&t).abs() < 1e-9);
/// let var = err.variance(&t);
/// // Var = 0.25/3 + 0.0625/3 + 0.015625/9
/// assert!((var - (0.25 / 3.0 + 0.0625 / 3.0 + 0.015625 / 9.0)).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, f64>,
}

impl Poly {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: f64) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0.0 {
            terms.insert(Monomial::one(), c);
        }
        Poly { terms }
    }

    /// The polynomial consisting of a single symbol.
    pub fn symbol(id: SymbolId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::from_symbol(id), 1.0);
        Poly { terms }
    }

    /// An affine combination `c + Σ coeffᵢ·εᵢ`.
    pub fn affine(c: f64, terms: impl IntoIterator<Item = (SymbolId, f64)>) -> Self {
        let mut p = Poly::constant(c);
        for (id, coeff) in terms {
            p.add_term(Monomial::from_symbol(id), coeff);
        }
        p
    }

    /// Builds a polynomial from explicit `(monomial, coefficient)` terms.
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial, f64)>) -> Self {
        let mut p = Poly::zero();
        for (m, c) in terms {
            p.add_term(m, c);
        }
        p
    }

    // ------------------------------------------------------------------
    // Structure
    // ------------------------------------------------------------------

    /// Adds `c · m` into the polynomial.
    pub fn add_term(&mut self, m: Monomial, c: f64) {
        if c == 0.0 {
            return;
        }
        match self.terms.entry(m) {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                *e.get_mut() += c;
                if *e.get() == 0.0 {
                    e.remove();
                }
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(c);
            }
        }
    }

    /// The coefficient of a monomial (0 when absent).
    pub fn coefficient(&self, m: &Monomial) -> f64 {
        self.terms.get(m).copied().unwrap_or(0.0)
    }

    /// The constant term.
    pub fn constant_term(&self) -> f64 {
        self.coefficient(&Monomial::one())
    }

    /// Whether the polynomial has no symbolic terms.
    pub fn is_constant(&self) -> bool {
        self.terms.keys().all(Monomial::is_one)
    }

    /// Whether the polynomial is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of terms.
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total degree (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Iterates over `(monomial, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Monomial, f64)> {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// The distinct symbols appearing in the polynomial, sorted.
    pub fn symbols(&self) -> Vec<SymbolId> {
        let mut out: Vec<SymbolId> = Vec::new();
        for m in self.terms.keys() {
            for s in m.symbols() {
                if let Err(pos) = out.binary_search(&s) {
                    out.insert(pos, s);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// Sum of two polynomials.
    pub fn add(&self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in rhs.terms() {
            out.add_term(m.clone(), c);
        }
        out
    }

    /// Difference of two polynomials.
    pub fn sub(&self, rhs: &Poly) -> Poly {
        self.add(&rhs.neg())
    }

    /// Negation.
    pub fn neg(&self) -> Poly {
        Poly {
            terms: self.terms.iter().map(|(m, &c)| (m.clone(), -c)).collect(),
        }
    }

    /// Multiplication by a scalar.
    pub fn scale(&self, k: f64) -> Poly {
        if k == 0.0 {
            return Poly::zero();
        }
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(m, &c)| (m.clone(), k * c))
                .collect(),
        }
    }

    /// Translation by a scalar.
    pub fn shift(&self, c: f64) -> Poly {
        let mut out = self.clone();
        out.add_term(Monomial::one(), c);
        out
    }

    /// Product of two polynomials.
    pub fn mul(&self, rhs: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (ma, ca) in self.terms() {
            for (mb, cb) in rhs.terms() {
                out.add_term(ma.mul(mb), ca * cb);
            }
        }
        out
    }

    /// Square of the polynomial.
    pub fn sqr(&self) -> Poly {
        self.mul(self)
    }

    /// Splits into `(kept, dropped)` where `kept` holds terms of total
    /// degree at most `max_degree`.
    pub fn truncate_degree(&self, max_degree: u32) -> (Poly, Poly) {
        let mut kept = Poly::zero();
        let mut dropped = Poly::zero();
        for (m, c) in self.terms() {
            if m.degree() <= max_degree {
                kept.add_term(m.clone(), c);
            } else {
                dropped.add_term(m.clone(), c);
            }
        }
        (kept, dropped)
    }

    /// Splits into `(matching, rest)` where `matching` holds monomials
    /// containing at least one symbol satisfying `pred`.
    ///
    /// Used to isolate the *error part* of a value polynomial: the monomials
    /// touching at least one quantization-noise symbol.
    pub fn partition(&self, mut pred: impl FnMut(SymbolId) -> bool) -> (Poly, Poly) {
        let mut matching = Poly::zero();
        let mut rest = Poly::zero();
        for (m, c) in self.terms() {
            if m.contains_symbol_where(&mut pred) {
                matching.add_term(m.clone(), c);
            } else {
                rest.add_term(m.clone(), c);
            }
        }
        (matching, rest)
    }

    // ------------------------------------------------------------------
    // Evaluation
    // ------------------------------------------------------------------

    /// Evaluates at a point assignment.
    pub fn eval_f64(&self, mut value: impl FnMut(SymbolId) -> f64) -> f64 {
        self.terms().map(|(m, c)| c * m.eval_f64(&mut value)).sum()
    }

    /// Guaranteed range by interval evaluation (dependent powers within each
    /// monomial; cross-monomial dependency is conservatively ignored).
    pub fn eval_interval(&self, mut range: impl FnMut(SymbolId) -> Interval) -> Interval {
        let mut acc = Interval::ZERO;
        for (m, c) in self.terms() {
            acc += m.eval_interval(&mut range).scale(c);
        }
        acc
    }

    // ------------------------------------------------------------------
    // Moments (symbols independent, PDFs from the table)
    // ------------------------------------------------------------------

    /// Exact mean `E[p]` from symbol moments.
    pub fn mean(&self, table: &SymbolTable) -> f64 {
        self.terms()
            .map(|(m, c)| {
                c * m
                    .factors()
                    .map(|(id, e)| table.moment(id, e))
                    .product::<f64>()
            })
            .sum()
    }

    /// Exact second raw moment `E[p²]`.
    pub fn moment2(&self, table: &SymbolTable) -> f64 {
        self.sqr().mean(table)
    }

    /// Exact variance `E[p²] - E[p]²`.
    pub fn variance(&self, table: &SymbolTable) -> f64 {
        let mean = self.mean(table);
        (self.moment2(table) - mean * mean).max(0.0)
    }

    /// Noise power `E[p²]` — the metric constrained by the paper's
    /// optimization tables.
    pub fn noise_power(&self, table: &SymbolTable) -> f64 {
        self.moment2(table)
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.terms().enumerate() {
            if i == 0 {
                if m.is_one() {
                    write!(f, "{c}")?;
                } else {
                    write!(f, "{c}·{m}")?;
                }
            } else if m.is_one() {
                write!(f, " + {c}")?;
            } else if c >= 0.0 {
                write!(f, " + {c}·{m}")?;
            } else {
                write!(f, " - {}·{m}", -c)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3() -> (SymbolTable, SymbolId, SymbolId, SymbolId) {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 128).unwrap();
        let y = t.add_uniform("y", 128).unwrap();
        let z = t.add_uniform("z", 128).unwrap();
        (t, x, y, z)
    }

    #[test]
    fn constant_and_zero() {
        let z = Poly::zero();
        assert!(z.is_zero());
        assert_eq!(z.degree(), 0);
        let c = Poly::constant(2.5);
        assert!(c.is_constant());
        assert_eq!(c.constant_term(), 2.5);
        assert_eq!(Poly::constant(0.0), Poly::zero());
    }

    #[test]
    fn add_and_cancel() {
        let (_, x, _, _) = table3();
        let p = Poly::symbol(x).scale(2.0);
        let q = Poly::symbol(x).scale(-2.0);
        assert!(p.add(&q).is_zero());
        let r = p.add(&Poly::constant(1.0));
        assert_eq!(r.n_terms(), 2);
        assert_eq!(r.constant_term(), 1.0);
    }

    #[test]
    fn mul_expands_products() {
        let (_, x, y, _) = table3();
        // (1 + x)(1 - y) = 1 + x - y - xy
        let p = Poly::affine(1.0, [(x, 1.0)]);
        let q = Poly::affine(1.0, [(y, -1.0)]);
        let r = p.mul(&q);
        assert_eq!(r.n_terms(), 4);
        assert_eq!(r.constant_term(), 1.0);
        let xy = Monomial::from_factors([(x, 1), (y, 1)]);
        assert_eq!(r.coefficient(&xy), -1.0);
        assert_eq!(r.degree(), 2);
    }

    #[test]
    fn eval_f64_matches_structure() {
        let (_, x, y, _) = table3();
        // p = 3 + 2x - xy²
        let p = Poly::from_terms([
            (Monomial::one(), 3.0),
            (Monomial::from_symbol(x), 2.0),
            (Monomial::from_factors([(x, 1), (y, 2)]), -1.0),
        ]);
        let v = p.eval_f64(|id| if id == x { 2.0 } else { 3.0 });
        assert_eq!(v, 3.0 + 4.0 - 2.0 * 9.0);
    }

    #[test]
    fn interval_eval_is_dependency_aware_per_monomial() {
        let (_, x, _, _) = table3();
        let p = Poly::from_terms([(Monomial::from_factors([(x, 2)]), 1.0)]);
        assert_eq!(
            p.eval_interval(|_| Interval::UNIT),
            Interval::new(0.0, 1.0).unwrap()
        );
        // But x² - x is evaluated monomial-wise: [0,1] - [-1,1] = [-1, 2]
        // (true range is [-1/4, 2]); conservative as documented.
        let q = p.sub(&Poly::symbol(x));
        assert_eq!(
            q.eval_interval(|_| Interval::UNIT),
            Interval::new(-1.0, 2.0).unwrap()
        );
    }

    #[test]
    fn mean_and_variance_of_affine_form() {
        let (t, x, y, _) = table3();
        // p = 1 + 0.5x + 0.25y; Var = 0.25/3 + 0.0625/3.
        let p = Poly::affine(1.0, [(x, 0.5), (y, 0.25)]);
        assert!((p.mean(&t) - 1.0).abs() < 1e-9);
        let expected = 0.25 / 3.0 + 0.0625 / 3.0;
        assert!((p.variance(&t) - expected).abs() < 1e-6);
    }

    #[test]
    fn variance_of_product_of_symbols() {
        let (t, x, y, _) = table3();
        // Var(xy) = E[x²]E[y²] = 1/9 for independent centred uniforms.
        let p = Poly::symbol(x).mul(&Poly::symbol(y));
        assert!(p.mean(&t).abs() < 1e-9);
        assert!((p.variance(&t) - 1.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn mean_of_square_uses_second_moment() {
        let (t, x, _, _) = table3();
        let p = Poly::symbol(x).sqr();
        assert!((p.mean(&t) - 1.0 / 3.0).abs() < 1e-6);
        // E[x⁴] − E[x²]² = 1/5 − 1/9 = 4/45.
        assert!((p.variance(&t) - 4.0 / 45.0).abs() < 1e-5);
    }

    #[test]
    fn truncate_and_partition() {
        let (_, x, y, z) = table3();
        let p = Poly::from_terms([
            (Monomial::one(), 1.0),
            (Monomial::from_symbol(x), 2.0),
            (Monomial::from_factors([(y, 1), (z, 1)]), 3.0),
            (Monomial::from_factors([(x, 2), (y, 1)]), 4.0),
        ]);
        let (kept, dropped) = p.truncate_degree(1);
        assert_eq!(kept.n_terms(), 2);
        assert_eq!(dropped.n_terms(), 2);
        assert_eq!(kept.add(&dropped), p);
        // Partition by "is x".
        let (with_x, without_x) = p.partition(|id| id == x);
        assert_eq!(with_x.n_terms(), 2);
        assert_eq!(without_x.n_terms(), 2);
        assert_eq!(with_x.add(&without_x), p);
    }

    #[test]
    fn symbols_are_deduplicated_and_sorted() {
        let (_, x, y, _) = table3();
        let p = Poly::from_terms([
            (Monomial::from_factors([(y, 1), (x, 1)]), 1.0),
            (Monomial::from_symbol(y), 2.0),
        ]);
        assert_eq!(p.symbols(), vec![x, y]);
    }

    #[test]
    fn display_is_readable() {
        let (_, x, _, _) = table3();
        let p = Poly::affine(1.0, [(x, -2.0)]);
        assert_eq!(format!("{p}"), "1 - 2·ε0");
    }
}
