use std::cell::RefCell;
use std::fmt;

use sna_hist::{HistError, Histogram};

/// Identifier of a noise symbol within a [`SymbolTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(u32);

impl SymbolId {
    /// The raw index into the owning table.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε{}", self.0)
    }
}

/// Metadata of one noise symbol: a human-readable name and its PDF.
#[derive(Clone, Debug, PartialEq)]
pub struct SymbolInfo {
    name: String,
    pdf: Histogram,
}

impl SymbolInfo {
    /// The symbol's name (e.g. the datapath node that generated it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symbol's probability density.
    pub fn pdf(&self) -> &Histogram {
        &self.pdf
    }
}

/// Registry of noise symbols with their PDFs and cached raw moments.
///
/// Symbols are assumed *mutually independent*; all moment computations in
/// [`Poly`](crate::Poly) rely on `E[∏ εᵢ^kᵢ] = ∏ E[εᵢ^kᵢ]`.
///
/// # Example
///
/// ```
/// use sna_expr::SymbolTable;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut table = SymbolTable::new();
/// let e = table.add_uniform("quantizer-3", 32)?;
/// assert_eq!(table.moment(e, 1), 0.0);                 // E[ε] = 0
/// assert!((table.moment(e, 2) - 1.0 / 3.0).abs() < 1e-6); // E[ε²] = 1/3
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    symbols: Vec<SymbolInfo>,
    /// Lazily grown per-symbol moment cache: `moments[i][k] = E[εᵢᵏ]`.
    moments: RefCell<Vec<Vec<f64>>>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a symbol with an arbitrary PDF and returns its id.
    pub fn add(&mut self, name: impl Into<String>, pdf: Histogram) -> SymbolId {
        let id = SymbolId(self.symbols.len() as u32);
        self.symbols.push(SymbolInfo {
            name: name.into(),
            pdf,
        });
        self.moments.borrow_mut().push(vec![1.0]);
        id
    }

    /// Registers the standard SNA noise symbol: uniform on `[-1, 1]` with
    /// `bins` histogram bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroBins`] if `bins == 0`.
    pub fn add_uniform(
        &mut self,
        name: impl Into<String>,
        bins: usize,
    ) -> Result<SymbolId, HistError> {
        Ok(self.add(name, Histogram::unit_symbol(bins)?))
    }

    /// Number of registered symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Metadata of symbol `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn info(&self, id: SymbolId) -> &SymbolInfo {
        &self.symbols[id.0 as usize]
    }

    /// Iterates over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &SymbolInfo)> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (SymbolId(i as u32), s))
    }

    /// Raw moment `E[εᵏ]` of symbol `id` (cached).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn moment(&self, id: SymbolId, k: u32) -> f64 {
        let idx = id.0 as usize;
        let mut cache = self.moments.borrow_mut();
        let entry = &mut cache[idx];
        while entry.len() <= k as usize {
            let next = entry.len() as u32;
            entry.push(self.symbols[idx].pdf.moment(next));
        }
        entry[k as usize]
    }

    /// Replaces the PDF of an existing symbol (invalidates cached moments).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn set_pdf(&mut self, id: SymbolId, pdf: Histogram) {
        self.symbols[id.0 as usize].pdf = pdf;
        self.moments.borrow_mut()[id.0 as usize] = vec![1.0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_symbols() {
        let mut t = SymbolTable::new();
        assert!(t.is_empty());
        let a = t.add_uniform("a", 16).unwrap();
        let b = t.add("b", Histogram::triangular(-1.0, 1.0, 16).unwrap());
        assert_eq!(t.len(), 2);
        assert_eq!(t.info(a).name(), "a");
        assert_eq!(t.info(b).name(), "b");
        assert_ne!(a, b);
        assert_eq!(format!("{a}"), "ε0");
    }

    #[test]
    fn uniform_moments_are_correct() {
        let mut t = SymbolTable::new();
        let e = t.add_uniform("e", 256).unwrap();
        assert_eq!(t.moment(e, 0), 1.0);
        assert!(t.moment(e, 1).abs() < 1e-9);
        assert!((t.moment(e, 2) - 1.0 / 3.0).abs() < 1e-6);
        assert!(t.moment(e, 3).abs() < 1e-9);
        assert!((t.moment(e, 4) - 1.0 / 5.0).abs() < 1e-6);
    }

    #[test]
    fn moments_are_cached_and_invalidated() {
        let mut t = SymbolTable::new();
        let e = t.add_uniform("e", 64).unwrap();
        let m2 = t.moment(e, 2);
        assert!((t.moment(e, 2) - m2).abs() < 1e-15);
        // Replace with a non-centred PDF: mean moves away from zero.
        t.set_pdf(e, Histogram::uniform(0.0, 1.0, 64).unwrap());
        assert!((t.moment(e, 1) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn iter_visits_all_symbols() {
        let mut t = SymbolTable::new();
        t.add_uniform("x", 8).unwrap();
        t.add_uniform("y", 8).unwrap();
        let names: Vec<&str> = t.iter().map(|(_, s)| s.name()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
