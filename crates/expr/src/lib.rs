//! Noise symbols and sparse multivariate polynomial algebra.
//!
//! The Symbolic Noise Analysis method represents an uncertain value as (see
//! Eq. 1 of the DAC'08 paper)
//!
//! ```text
//! x̂ = F(α₁, …, α_N ; ε₁, …, ε_N)
//! ```
//!
//! a *fractional function of polynomials* in bounded noise symbols
//! `εᵢ ∈ [-1, 1]`, each carrying a probability density (a
//! [`sna_hist::Histogram`]).  This crate provides:
//!
//! * [`SymbolTable`] — the registry mapping [`SymbolId`]s to names and PDFs,
//!   with cached raw moments `E[εᵏ]`;
//! * [`Poly`] — sparse multivariate polynomials over the symbols, with exact
//!   moment computation (mean/variance under symbol independence), interval
//!   range evaluation, and Cartesian histogram evaluation;
//! * [`RationalFn`] — quotients of polynomials, closed under the four
//!   arithmetic operations, for datapaths containing division.
//!
//! # Example
//!
//! ```
//! use sna_expr::{Poly, SymbolTable};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut table = SymbolTable::new();
//! let x = table.add_uniform("x", 64)?;           // ε_x ~ U[-1, 1]
//! let p = Poly::symbol(x).mul(&Poly::symbol(x)); // p = ε_x²
//! assert!((p.mean(&table) - 1.0 / 3.0).abs() < 1e-6);
//! let range = p.eval_interval(|_| sna_interval::Interval::UNIT);
//! assert_eq!(range, sna_interval::Interval::new(0.0, 1.0)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod eval;
mod monomial;
mod poly;
mod rational;
mod symbol;

pub use error::ExprError;
pub use eval::HistEvalOptions;
pub use monomial::Monomial;
pub use poly::Poly;
pub use rational::RationalFn;
pub use symbol::{SymbolId, SymbolInfo, SymbolTable};
