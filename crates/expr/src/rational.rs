use std::fmt;

use sna_interval::Interval;

use crate::{ExprError, Poly, SymbolId};

/// A quotient of polynomials `num / den` — the full "fractional function of
/// polynomials" of the paper's Eq. (1).
///
/// Rational forms arise as soon as a datapath contains division; they are
/// closed under `+`, `-`, `*`, `/`.  Constant denominators are simplified
/// away eagerly so that division-free datapaths stay in pure [`Poly`] form.
///
/// # Example
///
/// ```
/// use sna_expr::{Poly, RationalFn, SymbolTable};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut t = SymbolTable::new();
/// let x = t.add_uniform("x", 16)?;
/// // r = (1 + x) / (3 + x): well-defined since 3 + x ∈ [2, 4].
/// let r = RationalFn::from_poly(Poly::affine(1.0, [(x, 1.0)]))
///     .div(&RationalFn::from_poly(Poly::affine(3.0, [(x, 1.0)])))?;
/// let range = r.eval_interval(|_| sna_interval::Interval::UNIT)?;
/// assert!(range.lo() <= 0.0 && range.hi() >= 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RationalFn {
    num: Poly,
    den: Poly,
}

impl RationalFn {
    /// Wraps a polynomial as `p / 1`.
    pub fn from_poly(num: Poly) -> Self {
        RationalFn {
            num,
            den: Poly::constant(1.0),
        }
    }

    /// A constant rational function.
    pub fn constant(c: f64) -> Self {
        RationalFn::from_poly(Poly::constant(c))
    }

    /// Builds `num / den`, simplifying a constant denominator.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::DivisionByZero`] when `den` is the zero
    /// polynomial.
    pub fn new(num: Poly, den: Poly) -> Result<Self, ExprError> {
        if den.is_zero() {
            return Err(ExprError::DivisionByZero);
        }
        if den.is_constant() {
            let c = den.constant_term();
            return Ok(RationalFn::from_poly(num.scale(1.0 / c)));
        }
        Ok(RationalFn { num, den })
    }

    /// The numerator.
    pub fn num(&self) -> &Poly {
        &self.num
    }

    /// The denominator.
    pub fn den(&self) -> &Poly {
        &self.den
    }

    /// Whether the form is a plain polynomial (denominator is constant 1).
    pub fn is_polynomial(&self) -> bool {
        self.den.is_constant()
    }

    /// Extracts the polynomial when the denominator is constant.
    pub fn as_poly(&self) -> Option<Poly> {
        if self.den.is_constant() {
            Some(self.num.scale(1.0 / self.den.constant_term()))
        } else {
            None
        }
    }

    /// Sum: `a/b + c/d = (ad + cb) / bd`.
    pub fn add(&self, rhs: &RationalFn) -> RationalFn {
        if self.den == rhs.den {
            return RationalFn {
                num: self.num.add(&rhs.num),
                den: self.den.clone(),
            };
        }
        RationalFn {
            num: self.num.mul(&rhs.den).add(&rhs.num.mul(&self.den)),
            den: self.den.mul(&rhs.den),
        }
    }

    /// Difference.
    pub fn sub(&self, rhs: &RationalFn) -> RationalFn {
        self.add(&rhs.neg())
    }

    /// Negation.
    pub fn neg(&self) -> RationalFn {
        RationalFn {
            num: self.num.neg(),
            den: self.den.clone(),
        }
    }

    /// Product.
    pub fn mul(&self, rhs: &RationalFn) -> RationalFn {
        RationalFn {
            num: self.num.mul(&rhs.num),
            den: self.den.mul(&rhs.den),
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> RationalFn {
        RationalFn {
            num: self.num.scale(k),
            den: self.den.clone(),
        }
    }

    /// Quotient: `(a/b) / (c/d) = ad / bc`.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::DivisionByZero`] when `rhs`'s numerator is the
    /// zero polynomial.
    pub fn div(&self, rhs: &RationalFn) -> Result<RationalFn, ExprError> {
        if rhs.num.is_zero() {
            return Err(ExprError::DivisionByZero);
        }
        let num = self.num.mul(&rhs.den);
        let den = self.den.mul(&rhs.num);
        RationalFn::new(num, den)
    }

    /// Evaluates at a point assignment.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::DivisionByZero`] when the denominator evaluates
    /// to zero.
    pub fn eval_f64(&self, mut value: impl FnMut(SymbolId) -> f64) -> Result<f64, ExprError> {
        let d = self.den.eval_f64(&mut value);
        if d == 0.0 {
            return Err(ExprError::DivisionByZero);
        }
        Ok(self.num.eval_f64(&mut value) / d)
    }

    /// Guaranteed range by interval evaluation.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::DivisionByZero`] when the denominator range
    /// contains zero.
    pub fn eval_interval(
        &self,
        mut range: impl FnMut(SymbolId) -> Interval,
    ) -> Result<Interval, ExprError> {
        let d = self.den.eval_interval(&mut range);
        let n = self.num.eval_interval(&mut range);
        n.checked_div(&d).map_err(|_| ExprError::DivisionByZero)
    }

    /// All symbols appearing in numerator or denominator.
    pub fn symbols(&self) -> Vec<SymbolId> {
        let mut s = self.num.symbols();
        for id in self.den.symbols() {
            if let Err(pos) = s.binary_search(&id) {
                s.insert(pos, id);
            }
        }
        s
    }
}

impl fmt::Display for RationalFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_polynomial() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "({}) / ({})", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolTable;

    fn one_symbol() -> (SymbolTable, SymbolId) {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 16).unwrap();
        (t, x)
    }

    #[test]
    fn constant_denominator_simplifies() {
        let (_, x) = one_symbol();
        let r = RationalFn::new(Poly::symbol(x), Poly::constant(2.0)).unwrap();
        assert!(r.is_polynomial());
        let p = r.as_poly().unwrap();
        assert_eq!(p.coefficient(&crate::Monomial::from_symbol(x)), 0.5);
    }

    #[test]
    fn zero_denominator_is_rejected() {
        let (_, x) = one_symbol();
        assert!(matches!(
            RationalFn::new(Poly::symbol(x), Poly::zero()),
            Err(ExprError::DivisionByZero)
        ));
    }

    #[test]
    fn field_operations_agree_with_pointwise_math() {
        let (_, x) = one_symbol();
        // a = (1+x)/(3+x), b = x/2
        let a =
            RationalFn::new(Poly::affine(1.0, [(x, 1.0)]), Poly::affine(3.0, [(x, 1.0)])).unwrap();
        let b = RationalFn::from_poly(Poly::symbol(x).scale(0.5));
        let s = a.add(&b);
        let d = a.sub(&b);
        let p = a.mul(&b);
        let q = a.div(&b).unwrap();
        for t in [-0.9, -0.3, 0.2, 0.8] {
            let av = (1.0 + t) / (3.0 + t);
            let bv = 0.5 * t;
            let at = |_: SymbolId| t;
            assert!((s.eval_f64(at).unwrap() - (av + bv)).abs() < 1e-12);
            assert!((d.eval_f64(at).unwrap() - (av - bv)).abs() < 1e-12);
            assert!((p.eval_f64(at).unwrap() - (av * bv)).abs() < 1e-12);
            assert!((q.eval_f64(at).unwrap() - (av / bv)).abs() < 1e-9);
        }
    }

    #[test]
    fn same_denominator_addition_stays_small() {
        let (_, x) = one_symbol();
        let den = Poly::affine(3.0, [(x, 1.0)]);
        let a = RationalFn::new(Poly::constant(1.0), den.clone()).unwrap();
        let b = RationalFn::new(Poly::symbol(x), den.clone()).unwrap();
        let s = a.add(&b);
        assert_eq!(s.den(), &den);
    }

    #[test]
    fn interval_eval_rejects_zero_straddling_denominator() {
        let (_, x) = one_symbol();
        let r = RationalFn::new(Poly::constant(1.0), Poly::symbol(x)).unwrap();
        assert!(matches!(
            r.eval_interval(|_| Interval::UNIT),
            Err(ExprError::DivisionByZero)
        ));
        let safe = RationalFn::new(Poly::constant(1.0), Poly::affine(3.0, [(x, 1.0)])).unwrap();
        let range = safe.eval_interval(|_| Interval::UNIT).unwrap();
        assert!((range.lo() - 0.25).abs() < 1e-12);
        assert!((range.hi() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn division_by_zero_numerator_fails() {
        let (_, x) = one_symbol();
        let a = RationalFn::from_poly(Poly::symbol(x));
        let zero = RationalFn::from_poly(Poly::zero());
        assert!(matches!(a.div(&zero), Err(ExprError::DivisionByZero)));
    }

    #[test]
    fn symbols_union_covers_num_and_den() {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 8).unwrap();
        let y = t.add_uniform("y", 8).unwrap();
        let r = RationalFn::new(Poly::symbol(x), Poly::affine(2.0, [(y, 1.0)])).unwrap();
        assert_eq!(r.symbols(), vec![x, y]);
    }

    #[test]
    fn point_eval_detects_zero_denominator() {
        let (_, x) = one_symbol();
        let r = RationalFn::new(Poly::constant(1.0), Poly::symbol(x)).unwrap();
        assert!(matches!(
            r.eval_f64(|_| 0.0),
            Err(ExprError::DivisionByZero)
        ));
        assert!((r.eval_f64(|_| 0.5).unwrap() - 2.0).abs() < 1e-12);
    }
}
