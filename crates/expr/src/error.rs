use std::error::Error;
use std::fmt;

use sna_hist::HistError;

/// Errors produced by symbolic expression evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprError {
    /// A Cartesian histogram evaluation would enumerate more bin
    /// combinations than the configured budget.
    TooManyCombinations {
        /// Number of combinations the evaluation would visit.
        required: u128,
        /// The configured budget.
        budget: u128,
    },
    /// Division by a polynomial whose range contains zero.
    DivisionByZero,
    /// A referenced symbol does not exist in the table.
    UnknownSymbol {
        /// The raw index of the missing symbol.
        index: u32,
    },
    /// An underlying histogram operation failed.
    Hist(HistError),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::TooManyCombinations { required, budget } => write!(
                f,
                "cartesian evaluation requires {required} bin combinations, budget is {budget}"
            ),
            ExprError::DivisionByZero => {
                write!(f, "division by a polynomial whose range contains zero")
            }
            ExprError::UnknownSymbol { index } => {
                write!(f, "unknown symbol index {index}")
            }
            ExprError::Hist(e) => write!(f, "histogram operation failed: {e}"),
        }
    }
}

impl Error for ExprError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExprError::Hist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HistError> for ExprError {
    fn from(e: HistError) -> Self {
        ExprError::Hist(e)
    }
}
