use std::fmt;

use sna_interval::Interval;

use crate::SymbolId;

/// A product of symbol powers `∏ εᵢ^kᵢ` in canonical form (sorted by symbol,
/// no zero exponents).
///
/// # Example
///
/// ```
/// use sna_expr::{Monomial, SymbolTable};
///
/// let mut t = SymbolTable::new();
/// let x = t.add_uniform("x", 8).unwrap();
/// let y = t.add_uniform("y", 8).unwrap();
/// let m = Monomial::from_symbol(x).mul(&Monomial::from_symbol(y)).mul(&Monomial::from_symbol(x));
/// assert_eq!(m.degree(), 3);
/// assert_eq!(m.exponent(x), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    /// `(symbol, exponent)` pairs, sorted by symbol, exponents >= 1.
    factors: Vec<(SymbolId, u32)>,
}

impl Monomial {
    /// The empty monomial (the constant `1`).
    pub fn one() -> Self {
        Monomial::default()
    }

    /// The monomial consisting of a single symbol to the first power.
    pub fn from_symbol(id: SymbolId) -> Self {
        Monomial {
            factors: vec![(id, 1)],
        }
    }

    /// Builds a canonical monomial from arbitrary `(symbol, exponent)` pairs
    /// (merging duplicates, dropping zero exponents).
    pub fn from_factors(factors: impl IntoIterator<Item = (SymbolId, u32)>) -> Self {
        let mut v: Vec<(SymbolId, u32)> = Vec::new();
        for (id, e) in factors {
            if e == 0 {
                continue;
            }
            match v.iter_mut().find(|(i, _)| *i == id) {
                Some((_, acc)) => *acc += e,
                None => v.push((id, e)),
            }
        }
        v.sort_by_key(|&(id, _)| id);
        Monomial { factors: v }
    }

    /// Whether this is the constant monomial `1`.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total degree `Σ kᵢ`.
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, e)| e).sum()
    }

    /// The exponent of `id` (0 when absent).
    pub fn exponent(&self, id: SymbolId) -> u32 {
        self.factors
            .iter()
            .find(|&&(i, _)| i == id)
            .map_or(0, |&(_, e)| e)
    }

    /// Iterates over the `(symbol, exponent)` factors.
    pub fn factors(&self) -> impl Iterator<Item = (SymbolId, u32)> + '_ {
        self.factors.iter().copied()
    }

    /// Iterates over the distinct symbols.
    pub fn symbols(&self) -> impl Iterator<Item = SymbolId> + '_ {
        self.factors.iter().map(|&(id, _)| id)
    }

    /// Whether any factor's symbol satisfies `pred`.
    pub fn contains_symbol_where(&self, mut pred: impl FnMut(SymbolId) -> bool) -> bool {
        self.factors.iter().any(|&(id, _)| pred(id))
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, rhs: &Monomial) -> Monomial {
        let mut out = Vec::with_capacity(self.factors.len() + rhs.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < rhs.factors.len() {
            let (a, ea) = self.factors[i];
            let (b, eb) = rhs.factors[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push((a, ea));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((b, eb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a, ea + eb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&rhs.factors[j..]);
        Monomial { factors: out }
    }

    /// Evaluates at a point assignment.
    pub fn eval_f64(&self, mut value: impl FnMut(SymbolId) -> f64) -> f64 {
        self.factors
            .iter()
            .map(|&(id, e)| value(id).powi(e as i32))
            .product()
    }

    /// Evaluates over interval assignments, using the dependent power
    /// operation per symbol (so `ε²` is `[0, 1]`, not `[-1, 1]`).
    pub fn eval_interval(&self, mut range: impl FnMut(SymbolId) -> Interval) -> Interval {
        let mut acc = Interval::point(1.0);
        for &(id, e) in &self.factors {
            acc *= range(id).powi(e);
        }
        acc
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return write!(f, "1");
        }
        for (i, &(id, e)) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if e == 1 {
                write!(f, "{id}")?;
            } else {
                write!(f, "{id}^{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SymbolTable;

    fn two_symbols() -> (SymbolId, SymbolId) {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 4).unwrap();
        let y = t.add_uniform("y", 4).unwrap();
        (x, y)
    }

    #[test]
    fn canonical_form_merges_and_sorts() {
        let (x, y) = two_symbols();
        let m = Monomial::from_factors([(y, 1), (x, 2), (y, 0), (x, 1)]);
        assert_eq!(m.exponent(x), 3);
        assert_eq!(m.exponent(y), 1);
        assert_eq!(m.degree(), 4);
        let symbols: Vec<SymbolId> = m.symbols().collect();
        assert_eq!(symbols, vec![x, y]);
    }

    #[test]
    fn one_is_identity_for_mul() {
        let (x, _) = two_symbols();
        let m = Monomial::from_symbol(x);
        assert_eq!(Monomial::one().mul(&m), m);
        assert_eq!(m.mul(&Monomial::one()), m);
        assert!(Monomial::one().is_one());
        assert_eq!(Monomial::one().degree(), 0);
    }

    #[test]
    fn mul_adds_exponents() {
        let (x, y) = two_symbols();
        let a = Monomial::from_factors([(x, 2)]);
        let b = Monomial::from_factors([(x, 1), (y, 3)]);
        let p = a.mul(&b);
        assert_eq!(p.exponent(x), 3);
        assert_eq!(p.exponent(y), 3);
    }

    #[test]
    fn eval_f64_and_interval_agree_on_points() {
        let (x, y) = two_symbols();
        let m = Monomial::from_factors([(x, 2), (y, 1)]);
        let v = m.eval_f64(|id| if id == x { 3.0 } else { -2.0 });
        assert_eq!(v, -18.0);
        let iv = m.eval_interval(|id| Interval::point(if id == x { 3.0 } else { -2.0 }));
        assert_eq!(iv, Interval::point(-18.0));
    }

    #[test]
    fn interval_eval_uses_dependent_powers() {
        let (x, _) = two_symbols();
        let m = Monomial::from_factors([(x, 2)]);
        let iv = m.eval_interval(|_| Interval::UNIT);
        assert_eq!(iv, Interval::new(0.0, 1.0).unwrap());
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let (x, y) = two_symbols();
        let mut monos = [
            Monomial::from_factors([(y, 1)]),
            Monomial::one(),
            Monomial::from_factors([(x, 2)]),
            Monomial::from_factors([(x, 1)]),
        ];
        monos.sort();
        assert_eq!(monos[0], Monomial::one());
    }

    #[test]
    fn display_formats() {
        let (x, y) = two_symbols();
        assert_eq!(format!("{}", Monomial::one()), "1");
        let m = Monomial::from_factors([(x, 2), (y, 1)]);
        assert_eq!(format!("{m}"), "ε0^2·ε1");
    }
}
