//! Cartesian histogram evaluation of polynomials — the heart of the SNA
//! algorithm of Section 4 of the paper.
//!
//! Each symbol's PDF is a histogram of bins; the polynomial is evaluated with
//! interval arithmetic over every element of the Cartesian product of the
//! symbols' bins, and each partial result interval deposits the product of
//! the bin probabilities into the output histogram.

use sna_hist::{DepositPolicy, Grid, Histogram};
use sna_interval::Interval;

use crate::{ExprError, Poly, SymbolTable};

/// Options for [`Poly::eval_histogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistEvalOptions {
    /// Number of bins of the output histogram.
    pub out_bins: usize,
    /// How partial results deposit their mass (see [`DepositPolicy`]).
    pub deposit: DepositPolicy,
    /// Abort when the Cartesian product would exceed this many combinations.
    pub max_combinations: u128,
}

impl Default for HistEvalOptions {
    fn default() -> Self {
        HistEvalOptions {
            out_bins: 64,
            deposit: DepositPolicy::Uniform,
            max_combinations: 100_000_000,
        }
    }
}

impl HistEvalOptions {
    /// Sets the output bin count.
    pub fn with_out_bins(mut self, bins: usize) -> Self {
        self.out_bins = bins;
        self
    }

    /// Sets the deposit policy.
    pub fn with_deposit(mut self, deposit: DepositPolicy) -> Self {
        self.deposit = deposit;
        self
    }

    /// Sets the combination budget.
    pub fn with_max_combinations(mut self, max: u128) -> Self {
        self.max_combinations = max;
        self
    }
}

impl Poly {
    /// Evaluates the polynomial's distribution by exact Cartesian
    /// enumeration of all symbol-bin combinations (Section 4 algorithm).
    ///
    /// Runtime is `O(out_bins + T · ∏ binsᵢ)` where `T` is the term count
    /// and the product ranges over the symbols *appearing in this
    /// polynomial* — symbols registered in the table but absent from the
    /// polynomial cost nothing.
    ///
    /// # Errors
    ///
    /// * [`ExprError::TooManyCombinations`] when the bin product exceeds the
    ///   budget in `opts`;
    /// * [`ExprError::Hist`] when constructing the output histogram fails
    ///   (e.g. the polynomial is constant, so its support is degenerate).
    pub fn eval_histogram(
        &self,
        table: &SymbolTable,
        opts: &HistEvalOptions,
    ) -> Result<Histogram, ExprError> {
        let symbols = self.symbols();
        let pdfs: Vec<&Histogram> = symbols.iter().map(|&s| table.info(s).pdf()).collect();

        // Budget check.
        let mut combos: u128 = 1;
        for pdf in &pdfs {
            combos = combos.saturating_mul(pdf.n_bins() as u128);
            if combos > opts.max_combinations {
                return Err(ExprError::TooManyCombinations {
                    required: combos,
                    budget: opts.max_combinations,
                });
            }
        }

        // Output grid from the guaranteed range over full symbol supports.
        let full = self.eval_interval(|id| {
            let (lo, hi) = table.info(id).pdf().support();
            Interval::new(lo, hi).expect("pdf support is a valid interval")
        });
        let grid = Grid::over(full, opts.out_bins).map_err(ExprError::Hist)?;
        let mut masses = vec![0.0; grid.n_bins()];

        // Odometer enumeration of the Cartesian product.
        let mut idx = vec![0usize; symbols.len()];
        let mut ranges: Vec<Interval> = Vec::with_capacity(symbols.len());
        loop {
            ranges.clear();
            let mut mass = 1.0;
            for (k, pdf) in pdfs.iter().enumerate() {
                ranges.push(pdf.grid().bin_interval(idx[k]));
                mass *= pdf.prob(idx[k]);
            }
            if mass > 0.0 {
                let out = self.eval_interval(|id| {
                    let k = symbols
                        .binary_search(&id)
                        .expect("symbol present in polynomial");
                    ranges[k]
                });
                match opts.deposit {
                    DepositPolicy::Midpoint => masses[grid.bin_of(out.mid())] += mass,
                    _ => deposit_uniform_into(&grid, &mut masses, out, mass),
                }
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == idx.len() {
                    return Histogram::from_masses(grid, masses).map_err(ExprError::Hist);
                }
                idx[k] += 1;
                if idx[k] < pdfs[k].n_bins() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
}

/// Local uniform deposit (mirrors `sna_hist`'s internal primitive through
/// the public rebin API would allocate; this inlined version is hot-path).
fn deposit_uniform_into(grid: &Grid, masses: &mut [f64], iv: Interval, mass: f64) {
    let w = iv.width();
    if w == 0.0 {
        masses[grid.bin_of(iv.mid())] += mass;
        return;
    }
    let below = (grid.lo() - iv.lo()).max(0.0).min(w);
    let above = (iv.hi() - grid.hi()).max(0.0).min(w);
    if below > 0.0 {
        masses[0] += mass * below / w;
    }
    if above > 0.0 {
        masses[grid.n_bins() - 1] += mass * above / w;
    }
    let lo_bin = grid.bin_of(iv.lo());
    let hi_bin = grid.bin_of(iv.hi());
    for (i, m) in masses.iter_mut().enumerate().take(hi_bin + 1).skip(lo_bin) {
        let overlap = grid.bin_interval(i).overlap_len(&iv);
        if overlap > 0.0 {
            *m += mass * overlap / w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_symbol_round_trips_distribution() {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 32).unwrap();
        let p = Poly::symbol(x);
        let h = p
            .eval_histogram(&t, &HistEvalOptions::default().with_out_bins(32))
            .unwrap();
        assert_eq!(h.support(), (-1.0, 1.0));
        assert!(h.mean().abs() < 1e-9);
        assert!((h.variance() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn sum_of_symbols_is_triangular() {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 16).unwrap();
        let y = t.add_uniform("y", 16).unwrap();
        let p = Poly::symbol(x).add(&Poly::symbol(y));
        let h = p
            .eval_histogram(&t, &HistEvalOptions::default().with_out_bins(64))
            .unwrap();
        assert_eq!(h.support(), (-2.0, 2.0));
        assert!(h.mean().abs() < 1e-9);
        assert!((h.variance() - 2.0 / 3.0).abs() < 2e-2);
        assert!(h.density(0.0) > h.density(1.5));
    }

    #[test]
    fn histogram_moments_match_symbolic_moments() {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 48).unwrap();
        let y = t.add_uniform("y", 48).unwrap();
        // p = x + 0.5·xy + 0.25·y²
        let p = Poly::symbol(x)
            .add(&Poly::symbol(x).mul(&Poly::symbol(y)).scale(0.5))
            .add(&Poly::symbol(y).sqr().scale(0.25));
        let h = p
            .eval_histogram(&t, &HistEvalOptions::default().with_out_bins(128))
            .unwrap();
        assert!((h.mean() - p.mean(&t)).abs() < 5e-3);
        assert!((h.variance() - p.variance(&t)).abs() < 2e-2);
    }

    #[test]
    fn budget_is_enforced() {
        let mut t = SymbolTable::new();
        let ids: Vec<_> = (0..8)
            .map(|i| t.add_uniform(format!("s{i}"), 64).unwrap())
            .collect();
        let mut p = Poly::zero();
        for id in ids {
            p = p.add(&Poly::symbol(id));
        }
        let err = p
            .eval_histogram(
                &t,
                &HistEvalOptions::default().with_max_combinations(1_000_000),
            )
            .unwrap_err();
        assert!(matches!(err, ExprError::TooManyCombinations { .. }));
    }

    #[test]
    fn constant_polynomial_fails_gracefully() {
        let t = SymbolTable::new();
        let p = Poly::constant(1.0);
        assert!(matches!(
            p.eval_histogram(&t, &HistEvalOptions::default()),
            Err(ExprError::Hist(_))
        ));
    }

    #[test]
    fn unused_table_symbols_are_free() {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 8).unwrap();
        for i in 0..50 {
            t.add_uniform(format!("unused{i}"), 64).unwrap();
        }
        // Would explode if unused symbols were enumerated.
        let h = Poly::symbol(x)
            .eval_histogram(&t, &HistEvalOptions::default().with_max_combinations(16))
            .unwrap();
        assert_eq!(h.support(), (-1.0, 1.0));
    }

    #[test]
    fn midpoint_policy_gives_inner_support() {
        let mut t = SymbolTable::new();
        let x = t.add_uniform("x", 4).unwrap();
        let p = Poly::symbol(x).scale(2.0);
        let inner = p
            .eval_histogram(
                &t,
                &HistEvalOptions::default()
                    .with_out_bins(16)
                    .with_deposit(DepositPolicy::Midpoint),
            )
            .unwrap();
        let (lo, hi) = inner.effective_support(0.0);
        // Midpoints of the extreme bins are ±1.5 (scaled: ±1.5·... here ±1.5
        // of 2x with x-bin mids ±0.75).
        assert!(lo >= -2.0 + 0.2);
        assert!(hi <= 2.0 - 0.2);
    }
}
