//! Interval and affine arithmetic kernels.
//!
//! This crate provides the two classical *range analysis* baselines that the
//! Symbolic Noise Analysis (SNA) method is compared against in the DAC'08
//! paper, and at the same time the low-level kernels SNA itself is built on:
//!
//! * [`Interval`] — closed intervals `[lo, hi]` with the usual arithmetic
//!   (IA).  Interval arithmetic is *dependency-blind*: `x - x` evaluates to
//!   `[lo-hi, hi-lo]` rather than `0`.  Dedicated dependent operations
//!   ([`Interval::sqr`], [`Interval::powi`]) avoid the blow-up for the common
//!   self-multiplication case.
//! * [`AffineForm`] — affine arithmetic (AA).  A value is `c0 + Σ ci·εi` with
//!   `εi ∈ [-1, 1]`; first-order correlations between quantities are tracked
//!   exactly, non-linear operations introduce fresh symbols via an
//!   [`AffineContext`].
//!
//! # Example
//!
//! Reproducing the quadratic example of the paper (Table 1), `y = a·x² + b·x
//! + c` with `x ∈ \[-1,1\]`, `a ∈ \[9,10\]`, `b ∈ \[-6,-4\]`, `c ∈ \[6,7\]`:
//!
//! ```
//! use sna_interval::Interval;
//!
//! # fn main() -> Result<(), sna_interval::IntervalError> {
//! let x = Interval::new(-1.0, 1.0)?;
//! let a = Interval::new(9.0, 10.0)?;
//! let b = Interval::new(-6.0, -4.0)?;
//! let c = Interval::new(6.0, 7.0)?;
//! let y = a * x.sqr() + b * x + c;
//! assert_eq!(y, Interval::new(0.0, 23.0)?); // the paper's IA row
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affine;
mod error;
mod interval;

pub use affine::{AffineContext, AffineForm};
pub use error::IntervalError;
pub use interval::Interval;
