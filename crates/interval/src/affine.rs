use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Neg, Sub};

use crate::{Interval, IntervalError};

/// Mints fresh affine noise-symbol identifiers.
///
/// Affine arithmetic tracks first-order correlations through shared symbol
/// ids; every *non-linear* operation (multiplication, square, reciprocal)
/// introduces a fresh symbol to carry its linearization error.  All forms
/// participating in one computation must share one context so that fresh
/// symbols never collide with existing ones.
///
/// # Example
///
/// ```
/// use sna_interval::{AffineContext, Interval};
///
/// # fn main() -> Result<(), sna_interval::IntervalError> {
/// let ctx = AffineContext::new();
/// let x = ctx.from_interval(Interval::new(-1.0, 1.0)?);
/// // x - x is exactly zero under AA (but [-2, 2] under IA):
/// let z = x.clone() - x.clone();
/// assert_eq!(z.to_interval(), Interval::new(0.0, 0.0)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct AffineContext {
    next: Cell<u32>,
}

impl AffineContext {
    /// Creates a context with no symbols allocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh symbol id.
    pub fn fresh_symbol(&self) -> u32 {
        let id = self.next.get();
        self.next.set(id + 1);
        id
    }

    /// Number of symbols allocated so far.
    pub fn symbol_count(&self) -> u32 {
        self.next.get()
    }

    /// Creates an affine form spanning `interval` using one fresh symbol:
    /// `mid + rad·ε`.
    pub fn from_interval(&self, interval: Interval) -> AffineForm {
        let mut terms = BTreeMap::new();
        let rad = interval.rad();
        let id = self.fresh_symbol();
        if rad > 0.0 {
            terms.insert(id, rad);
        }
        AffineForm {
            center: interval.mid(),
            terms,
        }
    }
}

/// An affine form `c₀ + Σᵢ cᵢ·εᵢ` with `εᵢ ∈ [-1, 1]`.
///
/// The symbols `εᵢ` are shared across forms created from the same
/// [`AffineContext`]; linear operations combine coefficients exactly, so
/// correlated uncertainty cancels (`x - x == 0`).  Non-linear operations are
/// conservatively linearized, appending a fresh symbol bounding the residual.
#[derive(Clone, Debug, PartialEq)]
pub struct AffineForm {
    center: f64,
    terms: BTreeMap<u32, f64>,
}

impl AffineForm {
    /// Creates a constant (fully certain) affine form.
    pub fn constant(c: f64) -> Self {
        AffineForm {
            center: c,
            terms: BTreeMap::new(),
        }
    }

    /// Creates a form from explicit center and `(symbol, coefficient)` terms.
    ///
    /// Zero coefficients are dropped.
    pub fn from_terms(center: f64, terms: impl IntoIterator<Item = (u32, f64)>) -> Self {
        let terms = terms.into_iter().filter(|&(_, c)| c != 0.0).collect();
        AffineForm { center, terms }
    }

    /// The central value `c₀`.
    pub fn center(&self) -> f64 {
        self.center
    }

    /// The coefficient of symbol `id` (0 if absent).
    pub fn coefficient(&self, id: u32) -> f64 {
        self.terms.get(&id).copied().unwrap_or(0.0)
    }

    /// Iterates over `(symbol, coefficient)` pairs in symbol order.
    pub fn terms(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.terms.iter().map(|(&k, &v)| (k, v))
    }

    /// Total deviation radius `Σ |cᵢ|`.
    pub fn radius(&self) -> f64 {
        self.terms.values().map(|c| c.abs()).sum()
    }

    /// The enclosing interval `[c₀ - radius, c₀ + radius]`.
    pub fn to_interval(&self) -> Interval {
        Interval::centered(self.center, self.radius())
    }

    /// Whether the form carries no uncertainty.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Multiplies by a scalar.
    pub fn scale(&self, k: f64) -> AffineForm {
        AffineForm {
            center: k * self.center,
            terms: self
                .terms
                .iter()
                .filter(|&(_, &c)| k * c != 0.0)
                .map(|(&id, &c)| (id, k * c))
                .collect(),
        }
    }

    /// Adds a scalar.
    pub fn shift(&self, c: f64) -> AffineForm {
        AffineForm {
            center: self.center + c,
            terms: self.terms.clone(),
        }
    }

    /// Affine image `a·x + b` (exact in AA).
    pub fn affine(&self, a: f64, b: f64) -> AffineForm {
        self.scale(a).shift(b)
    }

    /// Multiplication with conservative linearization.
    ///
    /// The bilinear residual `(Σ aᵢεᵢ)(Σ bᵢεᵢ)` is bounded by
    /// `radius(a)·radius(b)` and attached to a fresh symbol from `ctx`.
    pub fn mul(&self, rhs: &AffineForm, ctx: &AffineContext) -> AffineForm {
        let mut terms: BTreeMap<u32, f64> = BTreeMap::new();
        for (&id, &c) in &self.terms {
            *terms.entry(id).or_insert(0.0) += rhs.center * c;
        }
        for (&id, &c) in &rhs.terms {
            *terms.entry(id).or_insert(0.0) += self.center * c;
        }
        terms.retain(|_, c| *c != 0.0);
        let residual = self.radius() * rhs.radius();
        if residual > 0.0 {
            terms.insert(ctx.fresh_symbol(), residual);
        }
        AffineForm {
            center: self.center * rhs.center,
            terms,
        }
    }

    /// Dependent square with the standard tightened AA rule.
    ///
    /// Uses `x² = c₀² + 2c₀·(Σcᵢεᵢ) + r²·(ε_new + 1)/2`-style remainder
    /// centering, which halves the residual compared to `mul(self, self)`
    /// and keeps the lower bound non-negative when possible.
    pub fn sqr(&self, ctx: &AffineContext) -> AffineForm {
        let r = self.radius();
        // (Σ cᵢ εᵢ)² ∈ [0, r²]; represent as r²/2 + (r²/2)·ε_new.
        let mut terms: BTreeMap<u32, f64> = BTreeMap::new();
        for (&id, &c) in &self.terms {
            let v = 2.0 * self.center * c;
            if v != 0.0 {
                terms.insert(id, v);
            }
        }
        let half = 0.5 * r * r;
        if half > 0.0 {
            terms.insert(ctx.fresh_symbol(), half);
        }
        AffineForm {
            center: self.center * self.center + half,
            terms,
        }
    }

    /// Reciprocal `1/x` via the min-range linear approximation.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::DivisionByZero`] if the enclosing interval of
    /// `self` contains zero.
    pub fn recip(&self, ctx: &AffineContext) -> Result<AffineForm, IntervalError> {
        let range = self.to_interval();
        if range.contains(0.0) {
            return Err(IntervalError::DivisionByZero {
                denominator: (range.lo(), range.hi()),
            });
        }
        let (a, b) = (range.lo(), range.hi());
        // Min-range approximation of f(x) = 1/x on [a, b] (sign-stable):
        // slope = -1/b² (for a > 0), intercepts chosen to center the error.
        let slope = -1.0 / (b * b);
        let fa = 1.0 / a - slope * a;
        let fb = 1.0 / b - slope * b;
        let zeta = 0.5 * (fa + fb);
        let delta = 0.5 * (fa - fb).abs();
        let mut out = self.scale(slope).shift(zeta);
        if delta > 0.0 {
            out.terms.insert(ctx.fresh_symbol(), delta);
        }
        Ok(out)
    }

    /// Division `self / rhs` as `self · (1/rhs)`.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::DivisionByZero`] if `rhs` may be zero.
    pub fn div(&self, rhs: &AffineForm, ctx: &AffineContext) -> Result<AffineForm, IntervalError> {
        Ok(self.mul(&rhs.recip(ctx)?, ctx))
    }

    /// Number of non-zero noise terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }
}

impl Default for AffineForm {
    fn default() -> Self {
        AffineForm::constant(0.0)
    }
}

impl fmt::Display for AffineForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.center)?;
        for (&id, &c) in &self.terms {
            if c >= 0.0 {
                write!(f, " + {c}·ε{id}")?;
            } else {
                write!(f, " - {}·ε{id}", -c)?;
            }
        }
        Ok(())
    }
}

impl Add for AffineForm {
    type Output = AffineForm;
    fn add(self, rhs: AffineForm) -> AffineForm {
        let mut terms = self.terms;
        for (id, c) in rhs.terms {
            *terms.entry(id).or_insert(0.0) += c;
        }
        terms.retain(|_, c| *c != 0.0);
        AffineForm {
            center: self.center + rhs.center,
            terms,
        }
    }
}

impl Sub for AffineForm {
    type Output = AffineForm;
    fn sub(self, rhs: AffineForm) -> AffineForm {
        self + (-rhs)
    }
}

impl Neg for AffineForm {
    type Output = AffineForm;
    fn neg(self) -> AffineForm {
        AffineForm {
            center: -self.center,
            terms: self.terms.into_iter().map(|(id, c)| (id, -c)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn correlation_cancels() {
        let ctx = AffineContext::new();
        let x = ctx.from_interval(iv(-1.0, 1.0));
        let z = x.clone() - x;
        assert!(z.is_constant());
        assert_eq!(z.to_interval(), iv(0.0, 0.0));
    }

    #[test]
    fn addition_of_independent_forms() {
        let ctx = AffineContext::new();
        let x = ctx.from_interval(iv(0.0, 2.0));
        let y = ctx.from_interval(iv(-1.0, 1.0));
        let s = x + y;
        assert_eq!(s.to_interval(), iv(-1.0, 3.0));
    }

    #[test]
    fn scale_and_shift_are_exact() {
        let ctx = AffineContext::new();
        let x = ctx.from_interval(iv(-1.0, 1.0));
        let y = x.affine(-3.0, 2.0);
        assert_eq!(y.to_interval(), iv(-1.0, 5.0));
        assert_eq!(y.center(), 2.0);
    }

    #[test]
    fn multiplication_tracks_first_order_terms() {
        let ctx = AffineContext::new();
        let x = ctx.from_interval(iv(1.0, 3.0)); // 2 + ε0
        let y = ctx.from_interval(iv(4.0, 6.0)); // 5 + ε1
        let p = x.mul(&y, &ctx);
        // Exact range is [4, 18]; AA gives 10 ± (5 + 2 + 1) = [2, 18].
        assert_eq!(p.center(), 10.0);
        assert_eq!(p.to_interval(), iv(2.0, 18.0));
    }

    #[test]
    fn square_is_tighter_than_mul() {
        let ctx = AffineContext::new();
        let x = ctx.from_interval(iv(-1.0, 1.0));
        let sq = x.sqr(&ctx);
        // ε² ∈ [0, 1] represented exactly as 1/2 + (1/2)ε_new.
        assert_eq!(sq.to_interval(), iv(0.0, 1.0));
        let naive = x.mul(&x.clone(), &ctx);
        assert_eq!(naive.to_interval(), iv(-1.0, 1.0));
    }

    #[test]
    fn reciprocal_encloses_true_range() {
        let ctx = AffineContext::new();
        let x = ctx.from_interval(iv(2.0, 4.0));
        let r = x.recip(&ctx).unwrap();
        let range = r.to_interval();
        assert!(range.lo() <= 0.25 && 0.5 <= range.hi());
        // Min-range keeps the width at most twice the true width.
        assert!(range.width() <= 2.0 * 0.25 + 1e-12);
        // Division by a zero-straddling form fails.
        let z = ctx.from_interval(iv(-1.0, 1.0));
        assert!(z.recip(&ctx).is_err());
    }

    #[test]
    fn division_combines_mul_and_recip() {
        let ctx = AffineContext::new();
        let x = ctx.from_interval(iv(1.0, 2.0));
        let y = ctx.from_interval(iv(4.0, 5.0));
        let q = x.div(&y, &ctx).unwrap();
        let range = q.to_interval();
        // True range is [0.2, 0.5].
        assert!(range.lo() <= 0.2 + 1e-12 && 0.5 - 1e-12 <= range.hi());
    }

    #[test]
    fn paper_table1_aa_row() {
        // y = a x² + b x + c: the paper reports y = 6.5 + 16.5·ε ⇒ [-10, 23].
        let ctx = AffineContext::new();
        let x = ctx.from_interval(iv(-1.0, 1.0));
        let a = ctx.from_interval(iv(9.0, 10.0));
        let b = ctx.from_interval(iv(-6.0, -4.0));
        let c = ctx.from_interval(iv(6.0, 7.0));
        // Follow the paper's formulation: x² is a fresh symbol ε_new ∈ [-1,1]
        // when computed as x·x (no dependency tracking across the product).
        let x2 = x.mul(&x.clone(), &ctx);
        let y = a.mul(&x2, &ctx) + b.mul(&x, &ctx) + c;
        assert_eq!(y.center(), 6.5);
        assert!((y.radius() - 16.5).abs() < 1e-12);
        assert_eq!(y.to_interval(), iv(-10.0, 23.0));
    }

    #[test]
    fn display_is_readable() {
        let f = AffineForm::from_terms(1.5, [(0, 0.5), (2, -0.25)]);
        assert_eq!(format!("{f}"), "1.5 + 0.5·ε0 - 0.25·ε2");
    }
}
