use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::IntervalError;

/// A closed real interval `[lo, hi]` with `lo <= hi`, both finite.
///
/// `Interval` implements the classical interval-arithmetic operators.  The
/// operator impls (`+`, `-`, `*`) are total; division by an interval that may
/// contain zero must go through [`Interval::checked_div`].
///
/// # Example
///
/// ```
/// use sna_interval::Interval;
///
/// # fn main() -> Result<(), sna_interval::IntervalError> {
/// let x = Interval::new(1.0, 2.0)?;
/// let y = Interval::new(-1.0, 3.0)?;
/// assert_eq!(x + y, Interval::new(0.0, 5.0)?);
/// assert_eq!(x * y, Interval::new(-2.0, 6.0)?);
/// // Dependency blindness of IA:
/// assert_eq!(x - x, Interval::new(-1.0, 1.0)?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// The unit interval `[-1, 1]` in which every SNA noise symbol lives.
    pub const UNIT: Interval = Interval { lo: -1.0, hi: 1.0 };

    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    /// Creates an interval from ordered, finite bounds.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::UnorderedBounds`] if `lo > hi` and
    /// [`IntervalError::NonFiniteBound`] if either bound is NaN or infinite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, IntervalError> {
        if !lo.is_finite() {
            return Err(IntervalError::NonFiniteBound { value: lo });
        }
        if !hi.is_finite() {
            return Err(IntervalError::NonFiniteBound { value: hi });
        }
        if lo > hi {
            return Err(IntervalError::UnorderedBounds { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// Creates the degenerate interval `[x, x]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn point(x: f64) -> Self {
        assert!(x.is_finite(), "point interval requires a finite value");
        Interval { lo: x, hi: x }
    }

    /// Creates the symmetric interval `[-radius, radius]`.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn symmetric(radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "symmetric interval requires a finite non-negative radius"
        );
        Interval {
            lo: -radius,
            hi: radius,
        }
    }

    /// Creates the interval `[mid - rad, mid + rad]`.
    ///
    /// # Panics
    ///
    /// Panics if the resulting bounds are not finite or `rad < 0`.
    pub fn centered(mid: f64, rad: f64) -> Self {
        assert!(rad >= 0.0, "radius must be non-negative");
        let lo = mid - rad;
        let hi = mid + rad;
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        Interval { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Midpoint `(lo + hi) / 2`.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Radius `(hi - lo) / 2`.
    pub fn rad(&self) -> f64 {
        0.5 * (self.hi - self.lo)
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Magnitude: `max(|lo|, |hi|)`, the largest absolute value contained.
    pub fn mag(&self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Mignitude: the smallest absolute value contained (0 if the interval
    /// straddles zero).
    pub fn mig(&self) -> f64 {
        if self.contains(0.0) {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    /// Whether `x` lies inside the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Whether the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Convex hull of `self` and `other` (smallest interval containing both).
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection of `self` and `other`, or `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Length of the overlap with `other` (0 when disjoint).
    pub fn overlap_len(&self, other: &Interval) -> f64 {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0.0)
    }

    /// Dependent square: the exact range of `x²` for `x` in the interval.
    ///
    /// Unlike `self * self` this accounts for the fact that both factors are
    /// the *same* variable: `[-1, 1].sqr() == [0, 1]`, not `[-1, 1]`.
    pub fn sqr(&self) -> Interval {
        let a = self.lo * self.lo;
        let b = self.hi * self.hi;
        if self.contains(0.0) {
            Interval {
                lo: 0.0,
                hi: a.max(b),
            }
        } else {
            Interval {
                lo: a.min(b),
                hi: a.max(b),
            }
        }
    }

    /// Dependent integer power: the exact range of `xⁿ` for `x` in the
    /// interval.
    pub fn powi(&self, n: u32) -> Interval {
        match n {
            0 => Interval::point(1.0),
            1 => *self,
            _ if n.is_multiple_of(2) => {
                let a = self.lo.powi(n as i32);
                let b = self.hi.powi(n as i32);
                if self.contains(0.0) {
                    Interval {
                        lo: 0.0,
                        hi: a.max(b),
                    }
                } else {
                    Interval {
                        lo: a.min(b),
                        hi: a.max(b),
                    }
                }
            }
            _ => {
                // Odd power: monotone.
                Interval {
                    lo: self.lo.powi(n as i32),
                    hi: self.hi.powi(n as i32),
                }
            }
        }
    }

    /// Exact range of `|x|` for `x` in the interval.
    pub fn abs(&self) -> Interval {
        if self.lo >= 0.0 {
            *self
        } else if self.hi <= 0.0 {
            Interval {
                lo: -self.hi,
                hi: -self.lo,
            }
        } else {
            Interval {
                lo: 0.0,
                hi: self.mag(),
            }
        }
    }

    /// Scales by a scalar (`k * [lo, hi]`, handling negative `k`).
    pub fn scale(&self, k: f64) -> Interval {
        if k >= 0.0 {
            Interval {
                lo: k * self.lo,
                hi: k * self.hi,
            }
        } else {
            Interval {
                lo: k * self.hi,
                hi: k * self.lo,
            }
        }
    }

    /// Translates by a scalar (`[lo + c, hi + c]`).
    pub fn shift(&self, c: f64) -> Interval {
        Interval {
            lo: self.lo + c,
            hi: self.hi + c,
        }
    }

    /// Affine image `a·x + b`.
    pub fn affine(&self, a: f64, b: f64) -> Interval {
        self.scale(a).shift(b)
    }

    /// Reciprocal `1 / x`.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::DivisionByZero`] if the interval contains
    /// zero.
    pub fn recip(&self) -> Result<Interval, IntervalError> {
        if self.contains(0.0) {
            return Err(IntervalError::DivisionByZero {
                denominator: (self.lo, self.hi),
            });
        }
        Ok(Interval {
            lo: 1.0 / self.hi,
            hi: 1.0 / self.lo,
        })
    }

    /// Interval division `self / rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`IntervalError::DivisionByZero`] if `rhs` contains zero.
    pub fn checked_div(&self, rhs: &Interval) -> Result<Interval, IntervalError> {
        Ok(*self * rhs.recip()?)
    }

    /// Element-wise minimum range: exact range of `min(x, y)`.
    pub fn min(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Element-wise maximum range: exact range of `max(x, y)`.
    pub fn max(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Square root of a non-negative interval.
    ///
    /// # Panics
    ///
    /// Panics if the interval contains negative values.
    pub fn sqrt(&self) -> Interval {
        assert!(self.lo >= 0.0, "sqrt of an interval with negative values");
        Interval {
            lo: self.lo.sqrt(),
            hi: self.hi.sqrt(),
        }
    }

    /// Linear interpolation: the point at parameter `t ∈ [0, 1]` between the
    /// bounds.
    pub fn lerp(&self, t: f64) -> f64 {
        self.lo + t * (self.hi - self.lo)
    }

    /// Splits the interval into `n` equal sub-intervals.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn split(&self, n: usize) -> Vec<Interval> {
        assert!(n > 0, "cannot split into zero parts");
        let w = self.width() / n as f64;
        (0..n)
            .map(|i| {
                let lo = self.lo + i as f64 * w;
                // Use the exact upper bound on the last piece to avoid
                // accumulation error leaving a gap.
                let hi = if i + 1 == n { self.hi } else { lo + w };
                Interval { lo, hi }
            })
            .collect()
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::ZERO
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

impl From<f64> for Interval {
    fn from(x: f64) -> Self {
        Interval::point(x)
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo + rhs.lo,
            hi: self.hi + rhs.hi,
        }
    }
}

impl AddAssign for Interval {
    fn add_assign(&mut self, rhs: Interval) {
        *self = *self + rhs;
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval {
            lo: self.lo - rhs.hi,
            hi: self.hi - rhs.lo,
        }
    }
}

impl SubAssign for Interval {
    fn sub_assign(&mut self, rhs: Interval) {
        *self = *self - rhs;
    }
}

impl Mul for Interval {
    type Output = Interval;
    fn mul(self, rhs: Interval) -> Interval {
        let c = [
            self.lo * rhs.lo,
            self.lo * rhs.hi,
            self.hi * rhs.lo,
            self.hi * rhs.hi,
        ];
        let mut lo = c[0];
        let mut hi = c[0];
        for &v in &c[1..] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Interval { lo, hi }
    }
}

impl MulAssign for Interval {
    fn mul_assign(&mut self, rhs: Interval) {
        *self = *self * rhs;
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

/// Total division operator.
///
/// # Panics
///
/// Panics if `rhs` contains zero; use [`Interval::checked_div`] to handle
/// that case gracefully.
impl Div for Interval {
    type Output = Interval;
    fn div(self, rhs: Interval) -> Interval {
        self.checked_div(&rhs)
            .expect("interval division by an interval containing zero")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn construction_validates_bounds() {
        assert!(Interval::new(1.0, 0.0).is_err());
        assert!(Interval::new(f64::NAN, 0.0).is_err());
        assert!(Interval::new(0.0, f64::INFINITY).is_err());
        assert!(Interval::new(-1.0, 1.0).is_ok());
        assert!(Interval::new(2.0, 2.0).is_ok());
    }

    #[test]
    fn basic_arithmetic() {
        let a = iv(1.0, 2.0);
        let b = iv(-3.0, 4.0);
        assert_eq!(a + b, iv(-2.0, 6.0));
        assert_eq!(a - b, iv(-3.0, 5.0));
        assert_eq!(a * b, iv(-6.0, 8.0));
        assert_eq!(-a, iv(-2.0, -1.0));
    }

    #[test]
    fn multiplication_sign_cases() {
        assert_eq!(iv(-2.0, -1.0) * iv(-4.0, -3.0), iv(3.0, 8.0));
        assert_eq!(iv(-2.0, -1.0) * iv(3.0, 4.0), iv(-8.0, -3.0));
        assert_eq!(iv(-1.0, 2.0) * iv(-3.0, 5.0), iv(-6.0, 10.0));
        assert_eq!(iv(0.0, 0.0) * iv(-3.0, 5.0), iv(0.0, 0.0));
    }

    #[test]
    fn division_excludes_zero_denominator() {
        let a = iv(1.0, 2.0);
        assert!(a.checked_div(&iv(-1.0, 1.0)).is_err());
        assert_eq!(a.checked_div(&iv(2.0, 4.0)).unwrap(), iv(0.25, 1.0));
        assert_eq!(a.checked_div(&iv(-4.0, -2.0)).unwrap(), iv(-1.0, -0.25));
    }

    #[test]
    fn dependent_square_is_tight() {
        assert_eq!(iv(-1.0, 1.0).sqr(), iv(0.0, 1.0));
        assert_eq!(iv(-3.0, 2.0).sqr(), iv(0.0, 9.0));
        assert_eq!(iv(2.0, 3.0).sqr(), iv(4.0, 9.0));
        assert_eq!(iv(-3.0, -2.0).sqr(), iv(4.0, 9.0));
        // Naive multiplication is strictly wider on sign-straddling input.
        let x = iv(-1.0, 1.0);
        assert_eq!(x * x, iv(-1.0, 1.0));
    }

    #[test]
    fn dependent_powers() {
        assert_eq!(iv(-2.0, 1.0).powi(0), Interval::point(1.0));
        assert_eq!(iv(-2.0, 1.0).powi(1), iv(-2.0, 1.0));
        assert_eq!(iv(-2.0, 1.0).powi(2), iv(0.0, 4.0));
        assert_eq!(iv(-2.0, 1.0).powi(3), iv(-8.0, 1.0));
        assert_eq!(iv(-2.0, -1.0).powi(4), iv(1.0, 16.0));
    }

    #[test]
    fn abs_and_magnitudes() {
        assert_eq!(iv(-3.0, 2.0).abs(), iv(0.0, 3.0));
        assert_eq!(iv(1.0, 2.0).abs(), iv(1.0, 2.0));
        assert_eq!(iv(-2.0, -1.0).abs(), iv(1.0, 2.0));
        assert_eq!(iv(-3.0, 2.0).mag(), 3.0);
        assert_eq!(iv(-3.0, 2.0).mig(), 0.0);
        assert_eq!(iv(-3.0, -2.0).mig(), 2.0);
    }

    #[test]
    fn hull_intersect_overlap() {
        let a = iv(0.0, 2.0);
        let b = iv(1.0, 3.0);
        assert_eq!(a.hull(&b), iv(0.0, 3.0));
        assert_eq!(a.intersect(&b), Some(iv(1.0, 2.0)));
        assert_eq!(a.overlap_len(&b), 1.0);
        let c = iv(5.0, 6.0);
        assert_eq!(a.intersect(&c), None);
        assert_eq!(a.overlap_len(&c), 0.0);
    }

    #[test]
    fn scale_shift_affine() {
        let a = iv(-1.0, 2.0);
        assert_eq!(a.scale(3.0), iv(-3.0, 6.0));
        assert_eq!(a.scale(-2.0), iv(-4.0, 2.0));
        assert_eq!(a.shift(1.5), iv(0.5, 3.5));
        assert_eq!(a.affine(-1.0, 1.0), iv(-1.0, 2.0));
    }

    #[test]
    fn split_covers_whole_interval() {
        let a = iv(0.0, 1.0);
        let parts = a.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0].lo(), 0.0);
        assert_eq!(parts[3].hi(), 1.0);
        for w in parts.windows(2) {
            assert_eq!(w[0].hi(), w[1].lo());
        }
    }

    #[test]
    fn min_max_envelopes() {
        let a = iv(0.0, 3.0);
        let b = iv(1.0, 2.0);
        assert_eq!(a.min(&b), iv(0.0, 2.0));
        assert_eq!(a.max(&b), iv(1.0, 3.0));
    }

    #[test]
    fn paper_table1_ia_row() {
        // y = a x^2 + b x + c over the paper's boxes gives [0, 23] under IA.
        let x = iv(-1.0, 1.0);
        let a = iv(9.0, 10.0);
        let b = iv(-6.0, -4.0);
        let c = iv(6.0, 7.0);
        let y = a * x.sqr() + b * x + c;
        assert_eq!(y, iv(0.0, 23.0));
    }
}
