use std::error::Error;
use std::fmt;

/// Errors produced by interval and affine arithmetic constructors and
/// operations.
#[derive(Clone, Debug, PartialEq)]
pub enum IntervalError {
    /// The bounds were not ordered (`lo > hi`).
    UnorderedBounds {
        /// Requested lower bound.
        lo: f64,
        /// Requested upper bound.
        hi: f64,
    },
    /// A bound was NaN or infinite.
    NonFiniteBound {
        /// The offending value.
        value: f64,
    },
    /// Division by an interval that contains zero.
    DivisionByZero {
        /// The denominator interval as `(lo, hi)`.
        denominator: (f64, f64),
    },
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::UnorderedBounds { lo, hi } => {
                write!(f, "interval bounds are unordered: lo = {lo} > hi = {hi}")
            }
            IntervalError::NonFiniteBound { value } => {
                write!(f, "interval bound is not finite: {value}")
            }
            IntervalError::DivisionByZero { denominator } => write!(
                f,
                "division by interval [{}, {}] which contains zero",
                denominator.0, denominator.1
            ),
        }
    }
}

impl Error for IntervalError {}
