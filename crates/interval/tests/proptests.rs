//! Property-based tests for interval and affine arithmetic.
//!
//! The fundamental soundness property of both IA and AA is *inclusion
//! isotonicity*: for any points chosen inside the operand ranges, the result
//! of the real operation lies inside the computed range.

use proptest::prelude::*;
use sna_interval::{AffineContext, Interval};

const BOUND: f64 = 1e6;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-BOUND..BOUND, -BOUND..BOUND)
        .prop_map(|(a, b): (f64, f64)| Interval::new(a.min(b), a.max(b)).unwrap())
}

/// A point inside a given interval, parameterized by t in [0,1].
fn point_in(iv: &Interval, t: f64) -> f64 {
    iv.lerp(t.clamp(0.0, 1.0))
}

proptest! {
    #[test]
    fn add_is_inclusion_isotonic(a in interval_strategy(), b in interval_strategy(),
                                 ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        let (x, y) = (point_in(&a, ta), point_in(&b, tb));
        let r = a + b;
        prop_assert!(r.lo() - 1e-6 <= x + y && x + y <= r.hi() + 1e-6);
    }

    #[test]
    fn sub_is_inclusion_isotonic(a in interval_strategy(), b in interval_strategy(),
                                 ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        let (x, y) = (point_in(&a, ta), point_in(&b, tb));
        let r = a - b;
        prop_assert!(r.lo() - 1e-6 <= x - y && x - y <= r.hi() + 1e-6);
    }

    #[test]
    fn mul_is_inclusion_isotonic(a in interval_strategy(), b in interval_strategy(),
                                 ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        let (x, y) = (point_in(&a, ta), point_in(&b, tb));
        let r = a * b;
        let tol = 1e-6 * (1.0 + r.mag());
        prop_assert!(r.lo() - tol <= x * y && x * y <= r.hi() + tol);
    }

    #[test]
    fn sqr_is_inclusion_isotonic_and_subset_of_mul(a in interval_strategy(), t in 0.0..1.0f64) {
        let x = point_in(&a, t);
        let s = a.sqr();
        let tol = 1e-6 * (1.0 + s.mag());
        prop_assert!(s.lo() - tol <= x * x && x * x <= s.hi() + tol);
        let naive = a * a;
        prop_assert!(naive.lo() <= s.lo() + tol && s.hi() <= naive.hi() + tol);
    }

    #[test]
    fn hull_contains_both(a in interval_strategy(), b in interval_strategy()) {
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a));
        prop_assert!(h.contains_interval(&b));
    }

    #[test]
    fn split_partitions_width(a in interval_strategy(), n in 1usize..16) {
        let parts = a.split(n);
        prop_assert_eq!(parts.len(), n);
        let total: f64 = parts.iter().map(|p| p.width()).sum();
        prop_assert!((total - a.width()).abs() <= 1e-9 * (1.0 + a.width()));
    }

    #[test]
    fn affine_add_matches_interval_semantics(
        a in interval_strategy(), b in interval_strategy(),
        ta in 0.0..1.0f64, tb in 0.0..1.0f64)
    {
        let ctx = AffineContext::new();
        let fa = ctx.from_interval(a);
        let fb = ctx.from_interval(b);
        let sum = fa + fb;
        let (x, y) = (point_in(&a, ta), point_in(&b, tb));
        let r = sum.to_interval();
        let tol = 1e-6 * (1.0 + r.mag());
        prop_assert!(r.lo() - tol <= x + y && x + y <= r.hi() + tol);
    }

    #[test]
    fn affine_mul_encloses_product(
        a in interval_strategy(), b in interval_strategy(),
        ta in 0.0..1.0f64, tb in 0.0..1.0f64)
    {
        let ctx = AffineContext::new();
        let fa = ctx.from_interval(a);
        let fb = ctx.from_interval(b);
        let prod = fa.mul(&fb, &ctx);
        let (x, y) = (point_in(&a, ta), point_in(&b, tb));
        let r = prod.to_interval();
        let tol = 1e-5 * (1.0 + r.mag());
        prop_assert!(r.lo() - tol <= x * y && x * y <= r.hi() + tol);
    }

    #[test]
    fn affine_self_subtraction_is_zero(a in interval_strategy()) {
        let ctx = AffineContext::new();
        let fa = ctx.from_interval(a);
        let z = fa.clone() - fa;
        prop_assert_eq!(z.radius(), 0.0);
        prop_assert_eq!(z.center(), 0.0);
    }

    #[test]
    fn affine_sqr_encloses_square(a in interval_strategy(), t in 0.0..1.0f64) {
        let ctx = AffineContext::new();
        let fa = ctx.from_interval(a);
        let sq = fa.sqr(&ctx);
        let x = point_in(&a, t);
        let r = sq.to_interval();
        let tol = 1e-5 * (1.0 + r.mag());
        prop_assert!(r.lo() - tol <= x * x && x * x <= r.hi() + tol);
    }
}
