//! Implementation cost report: the three columns of the paper's
//! Tables 3–6.

use std::fmt;

use sna_dfg::Dfg;
use sna_fixp::WlConfig;

use crate::{Binding, Schedule, TechLibrary};

/// Area / power / latency of one implementation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostReport {
    /// Total silicon area (µm²): functional units + registers + muxes.
    pub area_um2: f64,
    /// Average power (µW): dynamic (switching energy over the sample
    /// period) + leakage (area-proportional).
    pub power_uw: f64,
    /// Latency of one sample/block computation in clock cycles.
    pub latency_cycles: u32,
    /// Functional-unit share of the area.
    pub fu_area_um2: f64,
    /// Register share of the area.
    pub reg_area_um2: f64,
    /// Interconnect (mux) share of the area.
    pub mux_area_um2: f64,
    /// Switching energy per sample (pJ).
    pub energy_per_sample_pj: f64,
}

impl CostReport {
    /// Computes the report from a schedule and binding.
    pub fn from_implementation(
        dfg: &Dfg,
        config: &WlConfig,
        tech: &TechLibrary,
        schedule: &Schedule,
        binding: &Binding,
        clock_ns: f64,
    ) -> CostReport {
        let fu_area: f64 = binding
            .fus
            .iter()
            .map(|fu| tech.fu_area(fu.kind, fu.width))
            .sum();
        let reg_area: f64 = binding
            .registers
            .iter()
            .map(|&w| tech.register_area(w))
            .sum();
        let mux_width = binding.fus.iter().map(|fu| fu.width).max().unwrap_or(8);
        let mux_area = binding.mux_inputs as f64 * tech.mux_area(mux_width);
        let area = fu_area + reg_area + mux_area;

        // Dynamic energy: every executed operation plus register traffic.
        let view = dfg.combinational_view();
        let op_energy: f64 = view
            .nodes()
            .filter_map(|(id, node)| {
                let kind = crate::FuKind::for_op(node.op())?;
                schedule.slots[id.index()]?;
                Some(tech.fu_energy_pj(kind, config.format(id).word_length()))
            })
            .sum();
        let reg_energy: f64 = binding
            .registers
            .iter()
            .map(|&w| tech.reg_energy_per_bit * w as f64 * schedule.length as f64)
            .sum();
        let energy = op_energy + reg_energy;

        let period_ns = schedule.length.max(1) as f64 * clock_ns;
        // pJ / ns = mW; convert to µW.
        let dynamic_uw = energy / period_ns * 1000.0;
        let leakage_uw = area * tech.leakage_uw_per_um2;

        CostReport {
            area_um2: area,
            power_uw: dynamic_uw + leakage_uw,
            latency_cycles: schedule.length,
            fu_area_um2: fu_area,
            reg_area_um2: reg_area,
            mux_area_um2: mux_area,
            energy_per_sample_pj: energy,
        }
    }

    /// Weighted scalar cost used by the multi-objective optimizer:
    /// `wa·area + wp·power + wl·latency` (weights normalize units).
    pub fn weighted(&self, wa: f64, wp: f64, wl: f64) -> f64 {
        wa * self.area_um2 + wp * self.power_uw + wl * self.latency_cycles as f64
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area {:.0} µm² (FU {:.0} + reg {:.0} + mux {:.0}), power {:.1} µW, latency {} cycles",
            self.area_um2,
            self.fu_area_um2,
            self.reg_area_um2,
            self.mux_area_um2,
            self.power_uw,
            self.latency_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bind::bind, schedule, ResourceSet};
    use sna_dfg::DfgBuilder;
    use sna_fixp::{Format, Overflow, Rounding};
    use sna_interval::Interval;

    fn mac_chain(n: usize) -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let mut acc = b.mul_const(0.5, x);
        for k in 0..n {
            let t = b.mul_const(0.1 * (k as f64 + 1.0), x);
            acc = b.add(acc, t);
        }
        b.output("y", acc);
        b.build().unwrap()
    }

    fn cost_at(dfg: &Dfg, w: u8) -> CostReport {
        let ranges = vec![Interval::new(-1.0, 1.0).unwrap(); dfg.n_inputs()];
        let cfg = sna_fixp::WlConfig::from_ranges(dfg, &ranges, w).unwrap();
        let tech = TechLibrary::st012();
        let res = ResourceSet::default();
        let s = schedule(dfg, &cfg, &tech, &res, 2.5).unwrap();
        let b = bind(dfg, &cfg, &s);
        CostReport::from_implementation(dfg, &cfg, &tech, &s, &b, 2.5)
    }

    #[test]
    fn wider_words_cost_more() {
        let g = mac_chain(6);
        let c8 = cost_at(&g, 8);
        let c16 = cost_at(&g, 16);
        let c32 = cost_at(&g, 32);
        assert!(c8.area_um2 < c16.area_um2 && c16.area_um2 < c32.area_um2);
        assert!(c8.power_uw < c32.power_uw);
        assert!(c8.latency_cycles <= c32.latency_cycles);
        // Multiplier dominance makes area growth superlinear.
        assert!(c32.area_um2 / c8.area_um2 > 3.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let g = mac_chain(4);
        let c = cost_at(&g, 16);
        assert!((c.fu_area_um2 + c.reg_area_um2 + c.mux_area_um2 - c.area_um2).abs() < 1e-9);
        assert!(c.energy_per_sample_pj > 0.0);
    }

    #[test]
    fn weighted_cost_combines_objectives() {
        let g = mac_chain(4);
        let c = cost_at(&g, 16);
        let area_only = c.weighted(1.0, 0.0, 0.0);
        assert_eq!(area_only, c.area_um2);
        let all = c.weighted(1.0, 1.0, 1.0);
        assert!(all > area_only);
    }

    #[test]
    fn magnitudes_are_in_the_papers_decade() {
        // A multiplier-heavy design at W=16 should land in the 10³–10⁵ µm²
        // and 10²–10⁵ µW decades the paper's tables inhabit.
        let g = mac_chain(10);
        let c = cost_at(&g, 16);
        assert!(
            c.area_um2 > 1.0e3 && c.area_um2 < 1.0e5,
            "area {}",
            c.area_um2
        );
        assert!(
            c.power_uw > 1.0e2 && c.power_uw < 1.0e5,
            "power {}",
            c.power_uw
        );
        assert!(c.latency_cycles > 5 && c.latency_cycles < 500);
    }

    #[test]
    fn parallel_ops_in_one_cycle_need_no_sharing() {
        // Two independent multiplies scheduled in the same cycles cannot
        // share a unit: two FUs, no muxes.
        let mut bld = DfgBuilder::new();
        let a = bld.input("a");
        let b = bld.input("b");
        let c = bld.input("c");
        let d = bld.input("d");
        let m1 = bld.mul(a, b);
        let m2 = bld.mul(c, d);
        bld.output("m1", m1);
        bld.output("m2", m2);
        let g = bld.build().unwrap();
        let ranges = vec![Interval::new(-1.0, 1.0).unwrap(); 4];
        let cfg = sna_fixp::WlConfig::from_ranges(&g, &ranges, 12).unwrap();
        let tech = TechLibrary::st012();
        let res = ResourceSet {
            adders: 4,
            multipliers: 4,
            dividers: 1,
        };
        let s = schedule(&g, &cfg, &tech, &res, 2.5).unwrap();
        let b = bind(&g, &cfg, &s);
        let cst = CostReport::from_implementation(&g, &cfg, &tech, &s, &b, 2.5);
        assert_eq!(cst.mux_area_um2, 0.0);
        assert_eq!(b.fus.len(), 2);
        let _ = format!("{cst}");
    }

    #[test]
    fn uniform_wlconfig_is_accepted() {
        let g = mac_chain(2);
        let cfg = sna_fixp::WlConfig::uniform(
            &g,
            Format::new(12, 6).unwrap(),
            Rounding::Nearest,
            Overflow::Saturate,
        );
        let tech = TechLibrary::st012();
        let s = schedule(&g, &cfg, &tech, &ResourceSet::default(), 2.5).unwrap();
        let b = bind(&g, &cfg, &s);
        let c = CostReport::from_implementation(&g, &cfg, &tech, &s, &b, 2.5);
        assert!(c.area_um2 > 0.0);
    }
}
