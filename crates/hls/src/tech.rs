//! Word-length-parameterized technology models.
//!
//! The models below substitute for the paper's ST 0.12 µm standard-cell
//! library (see DESIGN.md, "Substitutions").  They preserve the structural
//! dependencies the optimization exploits:
//!
//! * ripple-carry **adder**: area and delay linear in word length;
//! * array **multiplier**: area and energy quadratic, delay linear;
//! * restoring **divider**: roughly one adder row per bit → quadratic
//!   area, quadratic delay (strongly multi-cycle);
//! * **registers** and **muxes**: linear per bit.
//!
//! Absolute constants are calibrated to land in the same decade as the
//! paper's tables for comparable designs; they are *not* sign-off numbers.

use sna_dfg::Op;

/// The kind of functional unit an operation binds to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuKind {
    /// Adder/subtractor (also used for negation).
    Adder,
    /// Array multiplier.
    Multiplier,
    /// Sequential divider.
    Divider,
}

impl FuKind {
    /// The functional unit implementing an operation, or `None` for
    /// inputs, constants and delays.
    pub fn for_op(op: Op) -> Option<FuKind> {
        match op {
            Op::Add | Op::Sub | Op::Neg => Some(FuKind::Adder),
            Op::Mul => Some(FuKind::Multiplier),
            Op::Div => Some(FuKind::Divider),
            Op::Input(_) | Op::Const(_) | Op::Delay => None,
        }
    }

    /// All kinds, in a fixed order.
    pub const ALL: [FuKind; 3] = [FuKind::Adder, FuKind::Multiplier, FuKind::Divider];
}

/// A word-length-parameterized component library.
///
/// Multiplier/divider area and energy follow `a·w + b·w²`; the
/// [`TechLibrary::st012`] preset uses the parallel-array form (`b > 0`),
/// the [`TechLibrary::st012_partitioned`] preset the multiple-width
/// bus-partitioned form (`a > 0`, linear — the scaling the paper's own
/// area numbers exhibit).
#[derive(Clone, Debug, PartialEq)]
pub struct TechLibrary {
    /// Adder area per bit (µm²).
    pub adder_area_per_bit: f64,
    /// Multiplier area linear term per bit (µm²).
    pub mult_area_per_bit: f64,
    /// Multiplier area per bit² (µm²).
    pub mult_area_per_bit2: f64,
    /// Divider area linear term per bit (µm²).
    pub div_area_per_bit: f64,
    /// Divider area per bit² (µm²).
    pub div_area_per_bit2: f64,
    /// Register area per bit (µm²).
    pub reg_area_per_bit: f64,
    /// 2:1 mux area per bit (µm²).
    pub mux_area_per_bit: f64,
    /// Adder delay: `a + b·w` (ns).
    pub adder_delay_base: f64,
    /// Adder delay slope per bit (ns).
    pub adder_delay_per_bit: f64,
    /// Multiplier delay: `a + b·w` (ns).
    pub mult_delay_base: f64,
    /// Multiplier delay slope per bit (ns).
    pub mult_delay_per_bit: f64,
    /// Divider delay per bit² (ns) — restoring division is quadratic.
    pub div_delay_per_bit2: f64,
    /// Adder energy per operation per bit (pJ).
    pub adder_energy_per_bit: f64,
    /// Multiplier energy linear term per bit (pJ).
    pub mult_energy_per_bit: f64,
    /// Multiplier energy per operation per bit² (pJ).
    pub mult_energy_per_bit2: f64,
    /// Divider energy linear term per bit (pJ).
    pub div_energy_per_bit: f64,
    /// Divider energy per operation per bit² (pJ).
    pub div_energy_per_bit2: f64,
    /// Register read+write energy per bit per cycle (pJ).
    pub reg_energy_per_bit: f64,
    /// Static (leakage) power per µm² (µW).
    pub leakage_uw_per_um2: f64,
}

impl TechLibrary {
    /// The default 0.12 µm-class calibration (parallel array multipliers,
    /// quadratic in width).
    pub fn st012() -> Self {
        TechLibrary {
            adder_area_per_bit: 32.0,
            mult_area_per_bit: 0.0,
            mult_area_per_bit2: 26.0,
            div_area_per_bit: 0.0,
            div_area_per_bit2: 34.0,
            reg_area_per_bit: 18.0,
            mux_area_per_bit: 7.0,
            adder_delay_base: 0.35,
            adder_delay_per_bit: 0.12,
            mult_delay_base: 0.8,
            mult_delay_per_bit: 0.24,
            div_delay_per_bit2: 0.09,
            adder_energy_per_bit: 0.11,
            mult_energy_per_bit: 0.0,
            mult_energy_per_bit2: 0.062,
            div_energy_per_bit: 0.0,
            div_energy_per_bit2: 0.085,
            reg_energy_per_bit: 0.035,
            leakage_uw_per_um2: 0.012,
        }
    }

    /// The multiple-width bus-partitioned calibration: multiplier and
    /// divider costs linear in width, matching the exactly-linear area
    /// scaling the paper's Tables 3–4 exhibit (the authors' HLS flow is
    /// built on bus partitioning, their ref. \[19\]).  Calibrated to agree
    /// with [`TechLibrary::st012`] at 8 bits.
    pub fn st012_partitioned() -> Self {
        TechLibrary {
            mult_area_per_bit: 208.0, // = 26·8: agrees with the array at w=8
            mult_area_per_bit2: 0.0,
            div_area_per_bit: 272.0,
            div_area_per_bit2: 0.0,
            mult_energy_per_bit: 0.496, // = 0.062·8
            mult_energy_per_bit2: 0.0,
            div_energy_per_bit: 0.68,
            div_energy_per_bit2: 0.0,
            ..TechLibrary::st012()
        }
    }

    /// Area of a functional unit of width `w` (µm²).
    pub fn fu_area(&self, kind: FuKind, w: u8) -> f64 {
        let w = w as f64;
        match kind {
            FuKind::Adder => self.adder_area_per_bit * w,
            FuKind::Multiplier => self.mult_area_per_bit * w + self.mult_area_per_bit2 * w * w,
            FuKind::Divider => self.div_area_per_bit * w + self.div_area_per_bit2 * w * w,
        }
    }

    /// Combinational delay of one operation on a width-`w` unit (ns).
    pub fn fu_delay_ns(&self, kind: FuKind, w: u8) -> f64 {
        let w = w as f64;
        match kind {
            FuKind::Adder => self.adder_delay_base + self.adder_delay_per_bit * w,
            FuKind::Multiplier => self.mult_delay_base + self.mult_delay_per_bit * w,
            FuKind::Divider => self.div_delay_per_bit2 * w * w,
        }
    }

    /// Energy of one operation on a width-`w` unit (pJ).
    pub fn fu_energy_pj(&self, kind: FuKind, w: u8) -> f64 {
        let w = w as f64;
        match kind {
            FuKind::Adder => self.adder_energy_per_bit * w,
            FuKind::Multiplier => self.mult_energy_per_bit * w + self.mult_energy_per_bit2 * w * w,
            FuKind::Divider => self.div_energy_per_bit * w + self.div_energy_per_bit2 * w * w,
        }
    }

    /// Area of a `w`-bit register (µm²).
    pub fn register_area(&self, w: u8) -> f64 {
        self.reg_area_per_bit * w as f64
    }

    /// Area of a `w`-bit 2:1 multiplexer (µm²).
    pub fn mux_area(&self, w: u8) -> f64 {
        self.mux_area_per_bit * w as f64
    }

    /// Cycles an operation occupies at the given clock period.
    pub fn cycles(&self, kind: FuKind, w: u8, clock_ns: f64) -> u32 {
        ((self.fu_delay_ns(kind, w) / clock_ns).ceil() as u32).max(1)
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        TechLibrary::st012()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_to_fu_mapping() {
        assert_eq!(FuKind::for_op(Op::Add), Some(FuKind::Adder));
        assert_eq!(FuKind::for_op(Op::Sub), Some(FuKind::Adder));
        assert_eq!(FuKind::for_op(Op::Neg), Some(FuKind::Adder));
        assert_eq!(FuKind::for_op(Op::Mul), Some(FuKind::Multiplier));
        assert_eq!(FuKind::for_op(Op::Div), Some(FuKind::Divider));
        assert_eq!(FuKind::for_op(Op::Delay), None);
        assert_eq!(FuKind::for_op(Op::Const(1.0)), None);
        assert_eq!(FuKind::for_op(Op::Input(0)), None);
    }

    #[test]
    fn areas_scale_with_width() {
        let t = TechLibrary::st012();
        // Adder linear, multiplier quadratic.
        let a8 = t.fu_area(FuKind::Adder, 8);
        let a16 = t.fu_area(FuKind::Adder, 16);
        assert!((a16 / a8 - 2.0).abs() < 1e-12);
        let m8 = t.fu_area(FuKind::Multiplier, 8);
        let m16 = t.fu_area(FuKind::Multiplier, 16);
        assert!((m16 / m8 - 4.0).abs() < 1e-12);
        // An 8×8 multiplier lands in the 0.12 µm ballpark (1–3 kµm²).
        assert!(m8 > 1000.0 && m8 < 3000.0, "mult8 = {m8}");
    }

    #[test]
    fn delays_and_cycles() {
        let t = TechLibrary::st012();
        assert!(t.fu_delay_ns(FuKind::Adder, 32) < t.fu_delay_ns(FuKind::Multiplier, 32));
        assert!(t.fu_delay_ns(FuKind::Multiplier, 32) < t.fu_delay_ns(FuKind::Divider, 32));
        // At a 2.5 ns clock a 32-bit multiply is multi-cycle.
        assert!(t.cycles(FuKind::Multiplier, 32, 2.5) >= 3);
        assert_eq!(t.cycles(FuKind::Adder, 8, 2.5), 1);
        // Cycles are at least one even for tiny ops.
        assert_eq!(t.cycles(FuKind::Adder, 2, 100.0), 1);
    }

    #[test]
    fn energy_ordering() {
        let t = TechLibrary::st012();
        assert!(t.fu_energy_pj(FuKind::Adder, 16) < t.fu_energy_pj(FuKind::Multiplier, 16));
        // Energy grows superlinearly for multipliers.
        let e8 = t.fu_energy_pj(FuKind::Multiplier, 8);
        let e16 = t.fu_energy_pj(FuKind::Multiplier, 16);
        assert!(e16 / e8 > 3.5);
    }
}
