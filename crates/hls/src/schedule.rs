//! Resource-constrained list scheduling with multi-cycle operations.
//!
//! Classic flow: ASAP and ALAP passes give every operation its mobility;
//! the list scheduler then starts ready operations in least-mobility order
//! whenever a functional unit of the right kind is free.  Sequential
//! graphs are scheduled on their per-sample combinational view (delays are
//! state registers, not datapath operations).

use sna_dfg::{Dfg, NodeId};
use sna_fixp::WlConfig;

use crate::{FuKind, HlsError, TechLibrary};

/// How many functional units of each kind the implementation may use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceSet {
    /// Available adder/subtractor units.
    pub adders: usize,
    /// Available multipliers.
    pub multipliers: usize,
    /// Available dividers.
    pub dividers: usize,
}

impl Default for ResourceSet {
    fn default() -> Self {
        ResourceSet {
            adders: 1,
            multipliers: 1,
            dividers: 1,
        }
    }
}

impl ResourceSet {
    /// Instances available for a kind.
    pub fn count(&self, kind: FuKind) -> usize {
        match kind {
            FuKind::Adder => self.adders,
            FuKind::Multiplier => self.multipliers,
            FuKind::Divider => self.dividers,
        }
    }
}

/// A complete schedule: per-node start cycle and duration.
#[derive(Clone, Debug, PartialEq)]
pub struct Schedule {
    /// `slots[i] = Some((start, cycles))` for scheduled operations,
    /// `None` for inputs/constants/delays.
    pub slots: Vec<Option<(u32, u32)>>,
    /// Total schedule length in cycles.
    pub length: u32,
}

impl Schedule {
    /// End cycle (exclusive) of a node's operation, 0 for non-operations.
    pub fn end_of(&self, node: NodeId) -> u32 {
        self.slots[node.index()].map(|(s, c)| s + c).unwrap_or(0)
    }

    /// Number of scheduled operations.
    pub fn n_ops(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

/// List-schedules the graph's combinational view under the given
/// resources.
///
/// # Errors
///
/// * [`HlsError::ConfigMismatch`] when `config` does not cover the graph;
/// * [`HlsError::InvalidClock`] for a non-positive clock;
/// * [`HlsError::MissingResource`] when an op kind has zero instances.
pub fn schedule(
    dfg: &Dfg,
    config: &WlConfig,
    tech: &TechLibrary,
    resources: &ResourceSet,
    clock_ns: f64,
) -> Result<Schedule, HlsError> {
    if config.len() != dfg.len() {
        return Err(HlsError::ConfigMismatch {
            nodes: dfg.len(),
            config: config.len(),
        });
    }
    if !(clock_ns.is_finite() && clock_ns > 0.0) {
        return Err(HlsError::InvalidClock { clock_ns });
    }
    let view = dfg.combinational_view();
    let order = view.topo_order().to_vec();

    // Per-node kind and duration.
    let mut kind = vec![None; view.len()];
    let mut dur = vec![0u32; view.len()];
    for (id, node) in view.nodes() {
        if let Some(k) = FuKind::for_op(node.op()) {
            if resources.count(k) == 0 {
                return Err(HlsError::MissingResource { kind: k });
            }
            kind[id.index()] = Some(k);
            dur[id.index()] = tech.cycles(k, config.format(id).word_length(), clock_ns);
        }
    }

    // ASAP.
    let mut asap = vec![0u32; view.len()];
    for &id in &order {
        let node = view.node(id);
        let ready = node
            .args()
            .iter()
            .map(|a| asap[a.index()] + dur[a.index()])
            .max()
            .unwrap_or(0);
        asap[id.index()] = ready;
    }
    let horizon: u32 = order
        .iter()
        .map(|id| asap[id.index()] + dur[id.index()])
        .max()
        .unwrap_or(0);

    // ALAP within the unconstrained horizon.
    let mut alap = vec![horizon; view.len()];
    for &id in order.iter().rev() {
        let node = view.node(id);
        let latest = alap[id.index()] - dur[id.index()];
        for a in node.args() {
            alap[a.index()] = alap[a.index()].min(latest);
        }
    }

    // List scheduling.
    let mut start: Vec<Option<u32>> = vec![None; view.len()];
    // Inputs/constants are available at cycle 0.
    let mut unscheduled: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|id| kind[id.index()].is_some())
        .collect();
    // Mobility priority: smaller = more urgent.
    unscheduled.sort_by_key(|id| alap[id.index()] - asap[id.index()]);

    let mut busy_until: std::collections::HashMap<FuKind, Vec<u32>> = FuKind::ALL
        .iter()
        .map(|&k| (k, vec![0u32; resources.count(k)]))
        .collect();
    let mut cycle = 0u32;
    let mut remaining = unscheduled.len();
    let max_cycles = (horizon as u64 + 1) * (remaining as u64 + 1) + 16;
    while remaining > 0 {
        // Nodes whose predecessors are finished by `cycle`.
        for &id in &unscheduled {
            if start[id.index()].is_some() {
                continue;
            }
            let node = view.node(id);
            let ready = node.args().iter().all(|a| {
                kind[a.index()].is_none()
                    || start[a.index()]
                        .map(|s| s + dur[a.index()] <= cycle)
                        .unwrap_or(false)
            });
            if !ready {
                continue;
            }
            let k = kind[id.index()].expect("unscheduled list holds ops only");
            let pool = busy_until.get_mut(&k).expect("all kinds present");
            if let Some(slot) = pool.iter_mut().find(|t| **t <= cycle) {
                *slot = cycle + dur[id.index()];
                start[id.index()] = Some(cycle);
                remaining -= 1;
            }
        }
        cycle += 1;
        if u64::from(cycle) > max_cycles {
            let stuck = unscheduled
                .iter()
                .find(|id| start[id.index()].is_none())
                .copied()
                .expect("some op remains");
            return Err(HlsError::UnschedulableOp { node: stuck });
        }
    }

    let mut slots = vec![None; view.len()];
    let mut length = 1;
    for &id in &unscheduled {
        let s = start[id.index()].expect("all ops scheduled");
        let d = dur[id.index()];
        slots[id.index()] = Some((s, d));
        length = length.max(s + d);
    }
    Ok(Schedule { slots, length })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_fixp::{Format, Overflow, Rounding};

    fn adder_tree(leaves: usize) -> Dfg {
        let mut b = DfgBuilder::new();
        let mut level: Vec<NodeId> = (0..leaves).map(|i| b.input(format!("x{i}"))).collect();
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(b.add(pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        b.output("sum", level[0]);
        b.build().unwrap()
    }

    fn uniform_cfg(dfg: &Dfg, w: u8, f: u8) -> WlConfig {
        WlConfig::uniform(
            dfg,
            Format::new(w, f).unwrap(),
            Rounding::Nearest,
            Overflow::Saturate,
        )
    }

    #[test]
    fn dependencies_are_respected() {
        let g = adder_tree(8);
        let cfg = uniform_cfg(&g, 16, 8);
        let s = schedule(
            &g,
            &cfg,
            &TechLibrary::st012(),
            &ResourceSet {
                adders: 8,
                ..Default::default()
            },
            2.5,
        )
        .unwrap();
        for (id, node) in g.nodes() {
            let Some((st, _)) = s.slots[id.index()] else {
                continue;
            };
            for a in node.args() {
                if let Some((sa, da)) = s.slots[a.index()] {
                    assert!(sa + da <= st, "node {id} starts before its arg {a}");
                }
            }
        }
        // 7 adds, unlimited resources, single-cycle adds: depth 3.
        assert_eq!(s.length, 3);
        assert_eq!(s.n_ops(), 7);
    }

    #[test]
    fn resource_constraints_serialize_ops() {
        let g = adder_tree(8);
        let cfg = uniform_cfg(&g, 16, 8);
        let tech = TechLibrary::st012();
        let one = schedule(
            &g,
            &cfg,
            &tech,
            &ResourceSet {
                adders: 1,
                ..Default::default()
            },
            2.5,
        )
        .unwrap();
        // One adder, 7 single-cycle ops: exactly 7 cycles.
        assert_eq!(one.length, 7);
        let two = schedule(
            &g,
            &cfg,
            &tech,
            &ResourceSet {
                adders: 2,
                ..Default::default()
            },
            2.5,
        )
        .unwrap();
        assert!(two.length < one.length);
        // No cycle may have more concurrent adds than adders.
        for cycle in 0..one.length {
            let live = one
                .slots
                .iter()
                .flatten()
                .filter(|(s, d)| *s <= cycle && cycle < s + d)
                .count();
            assert!(live <= 1);
        }
    }

    #[test]
    fn multicycle_multipliers_stretch_the_schedule() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x, y);
        b.output("m", m);
        let g = b.build().unwrap();
        let tech = TechLibrary::st012();
        let narrow = schedule(
            &g,
            &uniform_cfg(&g, 8, 4),
            &tech,
            &ResourceSet::default(),
            2.5,
        )
        .unwrap();
        let wide = schedule(
            &g,
            &uniform_cfg(&g, 32, 16),
            &tech,
            &ResourceSet::default(),
            2.5,
        )
        .unwrap();
        assert!(wide.length > narrow.length);
    }

    #[test]
    fn zero_resources_for_needed_kind_fails() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x, y);
        b.output("m", m);
        let g = b.build().unwrap();
        let err = schedule(
            &g,
            &uniform_cfg(&g, 8, 4),
            &TechLibrary::st012(),
            &ResourceSet {
                multipliers: 0,
                ..Default::default()
            },
            2.5,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            HlsError::MissingResource {
                kind: FuKind::Multiplier
            }
        ));
    }

    #[test]
    fn invalid_clock_is_rejected() {
        let g = adder_tree(2);
        let cfg = uniform_cfg(&g, 8, 4);
        assert!(matches!(
            schedule(
                &g,
                &cfg,
                &TechLibrary::st012(),
                &ResourceSet::default(),
                0.0
            ),
            Err(HlsError::InvalidClock { .. })
        ));
    }

    #[test]
    fn sequential_graphs_schedule_their_per_sample_view() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d = b.delay(x);
        let y = b.add(x, d);
        b.output("y", y);
        let g = b.build().unwrap();
        let cfg = uniform_cfg(&g, 16, 8);
        let s = schedule(
            &g,
            &cfg,
            &TechLibrary::st012(),
            &ResourceSet::default(),
            2.5,
        )
        .unwrap();
        // Only the add is an operation; the delay is a register.
        assert_eq!(s.n_ops(), 1);
    }
}
