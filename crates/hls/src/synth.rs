//! The end-to-end synthesis flow: schedule → bind → cost.

use sna_dfg::Dfg;
use sna_fixp::WlConfig;

use crate::bind::bind;
use crate::{schedule, Binding, CostReport, HlsError, ResourceSet, Schedule, TechLibrary};

/// Constraints the implementation must observe.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthesisConstraints {
    /// Clock period (ns).
    pub clock_ns: f64,
    /// Available functional units.
    pub resources: ResourceSet,
    /// Technology models.
    pub tech: TechLibrary,
}

impl Default for SynthesisConstraints {
    fn default() -> Self {
        SynthesisConstraints {
            clock_ns: 2.5,
            resources: ResourceSet::default(),
            tech: TechLibrary::st012(),
        }
    }
}

/// A synthesized implementation.
#[derive(Clone, Debug)]
pub struct Implementation {
    /// The operation schedule.
    pub schedule: Schedule,
    /// Functional-unit and register binding.
    pub binding: Binding,
    /// Area / power / latency.
    pub cost: CostReport,
}

/// Runs the full flow for one word-length configuration.
///
/// # Errors
///
/// Propagates scheduling failures (see [`schedule`]).
pub fn synthesize(
    dfg: &Dfg,
    config: &WlConfig,
    constraints: &SynthesisConstraints,
) -> Result<Implementation, HlsError> {
    let sched = schedule(
        dfg,
        config,
        &constraints.tech,
        &constraints.resources,
        constraints.clock_ns,
    )?;
    let binding = bind(dfg, config, &sched);
    let cost = CostReport::from_implementation(
        dfg,
        config,
        &constraints.tech,
        &sched,
        &binding,
        constraints.clock_ns,
    );
    Ok(Implementation {
        schedule: sched,
        binding,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_designs::Design;
    use sna_fixp::WlConfig;

    #[test]
    fn paper_suite_synthesizes_at_all_table_wordlengths() {
        for design in Design::paper_suite() {
            for w in [8u8, 16, 24, 32] {
                let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, w)
                    .unwrap_or_else(|e| panic!("{} at w={w}: {e}", design.name));
                let imp = synthesize(&design.dfg, &cfg, &SynthesisConstraints::default())
                    .unwrap_or_else(|e| panic!("{} at w={w}: {e}", design.name));
                assert!(imp.cost.area_um2 > 0.0, "{} w={w}", design.name);
                assert!(imp.cost.latency_cycles > 0, "{} w={w}", design.name);
            }
        }
    }

    #[test]
    fn cost_grows_with_wordlength_on_the_suite() {
        for design in Design::paper_suite() {
            let mut last_area = 0.0;
            for w in [8u8, 16, 24, 32] {
                let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, w).unwrap();
                let imp = synthesize(&design.dfg, &cfg, &SynthesisConstraints::default()).unwrap();
                assert!(
                    imp.cost.area_um2 > last_area,
                    "{}: area not monotone at w={w}",
                    design.name
                );
                last_area = imp.cost.area_um2;
            }
        }
    }

    #[test]
    fn more_resources_reduce_latency() {
        let design = sna_designs::fir25();
        let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 16).unwrap();
        let serial = synthesize(&design.dfg, &cfg, &SynthesisConstraints::default()).unwrap();
        let parallel = synthesize(
            &design.dfg,
            &cfg,
            &SynthesisConstraints {
                resources: ResourceSet {
                    adders: 4,
                    multipliers: 4,
                    dividers: 1,
                },
                ..Default::default()
            },
        )
        .unwrap();
        assert!(parallel.cost.latency_cycles < serial.cost.latency_cycles);
        // ...at the price of area.
        assert!(parallel.cost.area_um2 > serial.cost.area_um2);
    }

    #[test]
    fn latencies_are_in_the_papers_range() {
        // The paper reports 58–600 cycles across designs and word lengths;
        // with default resources we should land in the same regime.
        for design in Design::paper_suite() {
            let cfg = WlConfig::from_ranges(&design.dfg, &design.input_ranges, 16).unwrap();
            let imp = synthesize(&design.dfg, &cfg, &SynthesisConstraints::default()).unwrap();
            assert!(
                imp.cost.latency_cycles >= 20 && imp.cost.latency_cycles <= 700,
                "{}: {} cycles",
                design.name,
                imp.cost.latency_cycles
            );
        }
    }
}
