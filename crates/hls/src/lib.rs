//! High-level synthesis substrate: technology models, scheduling, binding
//! and cost reporting.
//!
//! The DAC'08 SNA paper embeds word-length optimization *inside* an HLS
//! flow: every candidate word-length assignment is judged by the area,
//! power and latency of an actual implementation (Tables 3–6).  The
//! authors used ST 0.12 µm and an in-house tool; this crate provides the
//! equivalent open substrate:
//!
//! * [`TechLibrary`] — word-length-parameterized area / delay / energy
//!   models for adders, multipliers, dividers, registers and muxes,
//!   calibrated to 0.12 µm-class magnitudes;
//! * [`schedule`](Dfg-based list scheduling) — ASAP/ALAP mobility,
//!   resource-constrained, multi-cycle operations;
//! * binding — left-edge functional-unit and register allocation;
//! * [`synthesize`] — the full flow, producing an [`Implementation`] with
//!   a [`CostReport`] (area µm², power µW, latency cycles).
//!
//! # Example
//!
//! ```
//! use sna_dfg::DfgBuilder;
//! use sna_fixp::WlConfig;
//! use sna_hls::{synthesize, SynthesisConstraints};
//! use sna_interval::Interval;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new();
//! let x = b.input("x");
//! let t = b.mul_const(0.5, x);
//! let y = b.add(t, x);
//! b.output("y", y);
//! let dfg = b.build()?;
//! let ranges = [Interval::new(-1.0, 1.0)?];
//! let cfg = WlConfig::from_ranges(&dfg, &ranges, 16)?;
//! let imp = synthesize(&dfg, &cfg, &SynthesisConstraints::default())?;
//! assert!(imp.cost.area_um2 > 0.0);
//! assert!(imp.cost.latency_cycles >= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bind;
mod cost;
mod error;
mod schedule;
mod synth;
mod tech;

pub use bind::{Binding, FuInstance};
pub use cost::CostReport;
pub use error::HlsError;
pub use schedule::{schedule, ResourceSet, Schedule};
pub use synth::{synthesize, Implementation, SynthesisConstraints};
pub use tech::{FuKind, TechLibrary};
