//! Left-edge binding of operations to functional units and of values to
//! registers.

use sna_dfg::{Dfg, NodeId, Op};
use sna_fixp::WlConfig;

use crate::{FuKind, Schedule};

/// One allocated functional unit.
#[derive(Clone, Debug, PartialEq)]
pub struct FuInstance {
    /// Kind of the unit.
    pub kind: FuKind,
    /// Width: the widest operation bound to it.
    pub width: u8,
    /// Operations bound to this unit.
    pub ops: Vec<NodeId>,
}

/// The complete binding: functional units, state/pipeline registers and an
/// interconnect (mux) estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct Binding {
    /// Allocated functional units.
    pub fus: Vec<FuInstance>,
    /// `fu_of[i]` = index into `fus` for operation nodes.
    pub fu_of: Vec<Option<usize>>,
    /// Widths of allocated data registers (left-edge compacted lifetimes).
    pub registers: Vec<u8>,
    /// Number of 2:1 mux inputs implied by FU sharing.
    pub mux_inputs: usize,
}

/// Binds scheduled operations to units (per kind, left-edge over start
/// times) and values to registers (left-edge over lifetimes).
pub fn bind(dfg: &Dfg, config: &WlConfig, schedule: &Schedule) -> Binding {
    let view = dfg.combinational_view();

    // ---- Functional units -------------------------------------------
    let mut fus: Vec<FuInstance> = Vec::new();
    let mut fu_of: Vec<Option<usize>> = vec![None; view.len()];
    for kind in FuKind::ALL {
        // Ops of this kind sorted by start cycle.
        let mut ops: Vec<(u32, u32, NodeId)> = view
            .nodes()
            .filter_map(|(id, node)| {
                let k = FuKind::for_op(node.op())?;
                if k != kind {
                    return None;
                }
                let (s, d) = schedule.slots[id.index()]?;
                Some((s, s + d, id))
            })
            .collect();
        ops.sort();
        // Left edge with width affinity: among units free at the op's
        // start, pick the one whose width matches best (prefer an
        // already-wide-enough unit with least slack; otherwise the widest
        // narrower one).  With several units this lets narrow operations
        // congregate on narrow hardware — the paper's multiple-width
        // datapath idea.
        let mut unit_free: Vec<(u32, usize)> = Vec::new(); // (free_at, fu index)
        for (start, end, id) in ops {
            let w = config.format(id).word_length();
            let best = unit_free
                .iter()
                .enumerate()
                .filter(|(_, (free_at, _))| *free_at <= start)
                .min_by_key(|(_, (_, fu_idx))| {
                    let fw = fus[*fu_idx].width;
                    if fw >= w {
                        (fw - w) as i32 // fits: least waste first
                    } else {
                        1000 + (w - fw) as i32 // must grow: least growth
                    }
                })
                .map(|(slot, _)| slot);
            match best {
                Some(slot) => {
                    let fu_idx = unit_free[slot].1;
                    unit_free[slot].0 = end;
                    let fu = &mut fus[fu_idx];
                    fu.width = fu.width.max(w);
                    fu.ops.push(id);
                    fu_of[id.index()] = Some(fu_idx);
                }
                None => {
                    let fu_idx = fus.len();
                    fus.push(FuInstance {
                        kind,
                        width: w,
                        ops: vec![id],
                    });
                    unit_free.push((end, fu_idx));
                    fu_of[id.index()] = Some(fu_idx);
                }
            }
        }
    }

    // ---- Registers ----------------------------------------------------
    // A value is alive from the end of its producing op to the latest
    // start of a consumer; it needs a register if it crosses a cycle
    // boundary.  Delay states always occupy a register for a full sample.
    let horizon = schedule.length + 1;
    let mut lifetimes: Vec<(u32, u32, u8)> = Vec::new();
    for (id, node) in view.nodes() {
        let width = config.format(id).word_length();
        let def = match node.op() {
            Op::Input(_) | Op::Const(_) => 0,
            _ => schedule.end_of(id),
        };
        let last_use = view
            .nodes()
            .filter(|(_, n)| n.args().contains(&id))
            .map(|(uid, _)| schedule.slots[uid.index()].map(|(s, _)| s).unwrap_or(0))
            .max();
        let is_output = view.outputs().iter().any(|&(_, o)| o == id);
        let end = match (last_use, is_output) {
            (Some(u), false) => u,
            (Some(u), true) => u.max(horizon - 1),
            (None, true) => horizon - 1,
            (None, false) => def,
        };
        if matches!(node.op(), Op::Const(_)) {
            continue; // constants are wired, not registered
        }
        if end > def || matches!(node.op(), Op::Input(_)) {
            lifetimes.push((def, end.max(def + 1), width));
        }
    }
    // Delay nodes of the original graph are state registers alive the
    // whole sample; the combinational view turned them into inputs which
    // the loop above already covers (inputs live from 0).

    // Left-edge register allocation with width affinity (same best-fit
    // rule as the functional units): narrow values pack into narrow
    // registers so mixed word-length designs actually save register area.
    lifetimes.sort();
    let mut reg_free: Vec<(u32, u8)> = Vec::new(); // (free_at, width)
    for (def, end, width) in lifetimes {
        let best = reg_free
            .iter()
            .enumerate()
            .filter(|(_, (free_at, _))| *free_at <= def)
            .min_by_key(|(_, (_, w))| {
                if *w >= width {
                    (*w - width) as i32
                } else {
                    1000 + (width - *w) as i32
                }
            })
            .map(|(slot, _)| slot);
        match best {
            Some(slot) => {
                reg_free[slot].0 = end;
                reg_free[slot].1 = reg_free[slot].1.max(width);
            }
            None => reg_free.push((end, width)),
        }
    }
    let registers: Vec<u8> = reg_free.iter().map(|&(_, w)| w).collect();

    // ---- Interconnect estimate ----------------------------------------
    // Each FU sharing n ops needs an (n-way → tree of n-1 two-input) mux
    // per operand port.
    let mux_inputs: usize = fus
        .iter()
        .map(|fu| 2 * fu.ops.len().saturating_sub(1))
        .sum();

    Binding {
        fus,
        fu_of,
        registers,
        mux_inputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{schedule, ResourceSet, TechLibrary};
    use sna_dfg::DfgBuilder;
    use sna_fixp::{Format, Overflow, Rounding};

    fn sample() -> (Dfg, WlConfig) {
        // y = (a+b) * (c+d) + (a+c)
        let mut bld = DfgBuilder::new();
        let a = bld.input("a");
        let b = bld.input("b");
        let c = bld.input("c");
        let d = bld.input("d");
        let s1 = bld.add(a, b);
        let s2 = bld.add(c, d);
        let m = bld.mul(s1, s2);
        let s3 = bld.add(a, c);
        let y = bld.add(m, s3);
        bld.output("y", y);
        let g = bld.build().unwrap();
        let cfg = WlConfig::uniform(
            &g,
            Format::new(16, 8).unwrap(),
            Rounding::Nearest,
            Overflow::Saturate,
        );
        (g, cfg)
    }

    #[test]
    fn binding_respects_fu_exclusivity() {
        let (g, cfg) = sample();
        let tech = TechLibrary::st012();
        let res = ResourceSet {
            adders: 2,
            ..Default::default()
        };
        let s = schedule(&g, &cfg, &tech, &res, 2.5).unwrap();
        let b = bind(&g, &cfg, &s);
        // No two ops on one FU may overlap in time.
        for fu in &b.fus {
            for (i, &op1) in fu.ops.iter().enumerate() {
                for &op2 in fu.ops.iter().skip(i + 1) {
                    let (s1, d1) = s.slots[op1.index()].unwrap();
                    let (s2, d2) = s.slots[op2.index()].unwrap();
                    assert!(s1 + d1 <= s2 || s2 + d2 <= s1, "{op1} and {op2} overlap");
                }
            }
        }
        // Adders allocated never exceed the constraint.
        let adders = b.fus.iter().filter(|f| f.kind == FuKind::Adder).count();
        assert!(adders <= 2);
        // Every op got an FU.
        for (id, node) in g.nodes() {
            if FuKind::for_op(node.op()).is_some() {
                assert!(b.fu_of[id.index()].is_some(), "op {id} unbound");
            }
        }
    }

    #[test]
    fn serialized_schedule_uses_fewer_fus() {
        let (g, cfg) = sample();
        let tech = TechLibrary::st012();
        let tight = schedule(
            &g,
            &cfg,
            &tech,
            &ResourceSet {
                adders: 1,
                ..Default::default()
            },
            2.5,
        )
        .unwrap();
        let b = bind(&g, &cfg, &tight);
        let adders = b.fus.iter().filter(|f| f.kind == FuKind::Adder).count();
        assert_eq!(adders, 1);
        // Sharing implies muxes.
        assert!(b.mux_inputs > 0);
    }

    #[test]
    fn fu_width_is_max_of_bound_ops() {
        let mut bld = DfgBuilder::new();
        let a = bld.input("a");
        let b = bld.input("b");
        let s1 = bld.add(a, b);
        let s2 = bld.add(s1, a);
        bld.output("y", s2);
        let g = bld.build().unwrap();
        let mut cfg = WlConfig::uniform(
            &g,
            Format::new(8, 4).unwrap(),
            Rounding::Nearest,
            Overflow::Saturate,
        );
        cfg.set_quantizer(
            s2,
            sna_fixp::Quantizer::new(
                Format::new(24, 12).unwrap(),
                Rounding::Nearest,
                Overflow::Saturate,
            ),
        )
        .unwrap();
        let tech = TechLibrary::st012();
        let s = schedule(
            &g,
            &cfg,
            &tech,
            &ResourceSet {
                adders: 1,
                ..Default::default()
            },
            5.0,
        )
        .unwrap();
        let bnd = bind(&g, &cfg, &s);
        let adder = bnd.fus.iter().find(|f| f.kind == FuKind::Adder).unwrap();
        assert_eq!(adder.width, 24);
        assert_eq!(adder.ops.len(), 2);
    }

    #[test]
    fn registers_are_allocated_for_live_values() {
        let (g, cfg) = sample();
        let tech = TechLibrary::st012();
        let s = schedule(&g, &cfg, &tech, &ResourceSet::default(), 2.5).unwrap();
        let b = bind(&g, &cfg, &s);
        // At least the four inputs are alive until their last consumer.
        assert!(!b.registers.is_empty());
        for &w in &b.registers {
            assert!(w >= 8);
        }
    }
}
