use std::error::Error;
use std::fmt;

use sna_dfg::NodeId;

/// Errors produced by the synthesis flow.
#[derive(Clone, Debug, PartialEq)]
pub enum HlsError {
    /// The resource set provides no unit of a kind the graph needs.
    MissingResource {
        /// The functional-unit kind with zero instances.
        kind: crate::FuKind,
    },
    /// An operation cannot finish within any cycle budget (zero or negative
    /// clock period, or pathological delay).
    UnschedulableOp {
        /// The offending node.
        node: NodeId,
    },
    /// The clock period is not positive and finite.
    InvalidClock {
        /// The requested clock period in nanoseconds.
        clock_ns: f64,
    },
    /// The word-length configuration does not cover this graph.
    ConfigMismatch {
        /// Nodes in the graph.
        nodes: usize,
        /// Nodes covered by the configuration.
        config: usize,
    },
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::MissingResource { kind } => {
                write!(f, "no functional unit of kind {kind:?} available")
            }
            HlsError::UnschedulableOp { node } => {
                write!(f, "operation at node {node} cannot be scheduled")
            }
            HlsError::InvalidClock { clock_ns } => {
                write!(f, "invalid clock period: {clock_ns} ns")
            }
            HlsError::ConfigMismatch { nodes, config } => {
                write!(
                    f,
                    "word-length config covers {config} nodes, graph has {nodes}"
                )
            }
        }
    }
}

impl Error for HlsError {}
