//! Disk-backed, content-addressed artifact store.
//!
//! The in-memory `CompileCache` and the optimizer both forget
//! everything at process exit: a warm `sna serve` reboot recompiles
//! every session and a killed sweep restarts from zero. This crate is
//! the durable tier underneath them — a directory of versioned,
//! CRC-framed objects keyed by the compile pipeline's existing
//! fingerprints:
//!
//! ```text
//! <store-dir>/
//!   index                      # text index: size + LRU tick per object
//!   objects/<kind>/<key>.obj   # key rendered as 16 lowercase hex digits
//! ```
//!
//! Object **kinds** partition the key space (`skel` compiled skeletons
//! keyed by canonical fingerprint, `shape` donor aliases keyed by shape
//! fingerprint, `ckpt` search checkpoints keyed by sweep spec hash —
//! the store itself is payload-agnostic and just moves bytes).
//!
//! Every object is framed as
//!
//! ```text
//! magic "SNAS" · format version (u32 LE) · payload length (u64 LE)
//! · CRC-32 of payload (u32 LE) · payload
//! ```
//!
//! and every failure mode degrades the same way: a load that fails the
//! magic/version/length/CRC check (or any I/O error past "file not
//! found") counts as **corrupt**, deletes the object, and returns
//! `None` — the caller recompiles, the store never panics and never
//! serves a stale or damaged artifact. Writes are atomic
//! (unique tmp file + `rename`), so a crash mid-write leaves either the
//! old object or none, never a torn frame under a live key.
//!
//! The index file makes `ls`/`gc`/`verify` cheap: it records each
//! object's size and a monotone last-use tick, giving
//! [`Store::gc`] its size-budgeted LRU eviction order. The index is
//! advisory — if it is missing or damaged it is rebuilt by scanning the
//! objects directory (ticks reset, nothing is lost).
//!
//! Serialization of the artifacts themselves lives with their owning
//! crates (`Dfg` in `sna-dfg`, `NaModel`/`Session` in `sna-core`, VM
//! programs in `sna-vm`, checkpoints in `sna-opt`), all built on the
//! shared [`wire`] primitives so the whole on-disk format follows one
//! set of encoding rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod wire;

pub use wire::{WireError, WireReader, WireWriter};

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The four bytes opening every stored object.
pub const MAGIC: [u8; 4] = *b"SNAS";

/// The on-disk frame format version. Bumping it invalidates every
/// existing object (they all degrade to clean recompiles).
pub const FORMAT_VERSION: u32 = 1;

/// Frame header bytes: magic + version + payload length + CRC.
const HEADER_BYTES: usize = 4 + 4 + 8 + 4;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) over a byte
/// slice — the payload checksum in every object frame.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// FNV-1a 64-bit hash — the store-key derivation hash for callers that
/// key objects by a canonical text (the same function the language
/// layer uses for program fingerprints, so keys agree across layers).
///
/// Keys derived this way can collide; store payloads therefore embed
/// the full text they were keyed by, and loaders treat a text mismatch
/// as a plain miss.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A point-in-time snapshot of the store's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Objects loaded and verified successfully.
    pub hits: u64,
    /// Lookups for keys with no stored object.
    pub misses: u64,
    /// Objects written.
    pub writes: u64,
    /// Loads that failed verification (bad magic/version/CRC, short
    /// file, I/O error) — each one also deleted the offending object.
    pub corrupt: u64,
}

/// One row of [`Store::ls`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Object kind (subdirectory name).
    pub kind: String,
    /// Content key (fingerprint).
    pub key: u64,
    /// On-disk size in bytes, frame header included.
    pub size: u64,
    /// Last-use tick (higher = more recent).
    pub tick: u64,
}

/// The outcome of a [`Store::gc`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Objects surviving the pass.
    pub kept: u64,
    /// Objects evicted (least-recently used first).
    pub removed: u64,
    /// Bytes freed by eviction.
    pub freed_bytes: u64,
    /// Bytes still stored after the pass.
    pub kept_bytes: u64,
}

/// The outcome of a [`Store::verify`] pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Objects that passed the magic/version/CRC check.
    pub ok: u64,
    /// Objects that failed it (deleted when `repair` was set).
    pub corrupt: Vec<ObjectInfo>,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    size: u64,
    tick: u64,
}

#[derive(Debug, Default)]
struct Index {
    tick: u64,
    entries: BTreeMap<(String, u64), Entry>,
}

impl Index {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.size).sum()
    }
}

/// The store handle. Cheap to share behind an `Arc`; all operations
/// take `&self` and are thread-safe (one internal mutex serializes
/// index mutation, counters are atomics).
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    index: Mutex<Index>,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
}

impl Store {
    /// Opens (creating if necessary) a store rooted at `dir`. A
    /// missing or damaged index file is rebuilt by scanning the
    /// objects directory.
    ///
    /// # Errors
    ///
    /// I/O errors creating the directory tree or scanning it.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        let root = dir.as_ref().to_path_buf();
        fs::create_dir_all(root.join("objects"))?;
        let index = match load_index(&root) {
            Some(idx) => idx,
            None => scan_objects(&root)?,
        };
        Ok(Store {
            root,
            index: Mutex::new(index),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path holding (or that would hold) one object — exposed so
    /// tests can damage objects deliberately.
    #[must_use]
    pub fn object_path(&self, kind: &str, key: u64) -> PathBuf {
        self.root.join("objects").join(kind).join(object_file(key))
    }

    /// Writes one object atomically (unique tmp file + `rename`),
    /// replacing any previous object under the same `(kind, key)`.
    ///
    /// # Errors
    ///
    /// I/O errors writing; an invalid `kind` (anything but
    /// `[a-z0-9_-]`) is rejected as [`io::ErrorKind::InvalidInput`].
    pub fn put(&self, kind: &str, key: u64, payload: &[u8]) -> io::Result<()> {
        check_kind(kind)?;
        let frame = frame(payload);
        let dir = self.root.join("objects").join(kind);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        // Write-all then rename: a crash leaves the old object (or no
        // object), never a torn frame under the live name.
        let mut f = fs::File::create(&tmp)?;
        let written = f.write_all(&frame).and_then(|()| f.sync_all());
        drop(f);
        if let Err(e) = written {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fs::rename(&tmp, dir.join(object_file(key)))?;
        self.writes.fetch_add(1, Ordering::Relaxed);

        let mut idx = self.index.lock().unwrap();
        let tick = idx.next_tick();
        idx.entries.insert(
            (kind.to_string(), key),
            Entry {
                size: frame.len() as u64,
                tick,
            },
        );
        persist_index(&self.root, &idx);
        Ok(())
    }

    /// Loads and verifies one object's payload.
    ///
    /// `None` means either *miss* (no such object) or *corrupt* (frame
    /// failed verification — the object is deleted so the next write
    /// starts clean); the two are distinguished only in [`Self::stats`].
    /// Callers recompute on `None`; this can never panic or return
    /// damaged bytes.
    #[must_use]
    pub fn get(&self, kind: &str, key: u64) -> Option<Vec<u8>> {
        let path = self.object_path(kind, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.discard_corrupt(kind, key, &path);
                return None;
            }
        };
        match unframe(&bytes) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let mut idx = self.index.lock().unwrap();
                let tick = idx.next_tick();
                idx.entries
                    .entry((kind.to_string(), key))
                    .and_modify(|e| e.tick = tick)
                    .or_insert(Entry {
                        size: bytes.len() as u64,
                        tick,
                    });
                Some(payload)
            }
            Err(_) => {
                self.discard_corrupt(kind, key, &path);
                None
            }
        }
    }

    /// Reports a corrupt object: counts it, deletes the file, drops the
    /// index entry. Public so callers that decode *payloads* (and find
    /// them schema-corrupt even though the CRC passed) degrade the same
    /// way a frame failure does.
    pub fn discard(&self, kind: &str, key: u64) {
        let path = self.object_path(kind, key);
        self.discard_corrupt(kind, key, &path);
    }

    fn discard_corrupt(&self, kind: &str, key: u64, path: &Path) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(path);
        let mut idx = self.index.lock().unwrap();
        if idx.entries.remove(&(kind.to_string(), key)).is_some() {
            persist_index(&self.root, &idx);
        }
    }

    /// Every stored object, sorted by `(kind, key)`.
    #[must_use]
    pub fn ls(&self) -> Vec<ObjectInfo> {
        let idx = self.index.lock().unwrap();
        idx.entries
            .iter()
            .map(|((kind, key), e)| ObjectInfo {
                kind: kind.clone(),
                key: *key,
                size: e.size,
                tick: e.tick,
            })
            .collect()
    }

    /// Total stored bytes (frame headers included).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.index.lock().unwrap().total_bytes()
    }

    /// Evicts least-recently-used objects until the store fits
    /// `budget_bytes`. Recency is the index tick: bumped on every
    /// write and every verified load in this process, persisted with
    /// the index, so warm objects survive across restarts too.
    ///
    /// # Errors
    ///
    /// None in practice — file deletion failures are ignored (the next
    /// pass retries); the signature reserves the right to report them.
    pub fn gc(&self, budget_bytes: u64) -> io::Result<GcReport> {
        let mut idx = self.index.lock().unwrap();
        let mut total = idx.total_bytes();
        let mut order: Vec<((String, u64), Entry)> =
            idx.entries.iter().map(|(k, e)| (k.clone(), *e)).collect();
        // Oldest tick first; (kind, key) breaks ties deterministically.
        order.sort_by(|a, b| (a.1.tick, &a.0).cmp(&(b.1.tick, &b.0)));
        let mut report = GcReport::default();
        for ((kind, key), e) in order {
            if total <= budget_bytes {
                break;
            }
            let _ = fs::remove_file(self.object_path(&kind, key));
            idx.entries.remove(&(kind, key));
            total -= e.size;
            report.removed += 1;
            report.freed_bytes += e.size;
        }
        report.kept = idx.entries.len() as u64;
        report.kept_bytes = total;
        persist_index(&self.root, &idx);
        Ok(report)
    }

    /// Re-verifies every object frame on disk. With `repair` set,
    /// corrupt objects are deleted (and counted in [`Self::stats`]);
    /// otherwise they are only reported.
    #[must_use]
    pub fn verify(&self, repair: bool) -> VerifyReport {
        let mut report = VerifyReport::default();
        for info in self.ls() {
            let path = self.object_path(&info.kind, info.key);
            let ok = fs::read(&path)
                .ok()
                .is_some_and(|bytes| unframe(&bytes).is_ok());
            if ok {
                report.ok += 1;
            } else {
                if repair {
                    self.discard_corrupt(&info.kind, info.key, &path);
                }
                report.corrupt.push(info);
            }
        }
        report
    }

    /// A snapshot of the lifetime counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
        }
    }
}

fn object_file(key: u64) -> String {
    format!("{key:016x}.obj")
}

fn check_kind(kind: &str) -> io::Result<()> {
    let ok = !kind.is_empty()
        && kind.len() <= 32
        && kind
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-');
    if ok {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid object kind `{kind}`"),
        ))
    }
}

/// Wraps a payload in the on-disk frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Verifies a frame and returns its payload.
fn unframe(bytes: &[u8]) -> Result<Vec<u8>, WireError> {
    if bytes.len() < HEADER_BYTES {
        return Err(WireError::new("short frame"));
    }
    if bytes[..4] != MAGIC {
        return Err(WireError::new("bad magic"));
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != FORMAT_VERSION {
        return Err(WireError::new(format!("unsupported version {version}")));
    }
    let len = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let crc = u32::from_le_bytes([bytes[16], bytes[17], bytes[18], bytes[19]]);
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() as u64 != len {
        return Err(WireError::new("payload length mismatch"));
    }
    if crc32(payload) != crc {
        return Err(WireError::new("CRC mismatch"));
    }
    Ok(payload.to_vec())
}

const INDEX_HEADER: &str = "snastore-index v1";

fn persist_index(root: &Path, idx: &Index) {
    let mut text = format!("{INDEX_HEADER}\ntick {}\n", idx.tick);
    for ((kind, key), e) in &idx.entries {
        text.push_str(&format!("{kind} {key:016x} {} {}\n", e.size, e.tick));
    }
    // Best-effort and atomic: the index is advisory (rebuildable by
    // scan), so a failed persist degrades recency, never correctness.
    let tmp = root.join(".index.tmp");
    if fs::write(&tmp, &text).is_ok() {
        let _ = fs::rename(&tmp, root.join("index"));
    }
}

fn load_index(root: &Path) -> Option<Index> {
    let mut text = String::new();
    fs::File::open(root.join("index"))
        .ok()?
        .read_to_string(&mut text)
        .ok()?;
    let mut lines = text.lines();
    if lines.next()? != INDEX_HEADER {
        return None;
    }
    let tick = lines.next()?.strip_prefix("tick ")?.parse().ok()?;
    let mut entries = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(' ');
        let kind = parts.next()?.to_string();
        let key = u64::from_str_radix(parts.next()?, 16).ok()?;
        let size = parts.next()?.parse().ok()?;
        let entry_tick = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        entries.insert(
            (kind, key),
            Entry {
                size,
                tick: entry_tick,
            },
        );
    }
    Some(Index { tick, entries })
}

/// Rebuilds the index by scanning `objects/` (sizes from the
/// filesystem, recency reset).
fn scan_objects(root: &Path) -> io::Result<Index> {
    let mut entries = BTreeMap::new();
    let objects = root.join("objects");
    for kind_dir in fs::read_dir(&objects)? {
        let kind_dir = kind_dir?;
        if !kind_dir.file_type()?.is_dir() {
            continue;
        }
        let kind = kind_dir.file_name().to_string_lossy().into_owned();
        if check_kind(&kind).is_err() {
            continue;
        }
        for obj in fs::read_dir(kind_dir.path())? {
            let obj = obj?;
            let name = obj.file_name().to_string_lossy().into_owned();
            let Some(hex) = name.strip_suffix(".obj") else {
                continue;
            };
            let Ok(key) = u64::from_str_radix(hex, 16) else {
                continue;
            };
            entries.insert(
                (kind.clone(), key),
                Entry {
                    size: obj.metadata()?.len(),
                    tick: 0,
                },
            );
        }
    }
    Ok(Index { tick: 0, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("sna-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn put_get_round_trips_and_counts() {
        let (dir, store) = temp_store("roundtrip");
        assert_eq!(store.get("skel", 7), None);
        store.put("skel", 7, b"hello artifact").unwrap();
        assert_eq!(store.get("skel", 7).unwrap(), b"hello artifact");
        store.put("skel", 7, b"replaced").unwrap();
        assert_eq!(store.get("skel", 7).unwrap(), b"replaced");
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.corrupt), (2, 1, 2, 0));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn survives_reopen_via_the_index() {
        let (dir, store) = temp_store("reopen");
        store.put("skel", 1, b"one").unwrap();
        store.put("ckpt", 2, b"two").unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get("skel", 1).unwrap(), b"one");
        assert_eq!(store.get("ckpt", 2).unwrap(), b"two");
        assert_eq!(store.ls().len(), 2);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn damaged_index_is_rebuilt_by_scanning() {
        let (dir, store) = temp_store("index-rebuild");
        store.put("skel", 0xABCD, b"payload").unwrap();
        drop(store);
        fs::write(dir.join("index"), "not an index at all").unwrap();
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get("skel", 0xABCD).unwrap(), b"payload");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn truncation_bitflip_and_version_bump_all_degrade_to_misses() {
        let (dir, store) = temp_store("corruption");
        for (i, damage) in [0usize, 1, 2].into_iter().enumerate() {
            let key = 100 + i as u64;
            store.put("skel", key, b"precious bytes").unwrap();
            let path = store.object_path("skel", key);
            let mut bytes = fs::read(&path).unwrap();
            match damage {
                // Truncate mid-payload.
                0 => bytes.truncate(bytes.len() - 3),
                // Flip one payload bit.
                1 => {
                    let n = bytes.len();
                    bytes[n - 1] ^= 0x40;
                }
                // Bump the format version.
                _ => bytes[4] = bytes[4].wrapping_add(1),
            }
            fs::write(&path, &bytes).unwrap();
            assert_eq!(store.get("skel", key), None, "damage mode {damage}");
            // The object is gone; the next load is a plain miss.
            assert!(!path.exists());
            assert_eq!(store.get("skel", key), None);
        }
        let s = store.stats();
        assert_eq!(s.corrupt, 3);
        assert_eq!(s.misses, 3);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let (dir, store) = temp_store("magic");
        store.put("skel", 5, b"x").unwrap();
        let path = store.object_path("skel", 5);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert_eq!(store.get("skel", 5), None);
        assert_eq!(store.stats().corrupt, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn gc_evicts_least_recently_used_first() {
        let (dir, store) = temp_store("gc");
        let payload = vec![0u8; 100];
        for key in 0..5u64 {
            store.put("skel", key, &payload).unwrap();
        }
        // Touch 0 and 3 so they are the most recent.
        assert!(store.get("skel", 0).is_some());
        assert!(store.get("skel", 3).is_some());
        let per_object = 100 + HEADER_BYTES as u64;
        let report = store.gc(2 * per_object).unwrap();
        assert_eq!(report.removed, 3);
        assert_eq!(report.kept, 2);
        assert_eq!(report.kept_bytes, 2 * per_object);
        let kept: Vec<u64> = store.ls().iter().map(|o| o.key).collect();
        assert_eq!(kept, vec![0, 3]);
        // A zero budget clears the store.
        let report = store.gc(0).unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(store.total_bytes(), 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn verify_reports_and_optionally_repairs() {
        let (dir, store) = temp_store("verify");
        store.put("skel", 1, b"good").unwrap();
        store.put("skel", 2, b"bad").unwrap();
        let path = store.object_path("skel", 2);
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 1;
        fs::write(&path, &bytes).unwrap();

        let report = store.verify(false);
        assert_eq!(report.ok, 1);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].key, 2);
        assert!(path.exists(), "verify without repair keeps the file");

        let report = store.verify(true);
        assert_eq!(report.corrupt.len(), 1);
        assert!(!path.exists(), "repair deletes it");
        assert_eq!(store.verify(true).corrupt.len(), 0);
        assert_eq!(store.stats().corrupt, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn invalid_kinds_are_rejected() {
        let (dir, store) = temp_store("kinds");
        assert!(store.put("../escape", 1, b"x").is_err());
        assert!(store.put("", 1, b"x").is_err());
        assert!(store.put("UPPER", 1, b"x").is_err());
        assert!(store.put("ok-kind_2", 1, b"x").is_ok());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_writers_and_readers_stay_consistent() {
        let (dir, store) = temp_store("concurrent");
        let store = std::sync::Arc::new(store);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = std::sync::Arc::clone(&store);
                s.spawn(move || {
                    for i in 0..25u64 {
                        let key = t * 100 + i;
                        store.put("skel", key, &key.to_le_bytes()).unwrap();
                        assert_eq!(store.get("skel", key).unwrap(), key.to_le_bytes());
                    }
                });
            }
        });
        assert_eq!(store.ls().len(), 100);
        assert_eq!(store.stats().corrupt, 0);
        let _ = fs::remove_dir_all(dir);
    }
}
