//! The hand-rolled binary framing shared by every serialized artifact.
//!
//! The workspace has no serde; every crate that persists an artifact
//! (the DFG skeleton in `sna-dfg`, the gain model in `sna-core`, the VM
//! bytecode in `sna-vm`, search checkpoints in `sna-opt`) encodes it
//! with these primitives so the on-disk format has exactly one set of
//! rules:
//!
//! * all integers are **little-endian**, fixed width (`u8`/`u32`/`u64`);
//! * lengths and counts are `u64` (bounded on read — see
//!   [`WireReader::read_len`] — so a corrupt length can never drive an
//!   allocation);
//! * `f64` travels as its IEEE-754 bit pattern ([`f64::to_bits`]), so a
//!   value round-trips **bit-exactly** — NaN payloads, signed zeros and
//!   all;
//! * strings are a `u64` byte length + UTF-8 bytes.
//!
//! Readers never panic on malformed input: every decode error surfaces
//! as [`WireError`], which store consumers treat exactly like a CRC
//! mismatch — the object is corrupt, drop it and recompute.

use std::fmt;

/// A malformed byte stream. The message names what failed; callers
/// treat any variant as "this object is corrupt".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(String);

impl WireError {
    /// Builds an error with a short human-readable cause.
    #[must_use]
    pub fn new(msg: impl Into<String>) -> Self {
        WireError(msg.into())
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire data: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.len(b.len());
        self.buf.extend_from_slice(b);
    }
}

/// Cursor-based decoder over a byte slice. Every read is bounds-checked
/// and returns [`WireError`] instead of panicking.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — trailing garbage means
    /// the frame does not match the schema that is decoding it.
    ///
    /// # Errors
    ///
    /// [`WireError`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::new(format!(
                "{} trailing byte(s)",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "need {n} byte(s), have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a short buffer.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a short buffer.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a short buffer.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length/count written by [`WireWriter::len`], bounded by
    /// the bytes actually remaining — a corrupt length can therefore
    /// never drive a huge allocation (`Vec::with_capacity` downstream
    /// is safe).
    ///
    /// # Errors
    ///
    /// [`WireError`] on a short buffer or an impossible length.
    pub fn read_len(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        // Any legitimate count describes elements that occupy at least
        // one byte each in this frame.
        if v > self.remaining() as u64 {
            return Err(WireError::new(format!(
                "length {v} exceeds {} remaining byte(s)",
                self.remaining()
            )));
        }
        Ok(v as usize)
    }

    /// Reads an element count where each element occupies at least
    /// `min_elem_bytes` in the frame — tighter than [`Self::read_len`]
    /// for counts of multi-byte records.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a short buffer or an impossible count.
    pub fn read_count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let v = self.u64()?;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if v > cap as u64 {
            return Err(WireError::new(format!(
                "count {v} exceeds what {} remaining byte(s) can hold",
                self.remaining()
            )));
        }
        Ok(v as usize)
    }

    /// Reads an `f64` from its exact bit pattern.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a short buffer.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a short buffer or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.read_len()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("invalid UTF-8 in string"))
    }

    /// Reads length-prefixed raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError`] on a short buffer.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.read_len()?;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive_bit_exactly() {
        let mut w = WireWriter::new();
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(f64::NAN);
        w.f64(-0.0);
        w.f64(0.1 + 0.2);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        w.len(7);
        let buf = w.finish();

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64().unwrap(), 7);
        r.expect_end().unwrap();
    }

    #[test]
    fn short_buffers_and_bad_lengths_error_cleanly() {
        let mut r = WireReader::new(&[1, 2]);
        assert!(r.u32().is_err());

        // A length claiming more bytes than remain must not allocate.
        let mut w = WireWriter::new();
        w.u64(u64::MAX);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(r.read_len().is_err());

        // Counts of multi-byte records are bounded tighter still.
        let mut w = WireWriter::new();
        w.u64(100);
        w.u64(0);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(r.read_count(8).is_err());

        // Invalid UTF-8 is an error, not a panic.
        let mut w = WireWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert!(r.str().is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        w.u8(1);
        w.u8(2);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        r.u8().unwrap();
        assert!(r.expect_end().is_err());
    }
}
