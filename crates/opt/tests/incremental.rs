//! Equivalence and determinism guarantees of the incremental evaluation
//! engine.
//!
//! * Property: over random sequences of single-coordinate moves and
//!   undos, [`sna_opt::NoiseEval`] matches the from-scratch
//!   [`sna_opt::Optimizer::noise_of`] within 1e-12 (relative) — on the NA
//!   path (FIR and difference-equation designs, including feedback) and
//!   on the histogram path (the paper's nonlinear quadratic example).
//! * Determinism: the parallel exhaustive search returns exactly the
//!   serial winner for any thread count, and annealing restarts are
//!   scheduling-independent.

use proptest::prelude::*;
use sna_designs::{diff_eq, fir, quadratic};
use sna_dfg::{Dfg, DfgBuilder};
use sna_hls::SynthesisConstraints;
use sna_interval::Interval;
use sna_opt::Optimizer;

/// One randomized walk step: which node, which width (as an offset above
/// the node's minimum), and whether to revert the move immediately
/// (encoded as the parity of the third element — the shimmed proptest has
/// no bool strategy).
type Move = (usize, u8, u8);

fn moves_strategy(len: usize) -> impl Strategy<Value = Vec<Move>> {
    proptest::collection::vec((0..4096usize, 0..36u8, 0..2u8), 1..len)
}

/// Applies `moves` through an incremental evaluator, checking after every
/// set/undo that the running power matches a from-scratch evaluation of
/// the same width vector within 1e-12 relative.
fn check_equivalence(dfg: &Dfg, ranges: &[Interval], moves: &[Move]) {
    let opt = Optimizer::new(dfg, ranges, SynthesisConstraints::default()).unwrap();
    let min_w = opt.min_word_lengths().to_vec();
    let n = dfg.len();
    let max_w = 40u8;
    let mut w: Vec<u8> = min_w.iter().map(|&m| m.max(12)).collect();
    let mut ev = opt.evaluator(&w).unwrap();
    let compare = |ev_power: f64, w: &[u8]| {
        let scratch = opt.noise_of(w).unwrap();
        let tol = 1e-12 * scratch.abs().max(ev_power.abs()).max(1e-300);
        prop_assert!(
            (ev_power - scratch).abs() <= tol,
            "incremental {ev_power:e} vs scratch {scratch:e} at {w:?}"
        );
    };
    compare(ev.power(), &w);
    for &(sel, delta, undo) in moves {
        let i = sel % n;
        let nw = min_w[i].saturating_add(delta).min(max_w);
        let p = ev.set(i, nw).unwrap();
        let old = w[i];
        w[i] = nw;
        compare(p, &w);
        if undo == 1 {
            ev.undo();
            w[i] = old;
            compare(ev.power(), &w);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn na_incremental_matches_scratch_on_fir(moves in moves_strategy(40)) {
        let d = fir(8);
        check_equivalence(&d.dfg, &d.input_ranges, &moves);
    }

    #[test]
    fn na_incremental_matches_scratch_on_diffeq(moves in moves_strategy(40)) {
        // Feedback: impulse-gain model with delays.
        let d = diff_eq(4);
        check_equivalence(&d.dfg, &d.input_ranges, &moves);
    }

    #[test]
    fn hist_incremental_matches_scratch_on_quadratic(moves in moves_strategy(24)) {
        // Nonlinear combinational: the histogram fallback with
        // cone-limited re-propagation.
        let d = quadratic();
        check_equivalence(&d.dfg, &d.input_ranges, &moves);
    }
}

#[test]
fn hist_evaluator_is_used_for_the_quadratic() {
    // Guard that the histogram property above actually exercises the
    // fallback path, not the NA model.
    let d = quadratic();
    let opt = Optimizer::new(&d.dfg, &d.input_ranges, SynthesisConstraints::default()).unwrap();
    assert!(opt.na_model().is_none());
}

fn skewed_design() -> (Dfg, Vec<Interval>) {
    let mut b = DfgBuilder::new();
    let x1 = b.input("x1");
    let x2 = b.input("x2");
    let t1 = b.mul_const(0.8, x1);
    let t2 = b.mul_const(0.01, x2);
    let y = b.add(t1, t2);
    b.output("y", y);
    (
        b.build().unwrap(),
        vec![
            Interval::new(-1.0, 1.0).unwrap(),
            Interval::new(-1.0, 1.0).unwrap(),
        ],
    )
}

#[test]
fn parallel_exhaustive_matches_serial_winner() {
    let (g, r) = skewed_design();
    let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
    let fixed = opt.uniform(10).unwrap();
    let serial = opt
        .exhaustive_threaded(fixed.noise_power, 10, 2, 10_000_000, 1)
        .unwrap();
    for threads in [2, 3, 4, 8] {
        let parallel = opt
            .exhaustive_threaded(fixed.noise_power, 10, 2, 10_000_000, threads)
            .unwrap();
        assert_eq!(
            serial.word_lengths, parallel.word_lengths,
            "thread count {threads} changed the winner"
        );
    }
}

#[test]
fn exhaustive_default_entry_point_agrees_with_serial() {
    let (g, r) = skewed_design();
    let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
    let fixed = opt.uniform(10).unwrap();
    let serial = opt
        .exhaustive_threaded(fixed.noise_power, 10, 1, 10_000_000, 1)
        .unwrap();
    let auto = opt
        .exhaustive(fixed.noise_power, 10, 1, 10_000_000)
        .unwrap();
    assert_eq!(serial.word_lengths, auto.word_lengths);
}

#[test]
fn out_of_range_moves_error_instead_of_panicking() {
    let (g, r) = skewed_design();
    let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
    let start: Vec<u8> = opt.min_word_lengths().to_vec();
    let mut ev = opt.evaluator(&start).unwrap();
    let before = ev.power();
    // Above the search bound, below the node minimum, and a bad index:
    // all must report an error and leave the evaluator untouched.
    assert!(ev.set(0, 45).is_err());
    assert!(ev.set(0, start[0].wrapping_sub(1)).is_err());
    assert!(ev.set(g.len(), 12).is_err());
    assert_eq!(ev.power(), before);
    assert_eq!(ev.widths(), &start[..]);
    // A bad initial vector errors at construction.
    let mut wide = start.clone();
    wide[0] = 60;
    assert!(opt.evaluator(&wide).is_err());
    assert!(opt.evaluator(&start[1..]).is_err());
}
