//! Analytic sensitivity allocation (Han/Evans-style).
//!
//! With the uniform-quantization model, node `i` at width `wᵢ` contributes
//! `cᵢ·4^(−wᵢ)` to the output noise power, where `cᵢ` folds the
//! quantization-step scaling and the L2 transfer gain.  Minimizing a
//! linearized cost `Σ sᵢ·wᵢ` under `Σ cᵢ·4^(−wᵢ) ≤ B` gives the
//! closed-form waterfilling solution
//!
//! ```text
//! wᵢ = log₄(λ·ln4·cᵢ / sᵢ)
//! ```
//!
//! with `λ` found by bisection.  After integer rounding, a repair pass
//! adds bits where they buy the most noise until the budget holds.

use crate::{Evaluation, OptError, Optimizer};

impl Optimizer<'_> {
    /// Analytic waterfilling allocation under a noise budget.
    ///
    /// # Errors
    ///
    /// [`OptError::Infeasible`] when the budget is unreachable within the
    /// bounds; evaluation failures are propagated.
    pub fn waterfill(&self, budget: f64) -> Result<Evaluation, OptError> {
        let n = self.dfg.len();
        // Sensitivities cᵢ measured empirically from the model: noise
        // delta when node i moves from wide to wide-1 ≈ (3/4)·cᵢ·4^(−w).
        let wide = self.uniform_vector(self.bounds.max);
        let mut ev = self.evaluator(&wide)?;
        let base_noise = ev.power();
        if base_noise > budget {
            return Err(OptError::Infeasible {
                budget,
                best_noise: base_noise,
            });
        }
        let c = self.sensitivities_with(&mut ev)?;
        let mut probe = wide.clone();
        let mut scratch = self.proxy_scratch();
        // Cost slopes sᵢ: proxy delta per bit at the wide point.
        let mut s = vec![0.0f64; n];
        let base_proxy = self.proxy_cost_with(&wide, &mut scratch);
        for i in 0..n {
            if wide[i] <= self.min_w[i] {
                s[i] = f64::INFINITY; // pinned nodes never move
                continue;
            }
            probe[i] -= 1;
            s[i] = (base_proxy - self.proxy_cost_with(&probe, &mut scratch)).max(1e-12);
            probe[i] += 1;
        }

        // Bisection on log₄λ; larger λ ⇒ wider words ⇒ less noise.
        let assign = |lambda_log4: f64, this: &Self| -> Vec<u8> {
            let mut w: Vec<u8> = (0..n)
                .map(|i| {
                    if !s[i].is_finite() {
                        // Pinned at the minimum (cannot widen anyway).
                        return this.min_w[i];
                    }
                    if c[i] <= 0.0 {
                        // No measurable sensitivity: either truly exact
                        // (adders — fixed below) or a constant whose
                        // rounding error is not a smooth function of width
                        // — keep it wide, the final trim pass shrinks it.
                        return this.bounds.max;
                    }
                    let ideal = lambda_log4 + ((4f64.ln()) * c[i] / s[i]).log(4.0);
                    (ideal.ceil().clamp(0.0, 64.0) as u8).clamp(this.min_w[i], this.bounds.max)
                })
                .collect();
            // Zero-sensitivity exact ops (adders etc.) must keep all
            // argument bits, otherwise the separable model's premise
            // collapses.
            this.widen_exact_nodes(&mut w);
            w
        };
        let (mut lo, mut hi) = (-32.0f64, 64.0f64);
        // Ensure the high end is feasible (evaluated once — the former
        // code here paid the full evaluation twice on the error path).
        let hi_noise = ev.set_vector(&assign(hi, self))?;
        if hi_noise > budget {
            return Err(OptError::Infeasible {
                budget,
                best_noise: hi_noise,
            });
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if ev.set_vector(&assign(mid, self))? <= budget {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let mut w = assign(hi, self);
        let mut noise = ev.set_vector(&w)?;

        // Repair: if rounding left us above budget, widen the node with
        // the best noise reduction per cost until feasible.
        let mut guard = 0;
        while noise > budget {
            let mut best: Option<(f64, usize)> = None;
            for i in 0..n {
                if w[i] >= self.bounds.max {
                    continue;
                }
                let dn = noise - ev.probe(i, w[i] + 1)?;
                if dn > 0.0 {
                    let score = dn / s[i].max(1e-12);
                    if best.as_ref().map(|(sc, _)| score > *sc).unwrap_or(true) {
                        best = Some((score, i));
                    }
                }
            }
            match best {
                Some((_, i)) => {
                    w[i] += 1;
                    noise = ev.set(i, w[i])?;
                }
                None => {
                    return Err(OptError::Infeasible {
                        budget,
                        best_noise: noise,
                    })
                }
            }
            guard += 1;
            if guard > 64 * n {
                return Err(OptError::Infeasible {
                    budget,
                    best_noise: noise,
                });
            }
        }
        // Final trim: nodes the analytic formula kept conservatively wide
        // (constants, rounding slack) shed bits while the budget holds.
        loop {
            let mut changed = false;
            #[allow(clippy::needless_range_loop)] // `w[i]` is mutated in the loop body
            for i in 0..n {
                while w[i] > self.min_w[i] {
                    if ev.set(i, w[i] - 1)? <= budget {
                        w[i] -= 1;
                        changed = true;
                    } else {
                        ev.undo();
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        self.evaluate(w)
    }
}

#[cfg(test)]
mod tests {
    use crate::Optimizer;
    use sna_dfg::DfgBuilder;
    use sna_hls::SynthesisConstraints;
    use sna_interval::Interval;

    #[test]
    fn waterfill_meets_budget() {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.8, x1);
        let t2 = b.mul_const(0.01, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        let g = b.build().unwrap();
        let r = vec![
            Interval::new(-1.0, 1.0).unwrap(),
            Interval::new(-1.0, 1.0).unwrap(),
        ];
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(12).unwrap();
        let wf = opt.waterfill(fixed.noise_power).unwrap();
        assert!(wf.noise_power <= fixed.noise_power * (1.0 + 1e-12));
        // High-gain path keeps at least as many bits as the low-gain one.
        let hot = wf.word_lengths[t1.index()];
        let cold = wf.word_lengths[t2.index()];
        assert!(hot >= cold, "hot {hot} < cold {cold}");
    }

    #[test]
    fn waterfill_is_not_wasteful() {
        // At a loose budget the allocation should sit well below max.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul_const(0.5, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let r = vec![Interval::new(-1.0, 1.0).unwrap()];
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let loose = opt.uniform(6).unwrap();
        let wf = opt.waterfill(loose.noise_power).unwrap();
        assert!(wf.word_lengths.iter().all(|&w| w < 20));
    }
}
