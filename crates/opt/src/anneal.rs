//! Simulated annealing over ±1-bit moves (in the spirit of the ASA
//! heuristic of Lee et al., which the paper cites).
//!
//! The walk is feasibility-preserving: candidate configurations violating
//! the noise budget are rejected outright, so every visited point is a
//! valid design.  The objective is the cost proxy; the best-ever point is
//! synthesized for real at the end.  Every proposal is a
//! single-coordinate [`crate::NoiseEval`] move — O(1) on linear graphs —
//! and independent restarts fan out across std threads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::optimizer::default_threads;
use crate::{Evaluation, OptError, Optimizer};

/// A finished walk: best-ever proxy cost and its width vector.
type WalkResult = Result<(f64, Vec<u8>), OptError>;

/// A worker's best walk, tagged with its restart index for tie-breaking.
type PartialBest = Result<Option<(f64, u64, Vec<u8>)>, OptError>;

/// Annealing schedule parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealOptions {
    /// Proposal count (per restart).
    pub iterations: usize,
    /// Initial temperature as a fraction of the starting proxy cost.
    pub initial_temp_fraction: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// Independent restarts, run in parallel with seeds `seed`,
    /// `seed + 1`, …; the best result (ties to the lowest restart index)
    /// wins, so the outcome does not depend on the worker count.
    pub restarts: usize,
    /// Worker-thread cap for the parallel restarts; `0` means available
    /// parallelism. The result is identical for every value (the merge
    /// is worker-count independent) — this only bounds concurrency,
    /// e.g. for a server enforcing a client-supplied `threads` knob.
    pub threads: usize,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            iterations: 4000,
            initial_temp_fraction: 0.05,
            cooling: 0.999,
            seed: 0xA11EA1,
            restarts: 1,
            threads: 0,
        }
    }
}

impl Optimizer<'_> {
    /// Simulated annealing under a noise budget, starting from the
    /// uniform width `start_w`.
    ///
    /// # Errors
    ///
    /// [`OptError::Infeasible`] when the start violates the budget;
    /// evaluation failures are propagated.
    pub fn anneal(
        &self,
        budget: f64,
        start_w: u8,
        opts: &AnnealOptions,
    ) -> Result<Evaluation, OptError> {
        let restarts = opts.restarts.max(1);
        let best = if restarts == 1 {
            self.anneal_walk(budget, start_w, opts, 0)?
        } else {
            // Every walk costs the same iteration count, so static
            // striding (worker `t` runs restarts `t, t+workers, …`)
            // partitions the work evenly with no shared state; partial
            // bests merge by `(cost, restart index)`, making the winner
            // independent of worker count and scheduling.
            let cap = if opts.threads == 0 {
                default_threads()
            } else {
                opts.threads
            };
            let workers = restarts.min(cap.max(1));
            let partials: Vec<PartialBest> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|t| {
                        scope.spawn(move || {
                            let mut best: Option<(f64, u64, Vec<u8>)> = None;
                            let mut r = t as u64;
                            while (r as usize) < restarts {
                                let (cost, w) = self.anneal_walk(budget, start_w, opts, r)?;
                                if best.as_ref().map(|(c, _, _)| cost < *c).unwrap_or(true) {
                                    best = Some((cost, r, w));
                                }
                                r += workers as u64;
                            }
                            Ok(best)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("anneal worker panicked"))
                    .collect()
            });
            let mut best: Option<(f64, u64, Vec<u8>)> = None;
            for partial in partials {
                if let Some((cost, r, w)) = partial? {
                    let better = best
                        .as_ref()
                        .map(|(c, br, _)| cost < *c || (cost == *c && r < *br))
                        .unwrap_or(true);
                    if better {
                        best = Some((cost, r, w));
                    }
                }
            }
            let (cost, _, w) = best.expect("restarts >= 1");
            (cost, w)
        };
        self.evaluate(best.1)
    }

    /// One annealing walk with seed `opts.seed + restart`, returning the
    /// best-ever `(proxy cost, widths)`.
    fn anneal_walk(
        &self,
        budget: f64,
        start_w: u8,
        opts: &AnnealOptions,
        restart: u64,
    ) -> WalkResult {
        let mut w = self.uniform_vector(start_w);
        let mut ev = self.evaluator(&w)?;
        let noise = ev.power();
        if noise > budget {
            return Err(OptError::Infeasible {
                budget,
                best_noise: noise,
            });
        }
        let mut rng = StdRng::seed_from_u64(opts.seed.wrapping_add(restart));
        let mut scratch = self.proxy_scratch();
        let mut cost = self.proxy_cost_with(&w, &mut scratch);
        let mut best = (cost, w.clone());
        let mut temp = cost * opts.initial_temp_fraction;
        let limited = !self.exec_budget.is_unlimited();
        for it in 0..opts.iterations {
            // Execution-budget checkpoint every 256 proposals; a budget
            // that never fires changes nothing (the RNG stream is
            // untouched).
            if limited && it & 255 == 0 {
                self.exec_budget.check()?;
            }
            let i = rng.gen_range(0..w.len());
            let down = rng.gen_bool(0.7); // bias toward trimming
            let old = w[i];
            let new = if down {
                old.saturating_sub(1).max(self.min_w[i])
            } else {
                (old + 1).min(self.bounds.max)
            };
            if new == old {
                temp *= opts.cooling;
                continue;
            }
            if ev.set(i, new)? > budget {
                ev.undo();
                temp *= opts.cooling;
                continue;
            }
            w[i] = new;
            let trial_cost = self.proxy_cost_with(&w, &mut scratch);
            let delta = trial_cost - cost;
            let accept = delta <= 0.0 || {
                let p = (-delta / temp.max(1e-12)).exp();
                rng.gen_bool(p.clamp(0.0, 1.0))
            };
            if accept {
                cost = trial_cost;
                if cost < best.0 {
                    best = (cost, w.clone());
                }
            } else {
                w[i] = old;
                ev.undo();
            }
            temp *= opts.cooling;
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_hls::SynthesisConstraints;
    use sna_interval::Interval;

    fn setup() -> (sna_dfg::Dfg, Vec<Interval>) {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.7, x1);
        let t2 = b.mul_const(0.02, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        (
            b.build().unwrap(),
            vec![
                Interval::new(-1.0, 1.0).unwrap(),
                Interval::new(-1.0, 1.0).unwrap(),
            ],
        )
    }

    #[test]
    fn anneal_meets_budget_and_improves_on_start() {
        let (g, r) = setup();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(12).unwrap();
        let annealed = opt
            .anneal(
                fixed.noise_power,
                16,
                &AnnealOptions {
                    iterations: 1500,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(annealed.noise_power <= fixed.noise_power * (1.0 + 1e-12));
        let start_proxy = opt.proxy_cost(&opt.uniform_vector(16));
        assert!(opt.proxy_cost(&annealed.word_lengths) < start_proxy);
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let (g, r) = setup();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(10).unwrap();
        let opts = AnnealOptions {
            iterations: 800,
            seed: 42,
            ..Default::default()
        };
        let a = opt.anneal(fixed.noise_power, 14, &opts).unwrap();
        let b = opt.anneal(fixed.noise_power, 14, &opts).unwrap();
        assert_eq!(a.word_lengths, b.word_lengths);
        // A different seed may differ (not asserted), but must be feasible.
        let c = opt
            .anneal(
                fixed.noise_power,
                14,
                &AnnealOptions {
                    iterations: 800,
                    seed: 43,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(c.noise_power <= fixed.noise_power * (1.0 + 1e-12));
    }

    #[test]
    fn parallel_restarts_match_the_best_serial_restart() {
        let (g, r) = setup();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(10).unwrap();
        let multi = AnnealOptions {
            iterations: 500,
            seed: 7,
            restarts: 4,
            ..Default::default()
        };
        let a = opt.anneal(fixed.noise_power, 14, &multi).unwrap();
        let b = opt.anneal(fixed.noise_power, 14, &multi).unwrap();
        // Restart fan-out is deterministic across runs (and therefore
        // across scheduling orders).
        assert_eq!(a.word_lengths, b.word_lengths);
        // The multi-restart result is never worse than the single-restart
        // walk with the same base seed.
        let single = opt
            .anneal(
                fixed.noise_power,
                14,
                &AnnealOptions {
                    iterations: 500,
                    seed: 7,
                    restarts: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(opt.proxy_cost(&a.word_lengths) <= opt.proxy_cost(&single.word_lengths) + 1e-9);
        assert!(a.noise_power <= fixed.noise_power * (1.0 + 1e-12));
    }

    #[test]
    fn infeasible_start_is_rejected() {
        let (g, r) = setup();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        assert!(opt.anneal(1e-300, 12, &AnnealOptions::default()).is_err());
    }
}
