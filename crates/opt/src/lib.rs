//! Noise-constrained word-length optimization — the paper's
//! Multi-Objective Optimization stage (Tables 3–6).
//!
//! The problem: choose a word length for every node of a datapath so that
//! a weighted implementation cost (area, power, latency from the
//! [`sna_hls`] flow) is minimized subject to the output noise power
//! staying at or below a budget — typically the noise of the uniform-WL
//! reference design, exactly how the paper's tables are set up.
//!
//! Five optimizers share one [`Optimizer`] facade:
//!
//! | method | strategy | role |
//! |---|---|---|
//! | [`Optimizer::uniform`] | all nodes at `w` | the "Fixed WL" reference column |
//! | [`Optimizer::greedy`] | start wide, trim the bit with the best cost/noise ratio | the paper's main loop |
//! | [`Optimizer::waterfill`] | analytic Lagrangian allocation (Han/Evans-style sensitivity) | fast baseline |
//! | [`Optimizer::anneal`] | simulated annealing over ±1-bit moves (Lee et al. style) | refinement |
//! | [`Optimizer::group_greedy`] | one shared width per node class (Kum/Sung grouping) | coarse baseline |
//! | [`Optimizer::exhaustive`] | full search over a small neighbourhood | optimality reference on toy designs |
//!
//! Inner-loop noise evaluations go through the incremental [`NoiseEval`]
//! state machine: O(1) coordinate moves against the precomputed
//! [`sna_core::NaModel`] gain terms on linear graphs, cone-limited
//! histogram re-propagation with memoization on the nonlinear fallback
//! (see the [`eval`](NoiseEval) module docs for the complexity model).
//! Implementation costs use a per-node proxy for move ranking and the
//! real HLS flow for reported numbers.  Exhaustive odometer chunks and
//! annealing restarts fan out across std threads.
//!
//! # Example
//!
//! ```
//! use sna_dfg::DfgBuilder;
//! use sna_hls::SynthesisConstraints;
//! use sna_interval::Interval;
//! use sna_opt::Optimizer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new();
//! let x = b.input("x");
//! let t = b.mul_const(0.25, x);
//! let y = b.add(t, x);
//! b.output("y", y);
//! let dfg = b.build()?;
//! let ranges = vec![Interval::new(-1.0, 1.0)?];
//!
//! let opt = Optimizer::new(&dfg, &ranges, SynthesisConstraints::default())?;
//! let fixed = opt.uniform(12)?;
//! let tuned = opt.greedy(fixed.noise_power, 16)?;
//! assert!(tuned.noise_power <= fixed.noise_power * (1.0 + 1e-9));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod error;
mod eval;
mod greedy;
mod optimizer;
mod pareto;
mod sweep;
mod waterfill;

pub use anneal::AnnealOptions;
pub use error::OptError;
pub use eval::NoiseEval;
pub use optimizer::{CostWeights, Evaluation, Optimizer, WlBounds};
pub use pareto::pareto_front;
pub use sweep::{
    pareto_explore, FrontPoint, ParetoOutcome, ParetoSweepSpec, SweepObjective, CKPT_KIND,
};
