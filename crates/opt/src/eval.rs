//! Incremental noise evaluation — the state machine that makes noise
//! checks cheap enough to sit *inside* the word-length search loops.
//!
//! The from-scratch path ([`Optimizer::noise_of`]) pays, per candidate, a
//! fresh [`WlConfig`] (`O(#nodes)` allocations) plus either a full
//! [`sna_core::NaModel`] evaluation (`O(#sources · #outputs)`, with
//! report/string allocations) or — on the nonlinear fallback — a complete
//! histogram propagation (`O(#nodes · bins²)`).  Every search algorithm,
//! however, explores by *single-coordinate moves*: trim one node, widen
//! one node, undo.  [`NoiseEval`] exploits that structure:
//!
//! * **NA backend (linear graphs)** — per-node noise contributions
//!   `(mean_k, var_k)` toward each output are precomputed functions of the
//!   node's own width (and its arguments' widths, through the
//!   precision-loss rule).  A [`NoiseEval::set`] re-derives only the moved
//!   node's and its direct consumers' contributions from the
//!   [`sna_core::NaModel`] gain terms and updates running totals —
//!   `O(fan-out · #outputs)` work, effectively **O(1)** per move, with no
//!   allocation.  Running totals are rebuilt from the stored per-node
//!   contributions every [`REBUILD_PERIOD`] moves so float drift stays
//!   orders of magnitude below the `1e-12` equivalence bound.
//!
//! * **Histogram backend (nonlinear combinational graphs)** — per-node
//!   `(value, error)` histograms are cached; a width change at node *i*
//!   re-propagates only `i`'s downstream cone
//!   ([`sna_dfg::Dfg::downstream_cone`]), reusing every histogram outside
//!   the cone.  Recomputed states are additionally memoized per
//!   `(bins, node, upstream widths)` in a **shared concurrent**
//!   [`HistMemo`] owned by the optimizer (or, through
//!   `Optimizer::from_session`, by the compiled session), so neighbouring
//!   candidates in greedy/annealing walks (probe, undo, re-probe) hit the
//!   memo instead of redoing `O(bins²)` convolutions — including across
//!   the per-thread evaluators of parallel searches and across successive
//!   searches over one compiled program.  Cone recomputation performs the
//!   identical float operations as a full propagation, so results are
//!   bit-equal to the scratch path.
//!
//! Both backends support a one-deep [`NoiseEval::undo`] that restores the
//! pre-move state exactly (saved contributions / saved cone states), which
//! is the probe-shaped access pattern of every optimizer in this crate.

use std::sync::Arc;

use sna_core::{
    CoeffSite, DfgEngine, EngineOptions, HistMemo, NaModel, NoiseSource, Uncertain, Value,
};
use sna_dfg::{Dfg, NodeId, Op};
use sna_fixp::{Format, Overflow, Quantizer, Rounding, WlConfig};
use sna_interval::Interval;

use crate::{OptError, Optimizer};

/// Moves between full rebuilds of the NA running totals (drift control).
const REBUILD_PERIOD: u32 = 1024;

// ----------------------------------------------------------------------
// Shared precomputed structure (built once per Optimizer)
// ----------------------------------------------------------------------

/// Backend-specific structure shared by every evaluator (and every
/// search thread) derived from one [`Optimizer`].
#[derive(Debug)]
pub(crate) enum EvalShared {
    /// Linear graphs: consumer lists + coefficient-site grouping (cheap,
    /// built eagerly in [`Optimizer::new`]).
    Na(NaShared),
    /// Nonlinear combinational graphs: downstream cones + upstream sets.
    /// Cone extraction is `O(#nodes²)` time and memory, so it is built
    /// lazily on the first [`Optimizer::evaluator`] call — paths that
    /// never search (e.g. `uniform`) skip it entirely.
    Hist {
        /// Histogram resolution.
        bins: usize,
        /// The concurrent state memo every evaluator shares — session- or
        /// optimizer-owned, so parallel searches (and repeated searches
        /// over one compiled program) hit each other's entries.
        memo: Arc<HistMemo>,
        /// The cone structure, built on first use (thread-safe).
        shared: std::sync::OnceLock<HistShared>,
    },
}

/// NA-backend invariants: who consumes whom, and which coefficient sites
/// a constant's width change re-prices.
#[derive(Debug)]
pub(crate) struct NaShared {
    /// `consumers[i]` = nodes with `i` among their arguments (deduplicated).
    consumers: Vec<Vec<u32>>,
    /// Indices into `NaModel::coeff_sites()`, grouped by constant node.
    coeff_by_const: Vec<Vec<u32>>,
}

impl NaShared {
    pub(crate) fn build(dfg: &Dfg, model: &NaModel) -> Self {
        let n = dfg.len();
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, node) in dfg.nodes() {
            for &a in node.args() {
                let list = &mut consumers[a.index()];
                if list.last() != Some(&(id.index() as u32)) {
                    list.push(id.index() as u32);
                }
            }
        }
        let mut coeff_by_const: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (k, cs) in model.coeff_sites().iter().enumerate() {
            coeff_by_const[cs.const_node().index()].push(k as u32);
        }
        NaShared {
            consumers,
            coeff_by_const,
        }
    }
}

/// Histogram-backend invariants: per-node downstream cones (the region a
/// move re-propagates) and upstream cones (the memo key domain).
#[derive(Debug)]
pub(crate) struct HistShared {
    /// `cones[i]` = downstream cone of node `i`, in evaluation order.
    cones: Vec<Vec<NodeId>>,
    /// `upstream[i]` = sorted node indices whose width the state of `i`
    /// depends on (its upstream cone, `i` included).
    upstream: Vec<Vec<u32>>,
    /// Histogram resolution.
    bins: usize,
}

impl HistShared {
    pub(crate) fn build(dfg: &Dfg, bins: usize) -> Self {
        let n = dfg.len();
        let cones: Vec<Vec<NodeId>> = (0..n)
            .map(|i| dfg.downstream_cone(NodeId::from_index(i)))
            .collect();
        // Invert: `m` is upstream of every node in `cone(m)`.
        let mut upstream: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (m, cone) in cones.iter().enumerate() {
            for node in cone {
                upstream[node.index()].push(m as u32);
            }
        }
        // Pushed in ascending `m`, so each list is already sorted.
        HistShared {
            cones,
            upstream,
            bins,
        }
    }
}

// ----------------------------------------------------------------------
// Per-node quantizer table
// ----------------------------------------------------------------------

/// Quantizers for every `(node, width)` pair the search may visit,
/// precomputed so a move never re-derives a format.
#[derive(Debug)]
struct QuantTable {
    /// `rows[i]` holds quantizers for widths `min_w[i]..=max_w`.
    rows: Vec<Vec<Quantizer>>,
    min_w: Vec<u8>,
}

impl QuantTable {
    fn build(node_ranges: &[Interval], min_w: &[u8], max_w: u8) -> Result<Self, OptError> {
        let rows = node_ranges
            .iter()
            .zip(min_w.iter())
            .map(|(&r, &lo)| {
                (lo..=max_w.max(lo))
                    .map(|w| {
                        Format::from_range(r, w)
                            .map(|f| Quantizer::new(f, Rounding::Nearest, Overflow::Saturate))
                    })
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QuantTable {
            rows,
            min_w: min_w.to_vec(),
        })
    }

    fn quantizer(&self, i: usize, w: u8) -> &Quantizer {
        let lo = self.min_w[i];
        debug_assert!(w >= lo, "width {w} below node {i} minimum {lo}");
        &self.rows[i][(w - lo) as usize]
    }

    /// Whether `(i, w)` is inside the table — the widths the search
    /// bounds admit for node `i`.
    fn supports(&self, i: usize, w: u8) -> bool {
        self.rows
            .get(i)
            .zip(self.min_w.get(i))
            .is_some_and(|(row, &lo)| w >= lo && usize::from(w - lo) < row.len())
    }

    fn frac_bits(&self, i: usize, w: u8) -> u8 {
        self.quantizer(i, w).format.frac_bits()
    }
}

// ----------------------------------------------------------------------
// NA backend
// ----------------------------------------------------------------------

/// A Neumaier-compensated accumulator.
///
/// Running totals see large cancellations (a walk through 4-bit widths
/// adds contributions ~2^40 larger than those at 24 bits; subtracting
/// them back leaves thousands of ulps of dust in a plain `f64`).  The
/// compensation term captures each add/subtract's rounding error exactly,
/// keeping the incremental totals within ~1 ulp of a fresh summation —
/// orders of magnitude inside the 1e-12 equivalence bound.
#[derive(Clone, Copy, Debug, Default)]
struct Acc {
    s: f64,
    c: f64,
}

impl Acc {
    fn add(&mut self, x: f64) {
        let t = self.s + x;
        if self.s.abs() >= x.abs() {
            self.c += (self.s - t) + x;
        } else {
            self.c += (x - t) + self.s;
        }
        self.s = t;
    }

    fn value(&self) -> f64 {
        self.s + self.c
    }

    fn reset(&mut self) {
        self.s = 0.0;
        self.c = 0.0;
    }
}

/// O(1)-move evaluator over the precomputed [`NaModel`] gain terms.
#[derive(Debug)]
struct NaEval<'a> {
    dfg: &'a Dfg,
    model: &'a NaModel,
    shared: &'a NaShared,
    table: QuantTable,
    n_out: usize,
    w: Vec<u8>,
    /// Flattened `[node][output]` contributions to the output error mean.
    contrib_mean: Vec<f64>,
    /// Flattened `[node][output]` contributions to the output variance.
    contrib_var: Vec<f64>,
    total_mean: Vec<Acc>,
    total_var: Vec<Acc>,
    moves: u32,
    undo: Option<NaUndo>,
}

#[derive(Debug)]
struct NaUndo {
    node: usize,
    old_w: u8,
    /// `(node, saved mean row, saved var row)` for every recomputed node.
    saved: Vec<(u32, Vec<f64>, Vec<f64>)>,
}

impl<'a> NaEval<'a> {
    fn new(
        dfg: &'a Dfg,
        model: &'a NaModel,
        shared: &'a NaShared,
        table: QuantTable,
        w: Vec<u8>,
    ) -> Self {
        let n = dfg.len();
        let n_out = model.n_outputs();
        let mut ev = NaEval {
            dfg,
            model,
            shared,
            table,
            n_out,
            w,
            contrib_mean: vec![0.0; n * n_out],
            contrib_var: vec![0.0; n * n_out],
            total_mean: vec![Acc::default(); n_out],
            total_var: vec![Acc::default(); n_out],
            moves: 0,
            undo: None,
        };
        for i in 0..n {
            ev.write_contribution(i);
        }
        ev.rebuild_totals();
        ev
    }

    /// The precision-loss rule of [`sna_core::noise_sources`], read off the
    /// quantizer table instead of a materialized `WlConfig`.
    fn introduces_noise(&self, i: usize) -> bool {
        let node = self.dfg.node(NodeId::from_index(i));
        let f = self.table.frac_bits(i, self.w[i]);
        let arg_frac = |k: usize| {
            let a = node.args()[k].index();
            self.table.frac_bits(a, self.w[a])
        };
        match node.op() {
            Op::Input(_) => true,
            Op::Const(_) => false,
            Op::Add | Op::Sub => f < arg_frac(0).max(arg_frac(1)),
            Op::Mul => f < arg_frac(0) + arg_frac(1),
            Op::Div => true,
            Op::Neg | Op::Delay => f < arg_frac(0),
        }
    }

    /// Recomputes node `i`'s rows of `contrib_mean` / `contrib_var` from
    /// the model's gain terms under the current width vector.  Pure in
    /// `(w[i], w[args(i)])`, so identical inputs give identical rows.
    fn write_contribution(&mut self, i: usize) {
        let base = i * self.n_out;
        self.contrib_mean[base..base + self.n_out].fill(0.0);
        self.contrib_var[base..base + self.n_out].fill(0.0);
        let id = NodeId::from_index(i);
        let node = self.dfg.node(id);
        let Some(gains) = self.model.gains_from(id) else {
            return;
        };
        let q = *self.table.quantizer(i, self.w[i]);
        match node.op() {
            Op::Const(c) => {
                // Deterministic rounding offset through the DC gains.
                let offset = q.quantize(c) - c;
                if offset != 0.0 {
                    for k in 0..self.n_out {
                        self.contrib_mean[base + k] += offset * gains.per_output[k].dc;
                    }
                }
            }
            _ => {
                if self.introduces_noise(i) {
                    let src = NoiseSource::for_quantizer(id, &q);
                    for k in 0..self.n_out {
                        let og = gains.per_output[k];
                        self.contrib_mean[base + k] += src.offset * og.dc;
                        self.contrib_var[base + k] += src.variance() * og.l2_squared;
                    }
                }
            }
        }
        // Coefficient pseudo-sources priced by *this* constant's width but
        // propagated through the consuming multiplier/divider's gains.
        for &cs_idx in &self.shared.coeff_by_const[i] {
            let cs: &CoeffSite = &self.model.coeff_sites()[cs_idx as usize];
            let delta = cs.delta(&q);
            if delta == 0.0 {
                continue;
            }
            let src = cs.source_for_delta(delta);
            let site_gains = self
                .model
                .gains_from(cs.site())
                .expect("coefficient sites refer to analyzed nodes");
            for k in 0..self.n_out {
                let og = site_gains.per_output[k];
                self.contrib_mean[base + k] += src.offset * og.dc;
                self.contrib_var[base + k] += src.variance() * og.l2_squared;
            }
        }
    }

    fn rebuild_totals(&mut self) {
        for acc in self.total_mean.iter_mut().chain(self.total_var.iter_mut()) {
            acc.reset();
        }
        for i in 0..self.w.len() {
            let base = i * self.n_out;
            for k in 0..self.n_out {
                self.total_mean[k].add(self.contrib_mean[base + k]);
                self.total_var[k].add(self.contrib_var[base + k]);
            }
        }
    }

    fn power(&self) -> f64 {
        let mut p = 0.0;
        for k in 0..self.n_out {
            let mean = self.total_mean[k].value();
            p += self.total_var[k].value() + mean * mean;
        }
        p
    }

    /// Re-derives the contribution of `i`, updating totals by delta.
    fn refresh(&mut self, i: usize, saved: &mut Vec<(u32, Vec<f64>, Vec<f64>)>) {
        let base = i * self.n_out;
        saved.push((
            i as u32,
            self.contrib_mean[base..base + self.n_out].to_vec(),
            self.contrib_var[base..base + self.n_out].to_vec(),
        ));
        for k in 0..self.n_out {
            self.total_mean[k].add(-self.contrib_mean[base + k]);
            self.total_var[k].add(-self.contrib_var[base + k]);
        }
        self.write_contribution(i);
        for k in 0..self.n_out {
            self.total_mean[k].add(self.contrib_mean[base + k]);
            self.total_var[k].add(self.contrib_var[base + k]);
        }
    }

    fn set(&mut self, i: usize, w: u8) -> f64 {
        let shared = self.shared;
        let mut saved = Vec::with_capacity(1 + shared.consumers[i].len());
        let old_w = self.w[i];
        self.w[i] = w;
        self.refresh(i, &mut saved);
        for &c in &shared.consumers[i] {
            self.refresh(c as usize, &mut saved);
        }
        self.undo = Some(NaUndo {
            node: i,
            old_w,
            saved,
        });
        self.moves += 1;
        if self.moves.is_multiple_of(REBUILD_PERIOD) {
            self.rebuild_totals();
        }
        self.power()
    }

    fn undo(&mut self) {
        let Some(u) = self.undo.take() else {
            return;
        };
        self.w[u.node] = u.old_w;
        for (node, mean_row, var_row) in u.saved {
            let base = node as usize * self.n_out;
            for k in 0..self.n_out {
                self.total_mean[k].add(-self.contrib_mean[base + k]);
                self.total_mean[k].add(mean_row[k]);
                self.total_var[k].add(-self.contrib_var[base + k]);
                self.total_var[k].add(var_row[k]);
                self.contrib_mean[base + k] = mean_row[k];
                self.contrib_var[base + k] = var_row[k];
            }
        }
    }
}

// ----------------------------------------------------------------------
// Histogram backend
// ----------------------------------------------------------------------

/// Cone-limited histogram re-propagation with a shared, concurrent
/// per-`(node, upstream widths)` memo (see [`HistMemo`]).
#[derive(Debug)]
struct HistEval<'a> {
    engine: DfgEngine,
    dfg: &'a Dfg,
    input_ranges: &'a [Interval],
    shared: &'a HistShared,
    table: QuantTable,
    w: Vec<u8>,
    cfg: WlConfig,
    states: Vec<Uncertain>,
    power: f64,
    undo: Option<HistUndo>,
    /// The shared concurrent memo (session- or optimizer-owned): every
    /// evaluator derived from the same optimizer — including the
    /// per-thread evaluators of parallel searches — reads and feeds one
    /// map, so neighbouring candidates hit across threads.
    memo: Arc<HistMemo>,
}

#[derive(Debug)]
struct HistUndo {
    node: usize,
    old_w: u8,
    old_q: Quantizer,
    saved: Vec<(u32, Uncertain)>,
    old_power: f64,
}

impl<'a> HistEval<'a> {
    fn new(
        dfg: &'a Dfg,
        input_ranges: &'a [Interval],
        shared: &'a HistShared,
        memo: Arc<HistMemo>,
        table: QuantTable,
        node_ranges: &[Interval],
        w: Vec<u8>,
    ) -> Result<Self, OptError> {
        let cfg = WlConfig::from_precomputed_ranges(node_ranges, &w)?;
        let engine = DfgEngine::new(EngineOptions::default().with_bins(shared.bins));
        let states = engine.propagate(dfg, &cfg, input_ranges)?;
        let mut ev = HistEval {
            engine,
            dfg,
            input_ranges,
            shared,
            table,
            w,
            cfg,
            states,
            power: 0.0,
            undo: None,
            memo,
        };
        ev.power = ev.output_power();
        // Seed the memo with the initial states so the first probes around
        // the start point already reuse them — one bulk insertion (first
        // writer wins when several thread evaluators start at the same
        // point, so the duplicates cost one lock acquisition, not n).
        let bins = ev.shared.bins as u32;
        ev.memo.insert_many(ev.dfg.nodes().map(|(id, _)| {
            (
                (bins, id.index() as u32, ev.memo_widths(id.index())),
                ev.states[id.index()].clone(),
            )
        }));
        Ok(ev)
    }

    /// The widths of `i`'s upstream cone (`i` included) — exactly the
    /// inputs its state depends on, so equal keys imply bit-equal states.
    fn memo_widths(&self, i: usize) -> Vec<u8> {
        self.shared.upstream[i]
            .iter()
            .map(|&m| self.w[m as usize])
            .collect()
    }

    fn output_power(&self) -> f64 {
        self.dfg
            .outputs()
            .iter()
            .map(|(_, id)| match &self.states[id.index()].error {
                Value::Const(c) => c * c,
                Value::Hist(h) => h.noise_power(),
            })
            .sum()
    }

    fn set(&mut self, i: usize, w: u8) -> Result<f64, OptError> {
        let shared = self.shared;
        let old_w = self.w[i];
        let old_q = *self.cfg.quantizer(NodeId::from_index(i));
        let cone = &shared.cones[i];
        let mut saved = Vec::with_capacity(cone.len());
        for node in cone {
            saved.push((node.index() as u32, self.states[node.index()].clone()));
        }
        self.w[i] = w;
        self.cfg
            .set_quantizer(NodeId::from_index(i), *self.table.quantizer(i, w))
            .map_err(OptError::Fixp)?;
        let bins = self.shared.bins as u32;
        for &node in cone {
            let widths = self.memo_widths(node.index());
            let state = match self.memo.lookup(bins, node.index() as u32, widths) {
                Ok(s) => s,
                Err(key) => {
                    let s = match self.engine.node_state(
                        self.dfg,
                        &self.cfg,
                        self.input_ranges,
                        node,
                        &self.states,
                    ) {
                        Ok(s) => s,
                        Err(e) => {
                            // Roll back so the evaluator stays usable; the
                            // previous move is committed, so drop its undo
                            // record too.
                            self.w[i] = old_w;
                            self.cfg
                                .set_quantizer(NodeId::from_index(i), old_q)
                                .expect("restoring a previously valid quantizer");
                            for (n, s) in saved {
                                self.states[n as usize] = s;
                            }
                            self.undo = None;
                            return Err(e.into());
                        }
                    };
                    self.memo.insert_key(key, s.clone());
                    s
                }
            };
            self.states[node.index()] = state;
        }
        let old_power = self.power;
        self.power = self.output_power();
        self.undo = Some(HistUndo {
            node: i,
            old_w,
            old_q,
            saved,
            old_power,
        });
        Ok(self.power)
    }

    fn undo(&mut self) {
        let Some(u) = self.undo.take() else {
            return;
        };
        self.w[u.node] = u.old_w;
        self.cfg
            .set_quantizer(NodeId::from_index(u.node), u.old_q)
            .expect("restoring a previously valid quantizer");
        for (n, s) in u.saved {
            self.states[n as usize] = s;
        }
        self.power = u.old_power;
    }
}

// ----------------------------------------------------------------------
// The facade
// ----------------------------------------------------------------------

/// An incremental noise evaluator positioned at one word-length
/// configuration.
///
/// Created by [`Optimizer::evaluator`]; holds the current width vector and
/// total output noise power, and advances by single-coordinate
/// [`NoiseEval::set`] moves with a one-deep exact [`NoiseEval::undo`].
///
/// # Complexity per move
///
/// | backend | [`set`](NoiseEval::set) | [`undo`](NoiseEval::undo) |
/// |---|---|---|
/// | NA (linear graphs) | `O(fan-out · #outputs)` coefficient reads, no allocation of configs or reports | `O(fan-out · #outputs)` |
/// | histogram (nonlinear) | `O(cone(i) · bins²)` worst case, `O(cone(i))` clones on a full memo hit | `O(cone(i))` state restores |
///
/// Compare with the from-scratch [`Optimizer::noise_of`]: `O(#nodes)`
/// config + source allocations per candidate (NA) or a full-graph
/// `O(#nodes · bins²)` propagation (histogram).
#[derive(Debug)]
pub struct NoiseEval<'a> {
    backend: Backend<'a>,
}

#[derive(Debug)]
enum Backend<'a> {
    Na(NaEval<'a>),
    Hist(HistEval<'a>),
}

impl<'a> NoiseEval<'a> {
    pub(crate) fn from_optimizer(opt: &'a Optimizer<'a>, w: &[u8]) -> Result<Self, OptError> {
        let table = QuantTable::build(&opt.node_ranges, &opt.min_w, opt.bounds.max)?;
        if w.len() != opt.dfg.len() {
            return Err(OptError::WrongWidthCount {
                expected: opt.dfg.len(),
                got: w.len(),
            });
        }
        if let Some((node, &width)) = w
            .iter()
            .enumerate()
            .find(|&(i, &wi)| !table.supports(i, wi))
        {
            return Err(OptError::InvalidMove { node, width });
        }
        let backend = match (&opt.eval_shared, opt.na_model()) {
            (EvalShared::Na(shared), Some(model)) => {
                Backend::Na(NaEval::new(opt.dfg, model, shared, table, w.to_vec()))
            }
            (EvalShared::Hist { bins, memo, shared }, _) => {
                let shared = shared.get_or_init(|| HistShared::build(opt.dfg, *bins));
                Backend::Hist(HistEval::new(
                    opt.dfg,
                    opt.input_ranges,
                    shared,
                    Arc::clone(memo),
                    table,
                    &opt.node_ranges,
                    w.to_vec(),
                )?)
            }
            (EvalShared::Na(_), None) => unreachable!("NA shared structure implies an NA model"),
        };
        Ok(NoiseEval { backend })
    }

    /// Total output noise power at the current width vector.
    pub fn power(&self) -> f64 {
        match &self.backend {
            Backend::Na(e) => e.power(),
            Backend::Hist(e) => e.power,
        }
    }

    /// The current width vector.
    pub fn widths(&self) -> &[u8] {
        match &self.backend {
            Backend::Na(e) => &e.w,
            Backend::Hist(e) => &e.w,
        }
    }

    /// Moves node `i` to width `w` and returns the new total power.
    ///
    /// The previous move (if any) is committed; only this move can be
    /// reverted by [`NoiseEval::undo`].
    ///
    /// # Errors
    ///
    /// [`OptError::InvalidMove`] for a node index outside the graph or a
    /// width outside the optimizer's `[min_w, bounds.max]` search range
    /// (the position is unchanged); histogram-propagation failures are
    /// propagated (the evaluator rolls back to its pre-move state
    /// first). Within the search range the NA backend cannot fail.
    pub fn set(&mut self, i: usize, w: u8) -> Result<f64, OptError> {
        let supported = match &self.backend {
            Backend::Na(e) => e.table.supports(i, w),
            Backend::Hist(e) => e.table.supports(i, w),
        };
        if !supported {
            return Err(OptError::InvalidMove { node: i, width: w });
        }
        match &mut self.backend {
            Backend::Na(e) => Ok(e.set(i, w)),
            Backend::Hist(e) => e.set(i, w),
        }
    }

    /// Reverts the most recent [`NoiseEval::set`] exactly (contributions /
    /// cone states are restored, not recomputed).  No-op when there is
    /// nothing to undo.
    pub fn undo(&mut self) {
        match &mut self.backend {
            Backend::Na(e) => e.undo(),
            Backend::Hist(e) => e.undo(),
        }
    }

    /// Evaluates the power of the single-coordinate deviation `i → w`
    /// without leaving the current configuration (set + undo).
    ///
    /// # Errors
    ///
    /// Same as [`NoiseEval::set`].
    pub fn probe(&mut self, i: usize, w: u8) -> Result<f64, OptError> {
        let p = self.set(i, w)?;
        self.undo();
        Ok(p)
    }

    /// Walks the evaluator to `target` coordinate by coordinate, returning
    /// the resulting power.  Clears the undo history.
    ///
    /// # Errors
    ///
    /// Same as [`NoiseEval::set`].
    pub fn set_vector(&mut self, target: &[u8]) -> Result<f64, OptError> {
        if target.len() != self.widths().len() {
            return Err(OptError::WrongWidthCount {
                expected: self.widths().len(),
                got: target.len(),
            });
        }
        for (i, &t) in target.iter().enumerate() {
            if self.widths()[i] != t {
                self.set(i, t)?;
            }
        }
        match &mut self.backend {
            Backend::Na(e) => e.undo = None,
            Backend::Hist(e) => e.undo = None,
        }
        Ok(self.power())
    }
}
