//! Multi-objective design-space exploration: uniform word-length sweeps
//! and Pareto-front extraction over (area, power, latency, noise).
//!
//! The paper frames word-length selection as a Multi-Objective
//! Optimization; its tables fix the noise axis and optimize a weighted
//! cost.  This module exposes the complementary view: the set of
//! non-dominated implementations across the whole word-length range, from
//! which a designer picks an operating point.

use crate::{Evaluation, OptError, Optimizer};

/// The four objectives of a design point, smaller-is-better.
fn objectives(e: &Evaluation) -> [f64; 4] {
    [
        e.cost.area_um2,
        e.cost.power_uw,
        e.cost.latency_cycles as f64,
        e.noise_power,
    ]
}

/// `a` dominates `b` iff it is no worse on every objective and strictly
/// better on at least one.
pub(crate) fn dominates(a: &Evaluation, b: &Evaluation) -> bool {
    let (oa, ob) = (objectives(a), objectives(b));
    let mut strictly = false;
    for (x, y) in oa.iter().zip(ob.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// The canonical total order of the front: objectives lexicographically
/// (via `total_cmp`, so even exotic floats order consistently), then the
/// word-length vector as a tiebreak.  Two points comparing `Equal` are
/// exact duplicates of the same configuration.
pub(crate) fn canonical_cmp(a: &Evaluation, b: &Evaluation) -> std::cmp::Ordering {
    let (oa, ob) = (objectives(a), objectives(b));
    for (x, y) in oa.iter().zip(ob.iter()) {
        let o = x.total_cmp(y);
        if o != std::cmp::Ordering::Equal {
            return o;
        }
    }
    a.word_lengths.cmp(&b.word_lengths)
}

/// Filters a set of evaluations down to its non-dominated subset in a
/// canonical total order (objective tuple, then the word-length vector
/// as a tiebreak); exact duplicates (same
/// objectives *and* same word lengths) collapse to one point.
///
/// The canonical sort makes the result a pure function of the input
/// *set* — independent of arrival order, thread interleaving or
/// checkpoint boundaries — which is what lets a resumed sweep reproduce
/// an uninterrupted one bit for bit: `front(front(a) ∪ b) = front(a ∪
/// b)`.  It also carries the skyline property that a dominator sorts
/// strictly earlier (it is no worse on every objective and better on
/// one, hence lexicographically smaller), so each point only needs
/// checking against the *already kept* prefix — `O(n·k)` for a front of
/// size `k` instead of the all-pairs `O(n²)`.
pub fn pareto_front(mut points: Vec<Evaluation>) -> Vec<Evaluation> {
    points.sort_by(canonical_cmp);
    points.dedup_by(|a, b| canonical_cmp(a, b) == std::cmp::Ordering::Equal);
    let mut kept: Vec<Evaluation> = Vec::new();
    'points: for p in points {
        for k in &kept {
            if dominates(k, &p) {
                continue 'points;
            }
        }
        kept.push(p);
    }
    kept
}

impl Optimizer<'_> {
    /// Sweeps uniform word lengths over `w_range`, evaluating each with
    /// the real synthesis flow, and returns the non-dominated set over
    /// (area, power, latency, noise).
    ///
    /// # Errors
    ///
    /// Synthesis failures are propagated; word lengths whose formats
    /// cannot represent the ranges are widened per node as usual.
    pub fn pareto_sweep(
        &self,
        w_range: impl IntoIterator<Item = u8>,
    ) -> Result<Vec<Evaluation>, OptError> {
        let mut evals = Vec::new();
        for w in w_range {
            evals.push(self.uniform(w)?);
        }
        Ok(pareto_front(evals))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_hls::SynthesisConstraints;
    use sna_interval::Interval;

    fn setup() -> (sna_dfg::Dfg, Vec<Interval>) {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(0.6, x);
        let y = b.add(t, x);
        b.output("y", y);
        (b.build().unwrap(), vec![Interval::new(-1.0, 1.0).unwrap()])
    }

    #[test]
    fn uniform_sweep_is_its_own_pareto_front() {
        // For a uniform sweep, noise strictly decreases with w and cost
        // strictly increases, so no point dominates another.
        let (g, r) = setup();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let front = opt.pareto_sweep(6..=14).unwrap();
        assert_eq!(front.len(), 9);
        // Sorted by construction: noise decreasing, area nondecreasing.
        for pair in front.windows(2) {
            assert!(pair[1].noise_power < pair[0].noise_power);
            assert!(pair[1].cost.area_um2 >= pair[0].cost.area_um2);
        }
    }

    #[test]
    fn dominated_points_are_filtered() {
        let (g, r) = setup();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let a = opt.uniform(8).unwrap();
        let b = opt.uniform(12).unwrap();
        // Fabricate a point strictly worse than `a` in noise with `a`'s
        // cost: a uniform 8 evaluated again but with its noise bumped.
        let mut worse = a.clone();
        worse.noise_power *= 2.0;
        let front = pareto_front(vec![a.clone(), worse, b]);
        assert_eq!(front.len(), 2);
        assert!(front
            .iter()
            .all(|e| (e.noise_power - a.noise_power).abs() < 1e-15
                || e.cost.area_um2 != a.cost.area_um2
                || e.noise_power <= a.noise_power));
    }

    #[test]
    fn front_is_order_independent_and_collapses_duplicates() {
        let (g, r) = setup();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let evals: Vec<Evaluation> = (6..=14).map(|w| opt.uniform(w).unwrap()).collect();
        let forward = pareto_front(evals.clone());
        let mut reversed: Vec<Evaluation> = evals.iter().rev().cloned().collect();
        // Exact duplicates must collapse to one canonical point.
        reversed.push(evals[3].clone());
        reversed.push(evals[3].clone());
        let backward = pareto_front(reversed);
        assert_eq!(forward.len(), backward.len());
        for (a, b) in forward.iter().zip(backward.iter()) {
            assert_eq!(a.word_lengths, b.word_lengths);
            assert_eq!(a.noise_power.to_bits(), b.noise_power.to_bits());
            assert_eq!(a.cost.area_um2.to_bits(), b.cost.area_um2.to_bits());
        }
        // Idempotent and absorbing: front(front(a) ∪ b) == front(a ∪ b).
        let split = {
            let mut partial = pareto_front(evals[..5].to_vec());
            partial.extend(evals[5..].iter().cloned());
            pareto_front(partial)
        };
        assert_eq!(split.len(), forward.len());
        for (a, b) in forward.iter().zip(split.iter()) {
            assert_eq!(a.word_lengths, b.word_lengths);
        }
    }

    #[test]
    fn domination_is_irreflexive_and_needs_strictness() {
        let (g, r) = setup();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let a = opt.uniform(10).unwrap();
        assert!(!dominates(&a, &a));
        let twin = a.clone();
        assert!(!dominates(&a, &twin) && !dominates(&twin, &a));
    }
}
