use std::error::Error;
use std::fmt;

use sna_core::SnaError;
use sna_fixp::FixpError;
use sna_hls::HlsError;

/// Errors produced by the word-length optimizers.
#[derive(Clone, Debug, PartialEq)]
pub enum OptError {
    /// Building the noise model or evaluating noise failed.
    Sna(SnaError),
    /// Constructing a word-length configuration failed.
    Fixp(FixpError),
    /// Synthesizing a candidate failed.
    Hls(HlsError),
    /// No feasible configuration exists within the word-length bounds
    /// (budget unreachable even at the maximum width).
    Infeasible {
        /// The requested noise budget.
        budget: f64,
        /// The noise at the widest allowed configuration.
        best_noise: f64,
    },
    /// The exhaustive search space exceeds the configured cap.
    SearchSpaceTooLarge {
        /// Candidate count.
        candidates: u128,
        /// Allowed maximum.
        cap: u128,
    },
    /// An incremental-evaluator move named a node outside the graph or a
    /// width outside the optimizer's search range.
    InvalidMove {
        /// The targeted node index.
        node: usize,
        /// The requested width.
        width: u8,
    },
    /// A width vector's length does not match the graph's node count.
    WrongWidthCount {
        /// Nodes in the graph.
        expected: usize,
        /// Widths supplied.
        got: usize,
    },
    /// A Pareto sweep specification is malformed (empty ladder, empty
    /// blocks, or an inverted width range).
    InvalidSweepSpec {
        /// Loose-budget uniform width.
        w_lo: u8,
        /// Tight-budget uniform width.
        w_hi: u8,
        /// Requested noise budgets.
        noise_points: usize,
        /// Requested candidates per checkpoint block.
        checkpoint_every: usize,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Sna(e) => write!(f, "noise analysis failed: {e}"),
            OptError::Fixp(e) => write!(f, "fixed-point configuration failed: {e}"),
            OptError::Hls(e) => write!(f, "synthesis failed: {e}"),
            OptError::Infeasible { budget, best_noise } => write!(
                f,
                "noise budget {budget:e} unreachable; best achievable is {best_noise:e}"
            ),
            OptError::SearchSpaceTooLarge { candidates, cap } => {
                write!(
                    f,
                    "exhaustive search of {candidates} candidates exceeds cap {cap}"
                )
            }
            OptError::InvalidMove { node, width } => write!(
                f,
                "move to width {width} at node {node} is outside the search range"
            ),
            OptError::WrongWidthCount { expected, got } => write!(
                f,
                "width vector has {got} entries but the graph has {expected} nodes"
            ),
            OptError::InvalidSweepSpec {
                w_lo,
                w_hi,
                noise_points,
                checkpoint_every,
            } => write!(
                f,
                "invalid pareto sweep: widths {w_lo}..{w_hi}, {noise_points} noise point(s), \
                 checkpoint every {checkpoint_every}"
            ),
        }
    }
}

impl Error for OptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OptError::Sna(e) => Some(e),
            OptError::Fixp(e) => Some(e),
            OptError::Hls(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnaError> for OptError {
    fn from(e: SnaError) -> Self {
        OptError::Sna(e)
    }
}

impl From<FixpError> for OptError {
    fn from(e: FixpError) -> Self {
        OptError::Fixp(e)
    }
}

impl From<HlsError> for OptError {
    fn from(e: HlsError) -> Self {
        OptError::Hls(e)
    }
}
