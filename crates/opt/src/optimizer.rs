use std::sync::Arc;

use sna_core::{Budget, DfgEngine, EngineOptions, HistMemo, NaModel, Session};
use sna_dfg::{Dfg, LtiOptions, RangeOptions};
use sna_fixp::WlConfig;
use sna_hls::{synthesize, CostReport, FuKind, SynthesisConstraints};
use sna_interval::Interval;

use crate::eval::{EvalShared, NaShared, NoiseEval};
use crate::OptError;

/// Default worker count for the parallel searches: available hardware
/// parallelism with a fallback of 1.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// How candidate noise is evaluated inside the search loops.
///
/// Linear graphs (with or without feedback) use the precomputed
/// [`NaModel`] — `O(#nodes)` per candidate. Nonlinear *combinational*
/// graphs fall back to the histogram-propagation [`DfgEngine`], which is
/// slower per candidate but assumption-free — this is the paper's "SNA
/// inside the optimization loop" configuration.
#[derive(Debug)]
enum NoiseModel {
    /// Precomputed LTI moment model (linear graphs) — `Arc`-shared so a
    /// [`Session`]'s cached model is reused without cloning the gains.
    Na(Arc<NaModel>),
    /// Per-candidate histogram propagation (nonlinear combinational).
    Hist {
        /// Histogram resolution per operation.
        bins: usize,
    },
}

/// Weights of the multi-objective cost `wa·area + wp·power + wl·latency`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    /// Weight of area (µm²).
    pub area: f64,
    /// Weight of power (µW).
    pub power: f64,
    /// Weight of latency (cycles).
    pub latency: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            area: 1.0,
            power: 1.0,
            latency: 1.0,
        }
    }
}

/// Word-length search bounds (per node, clamped from below by the node's
/// integer-part requirement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WlBounds {
    /// Smallest allowed word length.
    pub min: u8,
    /// Largest allowed word length.
    pub max: u8,
}

impl Default for WlBounds {
    fn default() -> Self {
        WlBounds { min: 4, max: 40 }
    }
}

/// A fully evaluated word-length configuration.
#[derive(Clone, Debug)]
pub struct Evaluation {
    /// The word length of every node.
    pub word_lengths: Vec<u8>,
    /// The corresponding fixed-point configuration.
    pub config: WlConfig,
    /// Implementation cost from the real HLS flow.
    pub cost: CostReport,
    /// Total output noise power under the NA model.
    pub noise_power: f64,
    /// The weighted scalar objective.
    pub weighted_cost: f64,
}

/// The shared optimization context: prebuilt noise model, node ranges and
/// cost proxy; individual algorithms live in sibling modules.
#[derive(Debug)]
pub struct Optimizer<'a> {
    pub(crate) dfg: &'a Dfg,
    pub(crate) constraints: SynthesisConstraints,
    pub(crate) weights: CostWeights,
    pub(crate) bounds: WlBounds,
    model: NoiseModel,
    pub(crate) input_ranges: &'a [Interval],
    pub(crate) node_ranges: Vec<Interval>,
    /// Per-node lower bound: integer part must fit.
    pub(crate) min_w: Vec<u8>,
    /// Per-node integer bits implied by the value range.
    pub(crate) int_bits: Vec<u8>,
    /// Precomputed structure shared by every incremental evaluator.
    pub(crate) eval_shared: EvalShared,
    /// Per-`FuKind` node partition + register/energy inventory for the
    /// cost proxy, computed once instead of per call.
    proxy_static: ProxyStatic,
    /// Cooperative wall-clock/cancellation budget checked inside the
    /// search loops; unlimited by default.
    pub(crate) exec_budget: Budget,
}

/// The node partition behind [`Optimizer::proxy_cost`]: which nodes bind
/// to which functional-unit kind, and which carry registers.
#[derive(Debug)]
struct ProxyStatic {
    /// Node indices per [`FuKind`], in node-id order.
    fu_nodes: [Vec<u32>; 3],
    /// Nodes that occupy a register (everything but constants), id order.
    reg_nodes: Vec<u32>,
}

impl ProxyStatic {
    fn build(dfg: &Dfg) -> Self {
        let mut fu_nodes: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut reg_nodes = Vec::new();
        for (id, node) in dfg.nodes() {
            if !matches!(node.op(), sna_dfg::Op::Const(_)) {
                reg_nodes.push(id.index() as u32);
            }
            if let Some(kind) = FuKind::for_op(node.op()) {
                fu_nodes[kind as usize].push(id.index() as u32);
            }
        }
        ProxyStatic {
            fu_nodes,
            reg_nodes,
        }
    }
}

/// Reusable width buffers for [`Optimizer::proxy_cost_with`] — the hot
/// ranking loops allocate these once instead of three `Vec`s per call.
#[derive(Clone, Debug, Default)]
pub(crate) struct ProxyScratch {
    widths: [Vec<u8>; 3],
}

impl<'a> Optimizer<'a> {
    /// Builds the context: range analysis, noise model, per-node minimum
    /// widths.
    ///
    /// Linear graphs get the fast precomputed [`NaModel`]; nonlinear
    /// *combinational* graphs fall back to per-candidate [`DfgEngine`]
    /// histogram propagation (see [`Optimizer::na_model`]).
    ///
    /// # Errors
    ///
    /// Propagates noise-model failures (nonlinear *sequential* graphs,
    /// unstable feedback, range failures).
    pub fn new(
        dfg: &'a Dfg,
        input_ranges: &'a [Interval],
        constraints: SynthesisConstraints,
    ) -> Result<Self, OptError> {
        let model = match NaModel::build(dfg, input_ranges, &LtiOptions::default()) {
            Ok(model) => NoiseModel::Na(Arc::new(model)),
            // The histogram engine needs no linearity but cannot cross
            // delays; sequential nonlinear graphs keep the error.
            Err(_) if !dfg.is_linear() && dfg.is_combinational() => NoiseModel::Hist { bins: 64 },
            Err(e) => return Err(e.into()),
        };
        let node_ranges = dfg
            .ranges_auto(
                input_ranges,
                &RangeOptions::default(),
                &LtiOptions::default(),
            )
            .map_err(|e| OptError::Sna(sna_core::SnaError::Dfg(e)))?;
        Self::assemble(
            dfg,
            input_ranges,
            node_ranges,
            model,
            Arc::new(HistMemo::new()),
            constraints,
        )
    }

    /// Builds the context *on top of a compiled [`Session`]*: the noise
    /// model, node ranges and histogram memo come from the session's
    /// shared artifact chain instead of being rebuilt — the wiring the
    /// service and CLI use so "compile once, then optimize" pays the
    /// impulse-response analysis exactly once.
    ///
    /// Results are identical to [`Optimizer::new`] over the same graph
    /// and ranges (the session computes the same artifacts).
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::new`].
    pub fn from_session(
        session: &'a Session,
        constraints: SynthesisConstraints,
    ) -> Result<Self, OptError> {
        let dfg = session.dfg();
        let model = match session.na_model() {
            Ok(model) => NoiseModel::Na(model),
            Err(_) if !dfg.is_linear() && dfg.is_combinational() => NoiseModel::Hist { bins: 64 },
            Err(e) => return Err(e.into()),
        };
        let node_ranges = (*session.node_ranges().map_err(OptError::Sna)?).clone();
        Self::assemble(
            dfg,
            session.input_ranges(),
            node_ranges,
            model,
            Arc::clone(session.hist_memo()),
            constraints,
        )
    }

    /// Shared tail of the constructors: per-node bounds, evaluator
    /// structure, cost-proxy partition.
    fn assemble(
        dfg: &'a Dfg,
        input_ranges: &'a [Interval],
        node_ranges: Vec<Interval>,
        model: NoiseModel,
        hist_memo: Arc<HistMemo>,
        constraints: SynthesisConstraints,
    ) -> Result<Self, OptError> {
        let bounds = WlBounds::default();
        let min_w = node_ranges
            .iter()
            .map(|&r| {
                (2..=bounds.max)
                    .find(|&w| sna_fixp::Format::from_range(r, w).is_ok())
                    .unwrap_or(bounds.max)
                    .max(bounds.min)
            })
            .collect();
        let int_bits = node_ranges
            .iter()
            .map(|&r| {
                sna_fixp::Format::from_range(r, sna_fixp::MAX_WORD_LENGTH)
                    .map(|f| f.int_bits())
                    .unwrap_or(sna_fixp::MAX_WORD_LENGTH - 1)
            })
            .collect();
        let eval_shared = match &model {
            NoiseModel::Na(m) => EvalShared::Na(NaShared::build(dfg, m)),
            NoiseModel::Hist { bins } => EvalShared::Hist {
                bins: *bins,
                memo: hist_memo,
                shared: std::sync::OnceLock::new(),
            },
        };
        Ok(Optimizer {
            dfg,
            constraints,
            weights: CostWeights::default(),
            bounds,
            model,
            input_ranges,
            node_ranges,
            min_w,
            int_bits,
            eval_shared,
            proxy_static: ProxyStatic::build(dfg),
            exec_budget: Budget::unlimited(),
        })
    }

    /// Widens exactness-preserving operations (add/sub/neg/delay) so their
    /// fraction keeps every argument bit — used by allocators whose
    /// per-node sensitivity model treats such nodes as noise-free.
    pub(crate) fn widen_exact_nodes(&self, w: &mut [u8]) {
        use sna_dfg::Op;
        // Process in topological order so chains propagate.
        for &id in self.dfg.topo_order() {
            let node = self.dfg.node(id);
            if !matches!(node.op(), Op::Add | Op::Sub | Op::Neg | Op::Delay) {
                continue;
            }
            let needed_frac = node
                .args()
                .iter()
                .map(|a| {
                    let wa = w[a.index()];
                    wa.saturating_sub(1)
                        .saturating_sub(self.int_bits[a.index()])
                })
                .max()
                .unwrap_or(0);
            let target = needed_frac + 1 + self.int_bits[id.index()];
            w[id.index()] = w[id.index()]
                .max(target.min(self.bounds.max))
                .clamp(self.min_w[id.index()], self.bounds.max);
        }
        // Delay nodes are excluded from the combinational topo order; fix
        // them afterwards (their arg is computed by then).
        for &d in self.dfg.delay_nodes() {
            let a = self.dfg.node(d).args()[0];
            let frac = w[a.index()]
                .saturating_sub(1)
                .saturating_sub(self.int_bits[a.index()]);
            let target = frac + 1 + self.int_bits[d.index()];
            w[d.index()] = w[d.index()]
                .max(target.min(self.bounds.max))
                .clamp(self.min_w[d.index()], self.bounds.max);
        }
    }

    /// Overrides the cost weights.
    pub fn with_weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Attaches a cooperative *execution* budget (wall-clock deadline
    /// and/or cancellation flag) — distinct from the noise-power budget
    /// the search methods take as a parameter.
    ///
    /// The search loops poll it at cheap strided checkpoints (every
    /// ~1024 exhaustive candidates, ~256 annealing proposals, once per
    /// greedy trim round) and abort with
    /// [`sna_core::SnaError::DeadlineExceeded`] /
    /// [`sna_core::SnaError::Cancelled`] wrapped in [`OptError::Sna`]
    /// once the budget is overrun.  A budget that never fires leaves
    /// every search result bit-identical to the unlimited run.
    pub fn with_exec_budget(mut self, budget: Budget) -> Self {
        self.exec_budget = budget;
        self
    }

    /// Overrides the word-length bounds (minimums are still clamped by the
    /// per-node integer-part requirement).
    pub fn with_bounds(mut self, bounds: WlBounds) -> Result<Self, OptError> {
        self.bounds = bounds;
        self.min_w = self
            .node_ranges
            .iter()
            .map(|&r| {
                (2..=bounds.max)
                    .find(|&w| sna_fixp::Format::from_range(r, w).is_ok())
                    .unwrap_or(bounds.max)
                    .max(bounds.min)
            })
            .collect();
        Ok(self)
    }

    /// The prebuilt NA moment model, when the graph is linear; `None`
    /// when the histogram fallback is in use.
    pub fn na_model(&self) -> Option<&NaModel> {
        match &self.model {
            NoiseModel::Na(model) => Some(model),
            NoiseModel::Hist { .. } => None,
        }
    }

    /// Per-node minimum feasible word lengths.
    pub fn min_word_lengths(&self) -> &[u8] {
        &self.min_w
    }

    // ------------------------------------------------------------------
    // Inner-loop primitives shared by the algorithms
    // ------------------------------------------------------------------

    /// An incremental evaluator positioned at `w` — the object the search
    /// loops move instead of paying [`Optimizer::noise_of`] per candidate
    /// (see [`NoiseEval`] for the complexity model).
    ///
    /// # Errors
    ///
    /// Format-table construction and (histogram backend) the initial full
    /// propagation can fail; failures are propagated.
    pub fn evaluator(&self, w: &[u8]) -> Result<NoiseEval<'_>, OptError> {
        NoiseEval::from_optimizer(self, w)
    }

    /// Noise power of a word-length vector, evaluated *from scratch* —
    /// the reference implementation the incremental [`NoiseEval`] is
    /// equivalence-tested against, and the right call for one-off
    /// evaluations outside a search loop.
    ///
    /// # Errors
    ///
    /// Configuration construction and noise-model failures are propagated.
    pub fn noise_of(&self, w: &[u8]) -> Result<f64, OptError> {
        let cfg = WlConfig::from_precomputed_ranges(&self.node_ranges, w)?;
        self.noise_of_config(&cfg)
    }

    /// Total output noise power of a configuration under the active model.
    fn noise_of_config(&self, cfg: &WlConfig) -> Result<f64, OptError> {
        match &self.model {
            NoiseModel::Na(model) => Ok(model.total_power(self.dfg, cfg)),
            NoiseModel::Hist { bins } => {
                let reports = DfgEngine::new(EngineOptions::default().with_bins(*bins)).analyze(
                    self.dfg,
                    cfg,
                    self.input_ranges,
                )?;
                Ok(reports.iter().map(|(_, r)| r.power).sum())
            }
        }
    }

    /// Per-node noise sensitivity `cᵢ` measured at the evaluator's
    /// current configuration: the noise contribution of node `i` behaves
    /// as `cᵢ·4^(−wᵢ)` under the uniform-quantization model, so one probe
    /// per node suffices.
    ///
    /// On the NA path each probe is *analytic* — an `O(fan-out)`
    /// re-pricing of the moved node's precomputed gain terms — instead of
    /// the former n+1 full model evaluations; the histogram path probes
    /// via cone-limited re-propagation.  The evaluator must already be
    /// positioned at the probe point; its position is preserved.
    pub(crate) fn sensitivities_with(&self, ev: &mut NoiseEval<'_>) -> Result<Vec<f64>, OptError> {
        let at = ev.widths().to_vec();
        let base = ev.power();
        // Deltas below the float resolution of the total are incremental
        // bookkeeping dust, not signal: a from-scratch pair of sums would
        // cancel them to exactly 0, and downstream allocators branch on
        // zero sensitivity.
        let floor = base.abs() * 1e-13;
        let mut c = vec![0.0; at.len()];
        for i in 0..at.len() {
            if at[i] <= self.min_w[i] {
                continue;
            }
            let dn = ev.probe(i, at[i] - 1)? - base;
            let dn = if dn <= floor { 0.0 } else { dn };
            // dn = cᵢ·(4^−(w−1) − 4^−w) = 3·cᵢ·4^−w.
            c[i] = dn / 3.0 * 4f64.powi(at[i] as i32);
        }
        Ok(c)
    }

    /// A fresh scratch buffer for [`Optimizer::proxy_cost_with`]; hot
    /// loops (and each search thread) hold one across calls.
    pub(crate) fn proxy_scratch(&self) -> ProxyScratch {
        ProxyScratch::default()
    }

    /// Implementation-cost proxy used for move ranking.
    ///
    /// Mirrors the real cost structure: functional units are *shared*, so
    /// the FU area of each kind is set by the widest operation bound to
    /// it; registers and switching energy accrue per node; latency is the
    /// serialized multi-cycle estimate per kind.  Monotone in every `wᵢ`.
    pub fn proxy_cost(&self, w: &[u8]) -> f64 {
        self.proxy_cost_with(w, &mut self.proxy_scratch())
    }

    /// [`Optimizer::proxy_cost`] over the precomputed node partition,
    /// reusing the caller's scratch buffers — no allocation per call.
    pub(crate) fn proxy_cost_with(&self, w: &[u8], scratch: &mut ProxyScratch) -> f64 {
        let tech = &self.constraints.tech;
        let clock = self.constraints.clock_ns;
        let widths = &mut scratch.widths;
        let mut cycles = [0u64; 3];
        let mut reg_area = 0.0;
        let mut energy_pj = 0.0;
        // Constants are wired, not registered (matches the binder).
        for &i in &self.proxy_static.reg_nodes {
            reg_area += tech.register_area(w[i as usize]);
        }
        for kind in FuKind::ALL {
            let k = kind as usize;
            widths[k].clear();
            for &i in &self.proxy_static.fu_nodes[k] {
                let wi = w[i as usize];
                widths[k].push(wi);
                cycles[k] += u64::from(tech.cycles(kind, wi, clock));
                energy_pj += tech.fu_energy_pj(kind, wi);
            }
        }
        let mut fu_area = 0.0;
        let mut latency = 1u64;
        for kind in FuKind::ALL {
            let k = kind as usize;
            if widths[k].is_empty() {
                continue;
            }
            widths[k].sort_unstable_by(|a, b| b.cmp(a));
            // With `n` width-affine units, unit `i` serves roughly the
            // i-th descending width quantile of the operations.
            let n = self
                .constraints
                .resources
                .count(kind)
                .max(1)
                .min(widths[k].len());
            for i in 0..n {
                let idx = i * widths[k].len() / n;
                fu_area += tech.fu_area(kind, widths[k][idx]);
            }
            latency = latency.max(cycles[k].div_ceil(n as u64));
        }
        let area = fu_area + reg_area;
        // Same unit convention as CostReport: pJ / ns × 1000 = µW.
        let power_uw =
            energy_pj / (latency as f64 * clock) * 1000.0 + area * tech.leakage_uw_per_um2;
        self.weights.area * area
            + self.weights.power * power_uw
            + self.weights.latency * latency as f64
    }

    /// Full evaluation: real synthesis + noise.
    pub(crate) fn evaluate(&self, w: Vec<u8>) -> Result<Evaluation, OptError> {
        let config = WlConfig::from_precomputed_ranges(&self.node_ranges, &w)?;
        let imp = synthesize(self.dfg, &config, &self.constraints)?;
        let noise_power = self.noise_of_config(&config)?;
        let weighted_cost =
            imp.cost
                .weighted(self.weights.area, self.weights.power, self.weights.latency);
        Ok(Evaluation {
            word_lengths: w,
            config,
            cost: imp.cost,
            noise_power,
            weighted_cost,
        })
    }

    /// Clamps a uniform target to each node's feasible minimum.
    pub(crate) fn uniform_vector(&self, w: u8) -> Vec<u8> {
        self.min_w
            .iter()
            .map(|&m| w.clamp(m, self.bounds.max))
            .collect()
    }

    // ------------------------------------------------------------------
    // Baselines
    // ------------------------------------------------------------------

    /// The uniform-word-length reference design (the "Fixed WL" column of
    /// the paper's tables).  Nodes whose integer part does not fit in `w`
    /// are widened to their minimum.
    ///
    /// # Errors
    ///
    /// Synthesis failures are propagated.
    pub fn uniform(&self, w: u8) -> Result<Evaluation, OptError> {
        self.evaluate(self.uniform_vector(w))
    }

    /// Exhaustive search over `w0 ± radius` per node (proxy-ranked,
    /// real-synthesis result).  Only for small graphs.  Candidates are
    /// evaluated across all available threads; see
    /// [`Optimizer::exhaustive_threaded`].
    ///
    /// # Errors
    ///
    /// [`OptError::SearchSpaceTooLarge`] when the candidate count exceeds
    /// `cap`; [`OptError::Infeasible`] when nothing meets the budget.
    pub fn exhaustive(
        &self,
        budget: f64,
        w0: u8,
        radius: u8,
        cap: u128,
    ) -> Result<Evaluation, OptError> {
        self.exhaustive_threaded(budget, w0, radius, cap, default_threads())
    }

    /// [`Optimizer::exhaustive`] with an explicit worker count.
    ///
    /// The odometer's candidate space is split into `threads` contiguous
    /// chunks of linear indices; each worker walks its chunk with an
    /// incremental [`NoiseEval`] (odometer steps amortize to O(1)
    /// coordinate moves per candidate) and reports its best feasible
    /// `(proxy, index, widths)`.  The merge prefers lower proxy cost and
    /// breaks ties by candidate index, which makes the winner identical
    /// for every thread count — including `threads == 1`, the serial
    /// order of the classic implementation.
    ///
    /// # Errors
    ///
    /// Same as [`Optimizer::exhaustive`].
    pub fn exhaustive_threaded(
        &self,
        budget: f64,
        w0: u8,
        radius: u8,
        cap: u128,
        threads: usize,
    ) -> Result<Evaluation, OptError> {
        let base = self.uniform_vector(w0);
        let levels: Vec<Vec<u8>> = base
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let lo = b.saturating_sub(radius).max(self.min_w[i]);
                let hi = (b + radius).min(self.bounds.max);
                (lo..=hi).collect()
            })
            .collect();
        let candidates: u128 = levels.iter().map(|l| l.len() as u128).product();
        if candidates > cap {
            return Err(OptError::SearchSpaceTooLarge { candidates, cap });
        }
        let workers = threads.clamp(1, 64).min(candidates.max(1) as usize);
        let levels = &levels;
        // Decodes a linear candidate index into per-node level indices
        // (coordinate 0 is the fastest-cycling digit, as in the serial
        // odometer).
        let decode = |mut c: u128| -> Vec<usize> {
            levels
                .iter()
                .map(|l| {
                    let d = (c % l.len() as u128) as usize;
                    c /= l.len() as u128;
                    d
                })
                .collect()
        };
        type Best = Option<(f64, u128, Vec<u8>)>;
        let chunk = |t: usize| -> (u128, u128) {
            let t = t as u128;
            let n = workers as u128;
            (candidates * t / n, candidates * (t + 1) / n)
        };
        let limited = !self.exec_budget.is_unlimited();
        let run_chunk = |lo: u128, hi: u128| -> Result<Best, OptError> {
            let mut idx = decode(lo);
            let mut w: Vec<u8> = idx.iter().zip(levels).map(|(&d, l)| l[d]).collect();
            let mut ev = self.evaluator(&w)?;
            let mut scratch = self.proxy_scratch();
            let mut best: Best = None;
            let mut c = lo;
            let mut since_check = 0u32;
            loop {
                // Budget checkpoint every ~1024 candidates: cheap enough
                // to be noise, frequent enough that an overrun request
                // stops within a few thousand odometer steps.
                if limited {
                    if since_check == 0 {
                        self.exec_budget.check()?;
                    }
                    since_check = (since_check + 1) & 1023;
                }
                if ev.power() <= budget {
                    let proxy = self.proxy_cost_with(&w, &mut scratch);
                    if best.as_ref().map(|(p, _, _)| proxy < *p).unwrap_or(true) {
                        best = Some((proxy, c, w.clone()));
                    }
                }
                c += 1;
                if c == hi {
                    return Ok(best);
                }
                // Odometer advance; `c < candidates` guarantees a carry
                // never runs off the last digit.
                let mut k = 0;
                loop {
                    idx[k] += 1;
                    if idx[k] < levels[k].len() {
                        w[k] = levels[k][idx[k]];
                        ev.set(k, w[k])?;
                        break;
                    }
                    idx[k] = 0;
                    if w[k] != levels[k][0] {
                        w[k] = levels[k][0];
                        ev.set(k, w[k])?;
                    }
                    k += 1;
                }
            }
        };
        let merged: Result<Best, OptError> = if workers == 1 {
            run_chunk(0, candidates)
        } else {
            // Mirrors `sna_service::run_ordered`: scoped std threads, the
            // results merged deterministically in chunk order.
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|t| {
                        let (lo, hi) = chunk(t);
                        scope.spawn(move || run_chunk(lo, hi))
                    })
                    .collect();
                let mut best: Best = None;
                for h in handles {
                    let partial = h.join().expect("exhaustive worker panicked")?;
                    if let Some((proxy, c, w)) = partial {
                        let better = best
                            .as_ref()
                            .map(|(bp, bc, _)| proxy < *bp || (proxy == *bp && c < *bc))
                            .unwrap_or(true);
                        if better {
                            best = Some((proxy, c, w));
                        }
                    }
                }
                Ok(best)
            })
        };
        let (_, _, w) = merged?.ok_or(OptError::Infeasible {
            budget,
            best_noise: f64::INFINITY,
        })?;
        self.evaluate(w)
    }

    /// Grouped greedy (Kum/Sung-style): one shared word length per node
    /// class (inputs, constants, adders, multipliers, dividers, delays),
    /// trimmed greedily under the budget.
    ///
    /// # Errors
    ///
    /// [`OptError::Infeasible`] when even the widest configuration misses
    /// the budget.
    pub fn group_greedy(&self, budget: f64, start_w: u8) -> Result<Evaluation, OptError> {
        use sna_dfg::Op;
        let group_of = |op: Op| -> usize {
            match op {
                Op::Input(_) => 0,
                Op::Const(_) => 1,
                Op::Add | Op::Sub | Op::Neg => 2,
                Op::Mul => 3,
                Op::Div => 4,
                Op::Delay => 5,
            }
        };
        let groups: Vec<usize> = self.dfg.nodes().map(|(_, n)| group_of(n.op())).collect();
        let n_groups = 6;
        let mut gw = vec![start_w.min(self.bounds.max); n_groups];
        let expand = |gw: &[u8], this: &Self| -> Vec<u8> {
            groups
                .iter()
                .enumerate()
                .map(|(i, &g)| gw[g].clamp(this.min_w[i], this.bounds.max))
                .collect()
        };
        let mut w = expand(&gw, self);
        let mut ev = self.evaluator(&w)?;
        let start_noise = ev.power();
        if start_noise > budget {
            return Err(OptError::Infeasible {
                budget,
                best_noise: start_noise,
            });
        }
        let mut scratch = self.proxy_scratch();
        let limited = !self.exec_budget.is_unlimited();
        loop {
            // One checkpoint per trim round — each round walks the
            // evaluator across every group, so rounds are coarse enough
            // that an unstrided check costs nothing.
            if limited {
                self.exec_budget.check()?;
            }
            let mut best: Option<(f64, usize)> = None;
            let current_proxy = self.proxy_cost_with(&w, &mut scratch);
            for g in 0..n_groups {
                if gw[g] == 0 {
                    continue;
                }
                let mut trial = gw.clone();
                trial[g] -= 1;
                let tw = expand(&trial, self);
                if tw == w {
                    continue; // clamped away: no actual change
                }
                // Group moves are a handful of coordinate deltas: walk the
                // evaluator there and back instead of re-evaluating from
                // scratch.
                let noise = ev.set_vector(&tw)?;
                let feasible = noise <= budget;
                let gain = if feasible {
                    current_proxy - self.proxy_cost_with(&tw, &mut scratch)
                } else {
                    0.0
                };
                ev.set_vector(&w)?;
                if !feasible {
                    continue;
                }
                if gain > 0.0 && best.as_ref().map(|(bg, _)| gain > *bg).unwrap_or(true) {
                    best = Some((gain, g));
                }
            }
            match best {
                Some((_, g)) => {
                    gw[g] -= 1;
                    w = expand(&gw, self);
                    ev.set_vector(&w)?;
                }
                None => return self.evaluate(w),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    fn small_design() -> (Dfg, Vec<Interval>) {
        // y = 0.3·x1 + 0.6·x2 + 0.05·x3
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let x3 = b.input("x3");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let t3 = b.mul_const(0.05, x3);
        let s1 = b.add(t1, t2);
        let y = b.add(s1, t3);
        b.output("y", y);
        (
            b.build().unwrap(),
            vec![iv(-1.0, 1.0), iv(-1.0, 1.0), iv(-1.0, 1.0)],
        )
    }

    #[test]
    fn uniform_reference_is_feasible_and_monotone() {
        let (g, r) = small_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let e8 = opt.uniform(8).unwrap();
        let e16 = opt.uniform(16).unwrap();
        assert!(e16.noise_power < e8.noise_power);
        assert!(e16.cost.area_um2 > e8.cost.area_um2);
        // Noise drops ~2^-2W: 8 extra bits ⇒ ×≈1/65536; allow slack for
        // the coefficient-rounding terms.
        assert!(e8.noise_power / e16.noise_power > 1.0e3);
    }

    #[test]
    fn exhaustive_beats_or_matches_uniform() {
        let (g, r) = small_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(10).unwrap();
        let best = opt
            .exhaustive(fixed.noise_power, 10, 1, 10_000_000)
            .unwrap();
        assert!(best.noise_power <= fixed.noise_power * (1.0 + 1e-12));
        let fixed_proxy = opt.proxy_cost(&fixed.word_lengths);
        let best_proxy = opt.proxy_cost(&best.word_lengths);
        assert!(best_proxy <= fixed_proxy + 1e-9);
    }

    #[test]
    fn exhaustive_respects_cap() {
        let (g, r) = small_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        assert!(matches!(
            opt.exhaustive(1.0, 10, 4, 10),
            Err(OptError::SearchSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn group_greedy_meets_budget() {
        let (g, r) = small_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(10).unwrap();
        let grouped = opt.group_greedy(fixed.noise_power, 18).unwrap();
        assert!(grouped.noise_power <= fixed.noise_power * (1.0 + 1e-12));
    }

    #[test]
    fn infeasible_budget_is_reported() {
        let (g, r) = small_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        assert!(matches!(
            opt.group_greedy(1e-300, 12),
            Err(OptError::Infeasible { .. })
        ));
    }

    #[test]
    fn nonlinear_combinational_uses_the_histogram_fallback() {
        // y = x·x + 0.5·x — nonlinear, so the NA model cannot build; the
        // optimizer must still work via DfgEngine noise evaluation.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let sq = b.mul(x, x);
        let t = b.mul_const(0.5, x);
        let y = b.add(sq, t);
        b.output("y", y);
        let g = b.build().unwrap();
        let r = vec![iv(-1.0, 1.0)];
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        assert!(opt.na_model().is_none());
        let fixed = opt.uniform(10).unwrap();
        assert!(fixed.noise_power > 0.0);
        let tuned = opt.greedy(fixed.noise_power, 14).unwrap();
        assert!(tuned.noise_power <= fixed.noise_power * (1.0 + 1e-12));
        let fixed_proxy = opt.proxy_cost(&fixed.word_lengths);
        let tuned_proxy = opt.proxy_cost(&tuned.word_lengths);
        assert!(tuned_proxy <= fixed_proxy * (1.0 + 1e-9));
    }

    #[test]
    fn nonlinear_sequential_still_errors() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let sq = b.mul(fb, fb);
        let scaled = b.mul_const(0.1, sq);
        let y = b.add(x, scaled);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let r = vec![iv(-0.5, 0.5)];
        assert!(Optimizer::new(&g, &r, SynthesisConstraints::default()).is_err());
    }

    #[test]
    fn from_session_matches_standalone_construction() {
        let (g, r) = small_design();
        let session = Session::new(g.clone(), r.clone()).unwrap();
        let shared = Optimizer::from_session(&session, SynthesisConstraints::default()).unwrap();
        let standalone = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        // The session's model is reused, not rebuilt.
        assert_eq!(session.stats().na_builds, 1);
        let w = shared.uniform_vector(10);
        assert_eq!(
            shared.noise_of(&w).unwrap().to_bits(),
            standalone.noise_of(&w).unwrap().to_bits()
        );
        let a = shared
            .greedy(shared.uniform(10).unwrap().noise_power, 14)
            .unwrap();
        let b = standalone
            .greedy(standalone.uniform(10).unwrap().noise_power, 14)
            .unwrap();
        assert_eq!(a.word_lengths, b.word_lengths);
        assert_eq!(a.noise_power.to_bits(), b.noise_power.to_bits());
    }

    #[test]
    fn session_evaluators_share_one_histogram_memo() {
        // Nonlinear: y = x·x (histogram fallback).
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let sq = b.mul(x, x);
        b.output("y", sq);
        let g = b.build().unwrap();
        let r = vec![iv(-1.0, 1.0)];
        let session = Session::new(g, r).unwrap();
        let opt = Optimizer::from_session(&session, SynthesisConstraints::default()).unwrap();
        assert!(opt.na_model().is_none());
        let start = opt.uniform_vector(12);

        let mut ev1 = opt.evaluator(&start).unwrap();
        let p1 = ev1.probe(0, 10).unwrap();
        let populated = session.hist_memo().len();
        assert!(populated > 0, "first evaluator feeds the shared memo");

        // A second evaluator (as a parallel search thread would create)
        // replays the same probe entirely from the shared memo.
        let mut ev2 = opt.evaluator(&start).unwrap();
        let before = session.hist_memo().len();
        let p2 = ev2.probe(0, 10).unwrap();
        assert_eq!(p1.to_bits(), p2.to_bits());
        assert_eq!(
            session.hist_memo().len(),
            before,
            "replayed probe added no new states"
        );
    }

    #[test]
    fn pre_cancelled_exec_budget_stops_every_search() {
        use crate::AnnealOptions;
        let (g, r) = small_design();
        let plain = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = plain.uniform(10).unwrap();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default())
            .unwrap()
            .with_exec_budget(Budget::pre_cancelled());
        let cancelled = |res: Result<Evaluation, OptError>| {
            assert!(
                matches!(res, Err(OptError::Sna(sna_core::SnaError::Cancelled))),
                "expected a cancellation"
            );
        };
        cancelled(opt.exhaustive(fixed.noise_power, 10, 1, 10_000_000));
        cancelled(opt.group_greedy(fixed.noise_power, 18));
        cancelled(opt.anneal(fixed.noise_power, 14, &AnnealOptions::default()));
    }

    #[test]
    fn overrun_deadline_surfaces_as_deadline_exceeded() {
        let (g, r) = small_design();
        let plain = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = plain.uniform(10).unwrap();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default())
            .unwrap()
            .with_exec_budget(Budget::with_timeout(std::time::Duration::ZERO));
        match opt.exhaustive(fixed.noise_power, 10, 1, 10_000_000) {
            Err(OptError::Sna(e)) => {
                assert_eq!(e.to_string(), "deadline exceeded");
            }
            other => panic!("expected a deadline error, got {other:?}"),
        }
    }

    #[test]
    fn generous_exec_budget_is_bit_identical_to_unlimited() {
        let (g, r) = small_design();
        let plain = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = plain.uniform(10).unwrap();
        let best = plain
            .exhaustive(fixed.noise_power, 10, 1, 10_000_000)
            .unwrap();
        let budgeted = Optimizer::new(&g, &r, SynthesisConstraints::default())
            .unwrap()
            .with_exec_budget(Budget::with_timeout(std::time::Duration::from_secs(3600)));
        let best_b = budgeted
            .exhaustive(fixed.noise_power, 10, 1, 10_000_000)
            .unwrap();
        assert_eq!(best.word_lengths, best_b.word_lengths);
        assert_eq!(best.noise_power.to_bits(), best_b.noise_power.to_bits());
    }

    #[test]
    fn min_word_lengths_fit_ranges() {
        let (g, r) = small_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        for (i, &m) in opt.min_word_lengths().iter().enumerate() {
            assert!(
                sna_fixp::Format::from_range(opt.node_ranges[i], m).is_ok(),
                "node {i} min {m}"
            );
        }
    }
}
