//! Greedy bit-trimming: the paper's main optimization loop.
//!
//! Start from a deliberately wide configuration (noise far below budget)
//! and repeatedly remove the single bit with the best cost-saving per unit
//! of noise added, while the budget holds.  Mixed word-length solutions
//! emerge naturally: bits survive only where the noise transfer gain makes
//! them worth their area.

use crate::{Evaluation, NoiseEval, OptError, Optimizer};

impl Optimizer<'_> {
    /// Greedy descent under a noise budget, starting from the uniform
    /// width `start_w` (clamped per node).
    ///
    /// # Errors
    ///
    /// [`OptError::Infeasible`] when even the starting configuration
    /// exceeds the budget (try a larger `start_w`); evaluation failures
    /// are propagated.
    pub fn greedy(&self, budget: f64, start_w: u8) -> Result<Evaluation, OptError> {
        let mut w = self.uniform_vector(start_w);
        let mut ev = self.evaluator(&w)?;
        let start_noise = ev.power();
        if start_noise > budget {
            return Err(OptError::Infeasible {
                budget,
                best_noise: start_noise,
            });
        }
        // Analytic per-node sensitivities make the move ranking
        // noise-aware without per-candidate noise evaluations.
        let sens = self.sensitivities_with(&mut ev)?;
        let mut scratch = self.proxy_scratch();
        loop {
            // Rank candidate single-bit trims by proxy gain per unit of
            // estimated noise increase; spend exact noise evaluations only
            // to find the best feasible one.
            let current_proxy = self.proxy_cost_with(&w, &mut scratch);
            let mut cands: Vec<(f64, usize)> = Vec::with_capacity(w.len());
            for i in 0..w.len() {
                if w[i] <= self.min_w[i] {
                    continue;
                }
                w[i] -= 1;
                let gain = current_proxy - self.proxy_cost_with(&w, &mut scratch);
                w[i] += 1;
                if gain > 0.0 {
                    let dn_est = 3.0 * sens[i] * 4f64.powi(-(w[i] as i32));
                    cands.push((gain / dn_est.max(1e-300), i));
                }
            }
            cands.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
            let mut accepted = false;
            for &(_, i) in &cands {
                if ev.set(i, w[i] - 1)? <= budget {
                    w[i] -= 1;
                    accepted = true;
                    break;
                }
                ev.undo();
            }
            if !accepted {
                break;
            }
        }
        // Escape the single-move local optimum with compensating pairs:
        // widen one node (buying noise headroom on a sensitive path) to
        // narrow another (cashing it in where bits are cheap).
        let trimmed_only = w.clone();
        self.refine_pairs(budget, &mut w, &mut ev)?;
        // Pick the best candidate by *real* synthesized weighted cost: the
        // refined configuration, the purely-trimmed one (pair refinement
        // trades proxy terms that the binder may model differently), and
        // the best feasible uniform.
        let mut best = self.evaluate(w)?;
        if trimmed_only != best.word_lengths {
            let e = self.evaluate(trimmed_only)?;
            if e.weighted_cost < best.weighted_cost {
                best = e;
            }
        }
        if let Some(uniform) = self.best_feasible_uniform(budget, start_w)? {
            if uniform != best.word_lengths {
                let e = self.evaluate(uniform)?;
                if e.weighted_cost < best.weighted_cost {
                    best = e;
                }
            }
        }
        Ok(best)
    }

    /// Local search over `(+1 on j, −1 on i…)` move pairs, guided by the
    /// analytic sensitivities: widening a *high*-sensitivity node buys the
    /// most noise headroom per bit, which is then spent narrowing
    /// *low*-sensitivity nodes.  Each accepted pair strictly reduces the
    /// proxy while keeping the budget, so the search terminates.
    ///
    /// `ev` must be positioned at `w`; it tracks every move and ends
    /// positioned at the refined `w`.
    fn refine_pairs(
        &self,
        budget: f64,
        w: &mut [u8],
        ev: &mut NoiseEval<'_>,
    ) -> Result<(), OptError> {
        let n = w.len();
        let sens = self.sensitivities_with(ev)?;
        let mut scratch = self.proxy_scratch();
        // Proposal shortlists, refreshed each round.
        let k = 24.min(n);
        let max_rounds = 16 * n;
        let mut eval_budget: u64 = 200_000;
        for _ in 0..max_rounds {
            let current = self.proxy_cost_with(w, &mut scratch);
            // j candidates: most noise headroom freed per +1 bit.
            let mut js: Vec<usize> = (0..n).filter(|&j| w[j] < self.bounds.max).collect();
            js.sort_by(|&a, &b| {
                let ha = sens[a] * 4f64.powi(-(w[a] as i32));
                let hb = sens[b] * 4f64.powi(-(w[b] as i32));
                hb.partial_cmp(&ha).expect("finite headroom")
            });
            js.truncate(k);
            // i candidates: cheapest noise per trimmed bit.
            let mut is: Vec<usize> = (0..n).filter(|&i| w[i] > self.min_w[i]).collect();
            is.sort_by(|&a, &b| {
                let na = sens[a] * 4f64.powi(-(w[a] as i32));
                let nb = sens[b] * 4f64.powi(-(w[b] as i32));
                na.partial_cmp(&nb).expect("finite noise")
            });
            is.truncate(k);

            let mut improved = false;
            'outer: for &j in &js {
                w[j] += 1;
                ev.set(j, w[j])?;
                for &i in &is {
                    if i == j || w[i] <= self.min_w[i] {
                        continue;
                    }
                    // Narrow i as far as the budget allows in one go.
                    let original = w[i];
                    let mut accepted = false;
                    while w[i] > self.min_w[i] {
                        if eval_budget == 0 {
                            // Out of evaluations: roll back and stop.
                            if w[i] != original {
                                w[i] = original;
                                ev.set(i, original)?;
                            }
                            w[j] -= 1;
                            ev.set(j, w[j])?;
                            return Ok(());
                        }
                        eval_budget -= 1;
                        if ev.set(i, w[i] - 1)? > budget {
                            ev.undo();
                            break;
                        }
                        w[i] -= 1;
                        accepted = true;
                    }
                    if accepted && self.proxy_cost_with(w, &mut scratch) < current {
                        improved = true;
                        break 'outer;
                    }
                    if w[i] != original {
                        w[i] = original;
                        ev.set(i, original)?;
                    }
                }
                w[j] -= 1;
                ev.set(j, w[j])?;
            }
            if !improved {
                return Ok(());
            }
        }
        Ok(())
    }

    /// The narrowest uniform configuration meeting the budget, if any
    /// exists at or below `start_w`.
    fn best_feasible_uniform(&self, budget: f64, start_w: u8) -> Result<Option<Vec<u8>>, OptError> {
        let mut best = None;
        for w in (self.bounds.min..=start_w).rev() {
            let v = self.uniform_vector(w);
            if self.noise_of(&v)? <= budget {
                best = Some(v);
            } else {
                break; // noise is monotone in w: narrower only gets worse
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use crate::Optimizer;
    use sna_dfg::{Dfg, DfgBuilder};
    use sna_hls::SynthesisConstraints;
    use sna_interval::Interval;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    /// A design with wildly different path gains: noise through `hot` is
    /// amplified ×64, noise through `cold` is attenuated ×1/64 — exactly
    /// the situation where mixed word lengths beat uniform ones.
    fn skewed_design() -> (Dfg, Vec<Interval>) {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let hot = b.mul_const(0.9, x1);
        let cold = b.mul_const(0.9, x2);
        let hot2 = b.mul_const(0.2, hot);
        let cold2 = b.mul_const(0.01, cold);
        let y = b.add(hot2, cold2);
        b.output("y", y);
        (b.build().unwrap(), vec![iv(-1.0, 1.0), iv(-1.0, 1.0)])
    }

    #[test]
    fn greedy_meets_budget_and_beats_uniform_proxy() {
        let (g, r) = skewed_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(12).unwrap();
        let tuned = opt.greedy(fixed.noise_power, 20).unwrap();
        assert!(tuned.noise_power <= fixed.noise_power * (1.0 + 1e-12));
        // The cost proxy (move-ranking metric) must improve on uniform.
        let fixed_proxy = opt.proxy_cost(&fixed.word_lengths);
        let tuned_proxy = opt.proxy_cost(&tuned.word_lengths);
        assert!(
            tuned_proxy <= fixed_proxy,
            "tuned {tuned_proxy} vs fixed {fixed_proxy}"
        );
    }

    #[test]
    fn greedy_with_slack_never_loses_to_uniform() {
        // With headroom above the uniform reference, the result must be at
        // least as cheap as every feasible uniform configuration (mixing is
        // design-dependent; see the FIR-like test below for that).
        let (g, r) = skewed_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(12).unwrap();
        let budget = 4.0 * fixed.noise_power;
        let tuned = opt.greedy(budget, 20).unwrap();
        assert!(tuned.noise_power <= budget * (1.0 + 1e-12));
        // Direct comparison against the uniform reference itself.
        assert!(opt.proxy_cost(&tuned.word_lengths) <= opt.proxy_cost(&fixed.word_lengths));
    }

    #[test]
    fn greedy_exploits_structural_gain_asymmetry() {
        // Noise injected before the 0.01 attenuator reaches the output
        // 10⁴× weaker (in power) than noise injected next to it — nodes in
        // the attenuated subtree can go very narrow.
        //   y = 0.01·(x1 + x2) + (x3 + x4)
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let x3 = b.input("x3");
        let x4 = b.input("x4");
        let quiet = b.add(x1, x2);
        let attenuated = b.mul_const(0.01, quiet);
        let loud = b.add(x3, x4);
        let y = b.add(attenuated, loud);
        b.output("y", y);
        let g = b.build().unwrap();
        let r = vec![iv(-1.0, 1.0); 4];
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let fixed = opt.uniform(12).unwrap();
        let tuned = opt.greedy(fixed.noise_power, 20).unwrap();
        assert!(tuned.noise_power <= fixed.noise_power * (1.0 + 1e-12));
        assert!(
            tuned.weighted_cost < fixed.weighted_cost,
            "structural asymmetry should beat uniform on real cost: {} vs {} ({:?})",
            tuned.weighted_cost,
            fixed.weighted_cost,
            tuned.word_lengths
        );
        // The attenuated inputs run narrower than the loud-path inputs.
        let quiet_w = tuned.word_lengths[x1.index()];
        let loud_w = tuned.word_lengths[x3.index()];
        assert!(
            quiet_w <= loud_w,
            "quiet input {quiet_w} should not exceed loud input {loud_w}: {:?}",
            tuned.word_lengths
        );
        let _ = (quiet, loud, x2, x4, y);
    }

    #[test]
    fn infeasible_start_is_reported() {
        let (g, r) = skewed_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        assert!(opt.greedy(1e-300, 20).is_err());
    }

    #[test]
    fn looser_budget_gives_cheaper_designs() {
        let (g, r) = skewed_design();
        let opt = Optimizer::new(&g, &r, SynthesisConstraints::default()).unwrap();
        let tight = opt.uniform(16).unwrap().noise_power;
        let loose = opt.uniform(8).unwrap().noise_power;
        let a = opt.greedy(tight, 20).unwrap();
        let b = opt.greedy(loose, 20).unwrap();
        assert!(opt.proxy_cost(&b.word_lengths) <= opt.proxy_cost(&a.word_lengths));
    }
}
