//! Resumable Pareto design-space exploration.
//!
//! [`pareto_explore`] sweeps the word-length design space along two
//! axes — a geometric ladder of noise budgets and the three unit cost
//! objectives (area, power, latency) — running one deterministic
//! noise-constrained search per (budget, objective) candidate and
//! folding every result into a canonical Pareto front over
//! (area, power, latency, noise).
//!
//! The sweep is built to survive being killed:
//!
//! * candidates are processed in **blocks** of
//!   [`ParetoSweepSpec::checkpoint_every`]; inside a block they fan out
//!   over scoped threads, but results are merged in candidate order, so
//!   the frontier after each block is independent of the thread count;
//! * after each block the cursor and the frontier's word-length vectors
//!   are checkpointed to a [`sna_store::Store`] (kind
//!   [`CKPT_KIND`]), keyed by a hash of the full sweep identity —
//!   graph shape *and* constants, input ranges, and every spec knob;
//! * a later call with the same session and spec **resumes** from the
//!   checkpoint: stored word-length vectors are re-evaluated (synthesis
//!   and noise evaluation are deterministic), the remaining candidates
//!   run, and because [`crate::pareto_front`] is a pure function of the
//!   point *set*, the resumed frontier is bit-identical to an
//!   uninterrupted run's.
//!
//! A corrupt, truncated or foreign checkpoint is discarded and the
//! sweep starts cold — never a panic, never a wrong frontier.

use sna_core::Session;
use sna_hls::SynthesisConstraints;
use sna_store::{Store, WireError, WireReader, WireWriter};

use crate::pareto::{canonical_cmp, dominates};
use crate::{Evaluation, OptError, Optimizer};

/// Store object kind under which sweep checkpoints live.
pub const CKPT_KIND: &str = "pareto-ckpt";

/// The unit cost objective a sweep candidate minimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepObjective {
    /// Minimize area (µm²) under the noise budget.
    Area,
    /// Minimize power (µW) under the noise budget.
    Power,
    /// Minimize latency (cycles) under the noise budget.
    Latency,
}

impl SweepObjective {
    /// All objectives, in candidate order.
    pub const ALL: [SweepObjective; 3] = [
        SweepObjective::Area,
        SweepObjective::Power,
        SweepObjective::Latency,
    ];

    /// Stable display name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SweepObjective::Area => "area",
            SweepObjective::Power => "power",
            SweepObjective::Latency => "latency",
        }
    }

    fn weights(self) -> crate::CostWeights {
        let mut w = crate::CostWeights {
            area: 0.0,
            power: 0.0,
            latency: 0.0,
        };
        match self {
            SweepObjective::Area => w.area = 1.0,
            SweepObjective::Power => w.power = 1.0,
            SweepObjective::Latency => w.latency = 1.0,
        }
        w
    }

    fn tag(self) -> u8 {
        match self {
            SweepObjective::Area => 0,
            SweepObjective::Power => 1,
            SweepObjective::Latency => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<SweepObjective> {
        SweepObjective::ALL.into_iter().find(|o| o.tag() == tag)
    }
}

/// Shape of a Pareto sweep: which designs are visited and how often the
/// frontier is checkpointed.  Every field is part of the checkpoint
/// identity — changing any knob starts a fresh sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParetoSweepSpec {
    /// Uniform width whose noise sets the *loosest* budget.
    pub w_lo: u8,
    /// Uniform width whose noise sets the *tightest* budget; also the
    /// per-candidate search start.
    pub w_hi: u8,
    /// Number of noise budgets on the geometric ladder.
    pub noise_points: usize,
    /// Candidates per checkpointed block.
    pub checkpoint_every: usize,
    /// Worker threads per block (`0` = available parallelism).  Not
    /// part of the result: any thread count produces the same frontier.
    pub threads: usize,
}

impl Default for ParetoSweepSpec {
    fn default() -> Self {
        ParetoSweepSpec {
            w_lo: 6,
            w_hi: 14,
            noise_points: 8,
            checkpoint_every: 6,
            threads: 0,
        }
    }
}

/// One point of the swept frontier.
#[derive(Clone, Debug)]
pub struct FrontPoint {
    /// The unit objective whose search produced the point.
    pub objective: SweepObjective,
    /// The full evaluation (widths, cost report, noise).
    pub eval: Evaluation,
}

/// Result of [`pareto_explore`].
#[derive(Debug)]
pub struct ParetoOutcome {
    /// The non-dominated set, in canonical order.
    pub frontier: Vec<FrontPoint>,
    /// Total candidates in the sweep.
    pub total: usize,
    /// Candidates evaluated by *this* call.
    pub evaluated: usize,
    /// Cursor restored from a store checkpoint (`0` = cold start).
    pub resumed_at: usize,
    /// Checkpoints written by this call.
    pub checkpoints: usize,
}

/// The canonical Pareto filter over tagged points: same order and
/// semantics as [`crate::pareto_front`], with the objective tag as the
/// final tiebreak so duplicate configurations collapse
/// deterministically (lowest tag survives).
fn front_tagged(mut points: Vec<(u8, Evaluation)>) -> Vec<(u8, Evaluation)> {
    points.sort_by(|a, b| canonical_cmp(&a.1, &b.1).then(a.0.cmp(&b.0)));
    points.dedup_by(|a, b| canonical_cmp(&a.1, &b.1) == std::cmp::Ordering::Equal);
    let mut kept: Vec<(u8, Evaluation)> = Vec::new();
    'points: for p in points {
        for k in &kept {
            if dominates(&k.1, &p.1) {
                continue 'points;
            }
        }
        kept.push(p);
    }
    kept
}

/// The full identity of a sweep: graph shape, constants, input ranges
/// and every spec knob except the (result-neutral) thread count.  The
/// checkpoint key is this text's FNV-1a hash; the text itself rides in
/// the payload so a key collision reads as a miss, never as a wrong
/// resume.
fn spec_text(session: &Session, spec: &ParetoSweepSpec) -> String {
    use std::fmt::Write;
    let mut out = session.dfg().shape_signature();
    for c in session.dfg().const_values() {
        let _ = writeln!(out, "c {:016x}", c.to_bits());
    }
    for r in session.input_ranges() {
        let _ = writeln!(out, "r {:016x} {:016x}", r.lo().to_bits(), r.hi().to_bits());
    }
    let _ = writeln!(
        out,
        "sweep w {}..{} k {} block {}",
        spec.w_lo, spec.w_hi, spec.noise_points, spec.checkpoint_every
    );
    out
}

fn encode_checkpoint(
    text: &str,
    total: usize,
    cursor: usize,
    frontier: &[(u8, Evaluation)],
) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.str(text);
    w.u64(total as u64);
    w.u64(cursor as u64);
    w.len(frontier.len());
    for (tag, e) in frontier {
        w.u8(*tag);
        w.bytes(&e.word_lengths);
    }
    w.finish()
}

/// Decoded checkpoint body: candidate cursor plus (objective tag,
/// widths) per frontier point.
type CheckpointBody = (usize, Vec<(u8, Vec<u8>)>);

fn decode_checkpoint(
    bytes: &[u8],
    text: &str,
    total: usize,
    n_nodes: usize,
) -> Result<Option<CheckpointBody>, WireError> {
    let mut r = WireReader::new(bytes);
    if r.str()? != text {
        // A different sweep's checkpoint under a colliding key: not
        // corruption, just not ours.
        return Ok(None);
    }
    if r.u64()? != total as u64 {
        return Err(WireError::new("candidate count mismatch"));
    }
    let cursor = usize::try_from(r.u64()?).map_err(|_| WireError::new("cursor"))?;
    if cursor > total {
        return Err(WireError::new("cursor out of range"));
    }
    let n = r.read_count(9)?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u8()?;
        if SweepObjective::from_tag(tag).is_none() {
            return Err(WireError::new(format!("bad objective tag {tag}")));
        }
        let widths = r.bytes()?;
        if widths.len() != n_nodes {
            return Err(WireError::new("width vector length mismatch"));
        }
        points.push((tag, widths));
    }
    r.expect_end()?;
    Ok(Some((cursor, points)))
}

/// Sweeps the design space and returns the Pareto frontier, resuming
/// from (and checkpointing to) `store` when one is given.
///
/// Candidates are `noise_points` geometric noise budgets — spanning the
/// noise of the uniform `w_hi` design (tight) to the uniform `w_lo`
/// design (loose) — crossed with the three unit objectives; each runs
/// the deterministic grouped-greedy search from `w_hi`.  The frontier
/// and its order depend only on the candidate *set*, so thread counts,
/// checkpoint boundaries and kill/resume cycles cannot change the
/// result.
///
/// # Errors
///
/// Spec validation, noise-model, synthesis and configuration failures
/// are propagated.  Store I/O failures while *writing* checkpoints are
/// ignored (the sweep still completes); unreadable checkpoints degrade
/// to a cold start.
pub fn pareto_explore(
    session: &Session,
    constraints: SynthesisConstraints,
    spec: &ParetoSweepSpec,
    store: Option<&Store>,
) -> Result<ParetoOutcome, OptError> {
    if spec.noise_points == 0 || spec.checkpoint_every == 0 || spec.w_lo > spec.w_hi {
        return Err(OptError::InvalidSweepSpec {
            w_lo: spec.w_lo,
            w_hi: spec.w_hi,
            noise_points: spec.noise_points,
            checkpoint_every: spec.checkpoint_every,
        });
    }
    let mut optimizers = Vec::with_capacity(SweepObjective::ALL.len());
    for obj in SweepObjective::ALL {
        optimizers.push(
            Optimizer::from_session(session, constraints.clone())?.with_weights(obj.weights()),
        );
    }
    let optimizers = &optimizers;

    // The budget ladder: geometric between the tight (wide design) and
    // loose (narrow design) uniform noise levels, linear fallback if a
    // degenerate model yields non-positive noise.
    let n_tight = optimizers[0].noise_of(&optimizers[0].uniform_vector(spec.w_hi))?;
    let n_loose = optimizers[0].noise_of(&optimizers[0].uniform_vector(spec.w_lo))?;
    let k = spec.noise_points;
    let budgets: Vec<f64> = (0..k)
        .map(|i| {
            let t = if k == 1 {
                0.0
            } else {
                i as f64 / (k - 1) as f64
            };
            // Exact endpoints: `exp(ln(x))` loses the last bits, and a
            // budget one ulp under the start design's own noise would
            // make the tightest candidate spuriously infeasible.
            if i == 0 {
                n_tight
            } else if i == k - 1 {
                n_loose
            } else if n_tight > 0.0 && n_loose > 0.0 {
                (n_tight.ln() * (1.0 - t) + n_loose.ln() * t).exp()
            } else {
                n_tight * (1.0 - t) + n_loose * t
            }
        })
        .collect();
    let budgets = &budgets;
    let total = k * SweepObjective::ALL.len();

    // One candidate: index → (objective, budget) → deterministic search.
    // An infeasible budget yields no point rather than failing the
    // sweep (cannot happen on the ladder above, but spec'd budgets may
    // later come from elsewhere).
    let objective_of = |c: usize| SweepObjective::ALL[c % SweepObjective::ALL.len()];
    let run_candidate = |c: usize| -> Result<Option<Evaluation>, OptError> {
        let obj = objective_of(c);
        let budget = budgets[c / SweepObjective::ALL.len()];
        match optimizers[obj.tag() as usize].group_greedy(budget, spec.w_hi) {
            Ok(e) => Ok(Some(e)),
            Err(OptError::Infeasible { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    };

    let text = spec_text(session, spec);
    let key = sna_store::fnv1a_64(text.as_bytes());
    let n_nodes = session.dfg().len();

    // Resume: re-evaluate the checkpointed widths (deterministic), or
    // start cold on any damage.
    let mut cursor = 0usize;
    let mut frontier: Vec<(u8, Evaluation)> = Vec::new();
    if let Some(store) = store {
        if let Some(payload) = store.get(CKPT_KIND, key) {
            match decode_checkpoint(&payload, &text, total, n_nodes) {
                Ok(Some((at, points))) => {
                    let mut restored = Vec::with_capacity(points.len());
                    let mut ok = true;
                    for (tag, widths) in points {
                        match optimizers[tag as usize].evaluate(widths) {
                            Ok(e) => restored.push((tag, e)),
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        cursor = at;
                        frontier = front_tagged(restored);
                    } else {
                        store.discard(CKPT_KIND, key);
                    }
                }
                Ok(None) => {}
                Err(_) => store.discard(CKPT_KIND, key),
            }
        }
    }

    let resumed_at = cursor;
    let mut checkpoints = 0usize;
    let workers_for = |n: usize| -> usize {
        let t = if spec.threads == 0 {
            crate::optimizer::default_threads()
        } else {
            spec.threads
        };
        t.clamp(1, 64).min(n.max(1))
    };

    while cursor < total {
        let hi = (cursor + spec.checkpoint_every).min(total);
        let workers = workers_for(hi - cursor);
        // Fan the block out, merge in candidate order (chunks are
        // contiguous, so concatenating chunk results preserves it).
        let block: Vec<Option<Evaluation>> = if workers == 1 {
            (cursor..hi)
                .map(run_candidate)
                .collect::<Result<_, OptError>>()?
        } else {
            let span = hi - cursor;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|t| {
                        let lo_t = cursor + span * t / workers;
                        let hi_t = cursor + span * (t + 1) / workers;
                        scope.spawn(move || {
                            (lo_t..hi_t)
                                .map(run_candidate)
                                .collect::<Result<Vec<_>, OptError>>()
                        })
                    })
                    .collect();
                let mut merged = Vec::with_capacity(span);
                for h in handles {
                    merged.extend(h.join().expect("sweep worker panicked")?);
                }
                Ok::<_, OptError>(merged)
            })?
        };
        for (c, eval) in (cursor..hi).zip(block) {
            if let Some(e) = eval {
                frontier.push((objective_of(c).tag(), e));
            }
        }
        frontier = front_tagged(frontier);
        cursor = hi;
        if let Some(store) = store {
            // Best-effort: a full disk must not fail the sweep.
            if store
                .put(
                    CKPT_KIND,
                    key,
                    &encode_checkpoint(&text, total, cursor, &frontier),
                )
                .is_ok()
            {
                checkpoints += 1;
            }
        }
    }

    Ok(ParetoOutcome {
        frontier: frontier
            .into_iter()
            .map(|(tag, eval)| FrontPoint {
                objective: SweepObjective::from_tag(tag).expect("tags are internal"),
                eval,
            })
            .collect(),
        total,
        evaluated: total - resumed_at,
        resumed_at,
        checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_interval::Interval;

    fn session() -> Session {
        // A 3-tap FIR: enough structure for the objectives to disagree.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let x1 = b.delay(x);
        let x2 = b.delay(x1);
        let t0 = b.mul_const(0.25, x);
        let t1 = b.mul_const(0.5, x1);
        let t2 = b.mul_const(0.25, x2);
        let s = b.add(t0, t1);
        let y = b.add(s, t2);
        b.output("y", y);
        Session::new(b.build().unwrap(), vec![Interval::new(-1.0, 1.0).unwrap()]).unwrap()
    }

    fn spec() -> ParetoSweepSpec {
        ParetoSweepSpec {
            w_lo: 6,
            w_hi: 12,
            noise_points: 3,
            checkpoint_every: 4,
            threads: 2,
        }
    }

    fn frontier_fingerprint(outcome: &ParetoOutcome) -> Vec<(u8, Vec<u8>, u64, u64)> {
        outcome
            .frontier
            .iter()
            .map(|p| {
                (
                    p.objective.tag(),
                    p.eval.word_lengths.clone(),
                    p.eval.noise_power.to_bits(),
                    p.eval.cost.area_um2.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_produces_a_nondominated_frontier() {
        let s = session();
        let outcome = pareto_explore(&s, SynthesisConstraints::default(), &spec(), None).unwrap();
        assert_eq!(outcome.total, 9);
        assert_eq!(outcome.evaluated, 9);
        assert_eq!(outcome.resumed_at, 0);
        assert!(!outcome.frontier.is_empty());
        for (i, a) in outcome.frontier.iter().enumerate() {
            for (j, b) in outcome.frontier.iter().enumerate() {
                if i != j {
                    assert!(!dominates(&a.eval, &b.eval));
                }
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_frontier() {
        let s = session();
        let mut serial = spec();
        serial.threads = 1;
        let mut wide = spec();
        wide.threads = 8;
        let a = pareto_explore(&s, SynthesisConstraints::default(), &serial, None).unwrap();
        let b = pareto_explore(&s, SynthesisConstraints::default(), &wide, None).unwrap();
        assert_eq!(frontier_fingerprint(&a), frontier_fingerprint(&b));
    }

    #[test]
    fn checkpointed_resume_is_bit_identical() {
        let s = session();
        let spec = spec();
        let dir = std::env::temp_dir().join(format!("sna-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();

        let uninterrupted =
            pareto_explore(&s, SynthesisConstraints::default(), &spec, None).unwrap();

        // Simulate a kill after the first checkpoint: run once with the
        // store, then *rewind* the checkpoint to its first-block state
        // by rewriting it from a truncated run. Easiest faithful way:
        // run a fresh sweep against an empty store but stop it by
        // making every candidate after the first block fail — instead,
        // just write the real first-block checkpoint by hand.
        let full =
            pareto_explore(&s, SynthesisConstraints::default(), &spec, Some(&store)).unwrap();
        assert!(full.checkpoints >= 2, "{full:?}");
        assert_eq!(
            frontier_fingerprint(&full),
            frontier_fingerprint(&uninterrupted)
        );

        // Resume from a *partial* checkpoint: reconstruct the cursor-4
        // state (first block only) and verify the resumed run matches
        // the uninterrupted frontier bit for bit.
        let text = spec_text(&s, &spec);
        let key = sna_store::fnv1a_64(text.as_bytes());
        let mut partial: Vec<(u8, Evaluation)> = Vec::new();
        {
            // Recompute the first block exactly as the sweep does.
            let mut one_block = spec;
            one_block.threads = 1;
            let constraints = SynthesisConstraints::default();
            let opts: Vec<Optimizer> = SweepObjective::ALL
                .iter()
                .map(|o| {
                    Optimizer::from_session(&s, constraints.clone())
                        .unwrap()
                        .with_weights(o.weights())
                })
                .collect();
            let n_tight = opts[0]
                .noise_of(&opts[0].uniform_vector(spec.w_hi))
                .unwrap();
            let n_loose = opts[0]
                .noise_of(&opts[0].uniform_vector(spec.w_lo))
                .unwrap();
            for c in 0..one_block.checkpoint_every {
                let i = c / 3;
                let t = i as f64 / (spec.noise_points - 1) as f64;
                let budget = match i {
                    0 => n_tight,
                    i if i == spec.noise_points - 1 => n_loose,
                    _ => (n_tight.ln() * (1.0 - t) + n_loose.ln() * t).exp(),
                };
                let e = opts[c % 3].group_greedy(budget, spec.w_hi).unwrap();
                partial.push(((c % 3) as u8, e));
            }
            partial = front_tagged(partial);
        }
        store
            .put(
                CKPT_KIND,
                key,
                &encode_checkpoint(&text, 9, spec.checkpoint_every, &partial),
            )
            .unwrap();
        let resumed =
            pareto_explore(&s, SynthesisConstraints::default(), &spec, Some(&store)).unwrap();
        assert_eq!(resumed.resumed_at, spec.checkpoint_every);
        assert_eq!(resumed.evaluated, 9 - spec.checkpoint_every);
        assert_eq!(
            frontier_fingerprint(&resumed),
            frontier_fingerprint(&uninterrupted)
        );

        // A *finished* checkpoint short-circuits the whole sweep.
        let warm =
            pareto_explore(&s, SynthesisConstraints::default(), &spec, Some(&store)).unwrap();
        assert_eq!(warm.evaluated, 0);
        assert_eq!(warm.resumed_at, 9);
        assert_eq!(
            frontier_fingerprint(&warm),
            frontier_fingerprint(&uninterrupted)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_degrade_to_a_cold_start() {
        let s = session();
        let spec = spec();
        let dir = std::env::temp_dir().join(format!("sna-sweep-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let text = spec_text(&s, &spec);
        let key = sna_store::fnv1a_64(text.as_bytes());

        // Schema-valid frame, garbage payload.
        store.put(CKPT_KIND, key, b"not a checkpoint").unwrap();
        let outcome =
            pareto_explore(&s, SynthesisConstraints::default(), &spec, Some(&store)).unwrap();
        assert_eq!(outcome.resumed_at, 0, "corrupt checkpoint must not resume");
        assert!(store.stats().corrupt >= 1);

        // A checkpoint for a *different* spec under our key: plain miss.
        let mut other = spec;
        other.noise_points += 1;
        let other_text = spec_text(&s, &other);
        store
            .put(CKPT_KIND, key, &encode_checkpoint(&other_text, 12, 12, &[]))
            .unwrap();
        let outcome =
            pareto_explore(&s, SynthesisConstraints::default(), &spec, Some(&store)).unwrap();
        assert_eq!(outcome.resumed_at, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let s = session();
        let mut bad = spec();
        bad.noise_points = 0;
        assert!(matches!(
            pareto_explore(&s, SynthesisConstraints::default(), &bad, None),
            Err(OptError::InvalidSweepSpec { .. })
        ));
        let mut bad = spec();
        bad.w_lo = 14;
        bad.w_hi = 6;
        assert!(matches!(
            pareto_explore(&s, SynthesisConstraints::default(), &bad, None),
            Err(OptError::InvalidSweepSpec { .. })
        ));
    }
}
