//! The shipped `examples/*.sna` sources must lower to graphs *equivalent*
//! to the hand-coded `sna_designs` builders: identical operation counts,
//! identical input ranges, and **bit-identical** simulation traces (the
//! `.sna` files carry shortest-round-trip literals and reproduce the
//! builders' operation trees, so `==` holds — no tolerances).

use sna_designs::Design;
use sna_dfg::Simulator;
use sna_lang::Lowered;

fn compile_example(name: &str) -> Lowered {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    match sna_lang::compile(&source) {
        Ok(lowered) => lowered,
        Err(diags) => panic!(
            "{name} does not compile:\n{}",
            sna_lang::render_all(&diags, &source, name)
        ),
    }
}

/// Deterministic input sequence in the design's input ranges (an LCG, so
/// both graphs see byte-identical stimuli).
fn stimuli(design: &Design, steps: usize) -> Vec<Vec<f64>> {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next01 = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..steps)
        .map(|_| {
            design
                .input_ranges
                .iter()
                .map(|r| r.lo() + next01() * (r.hi() - r.lo()))
                .collect()
        })
        .collect()
}

/// Number of *distinct* constant values (by bit pattern) in a graph —
/// what the lowerer's constant dedup leaves behind.
fn distinct_consts(dfg: &sna_dfg::Dfg) -> usize {
    dfg.nodes()
        .filter_map(|(_, n)| match n.op() {
            sna_dfg::Op::Const(v) => Some(v.to_bits()),
            _ => None,
        })
        .collect::<std::collections::HashSet<_>>()
        .len()
}

fn assert_equivalent(name: &str, lowered: &Lowered, design: &Design) {
    // The builders emit one `Const` per `mul_const` call; the lowerer
    // dedupes identical literals. Everything else must match exactly, and
    // the lowered constant count must equal the number of *distinct*
    // constants in the builder graph.
    let got = lowered.dfg.op_counts();
    let want = design.dfg.op_counts();
    assert_eq!(
        got.consts,
        distinct_consts(&design.dfg),
        "{name}: constant count is not the deduped builder count"
    );
    assert_eq!(got.consts, distinct_consts(&lowered.dfg));
    assert_eq!(
        (got.inputs, got.adds, got.subs, got.muls, got.divs, got.negs, got.delays),
        (
            want.inputs,
            want.adds,
            want.subs,
            want.muls,
            want.divs,
            want.negs,
            want.delays
        ),
        "{name}: operation counts differ"
    );
    assert_eq!(
        lowered.dfg.len(),
        design.dfg.len() - (want.consts - got.consts),
        "{name}: node count is not builder count minus deduped constants"
    );
    assert_eq!(
        lowered.input_ranges, design.input_ranges,
        "{name}: input ranges differ"
    );
    assert_eq!(
        lowered.dfg.outputs().len(),
        design.dfg.outputs().len(),
        "{name}: output counts differ"
    );
    for ((got, _), (want, _)) in lowered.dfg.outputs().iter().zip(design.dfg.outputs()) {
        assert_eq!(got, want, "{name}: output names differ");
    }

    let frames = stimuli(design, 100);
    let mut sim_lowered = Simulator::new(&lowered.dfg);
    let mut sim_design = Simulator::new(&design.dfg);
    for (step, frame) in frames.iter().enumerate() {
        let got = sim_lowered.step(frame).unwrap();
        let want = sim_design.step(frame).unwrap();
        assert_eq!(got, want, "{name}: traces diverge at step {step}");
    }
}

#[test]
fn fir_sna_matches_the_fir25_builder() {
    let lowered = compile_example("fir.sna");
    let design = sna_designs::fir25();
    assert_equivalent("fir.sna", &lowered, &design);
    let c = lowered.dfg.op_counts();
    assert_eq!((c.muls, c.adds, c.delays), (25, 24, 24));
}

#[test]
fn diffeq_sna_matches_the_diff_eq18_builder() {
    let lowered = compile_example("diffeq.sna");
    let design = sna_designs::diff_eq18();
    assert_equivalent("diffeq.sna", &lowered, &design);
    let c = lowered.dfg.op_counts();
    assert_eq!((c.muls, c.adds, c.delays), (19, 18, 18));
    assert!(!lowered.dfg.is_combinational());
    assert!(lowered.dfg.is_linear());
}

#[test]
fn quadratic_sna_matches_the_quadratic_builder() {
    let lowered = compile_example("quadratic.sna");
    let design = sna_designs::quadratic();
    assert_equivalent("quadratic.sna", &lowered, &design);
    assert!(!lowered.dfg.is_linear());
}

#[test]
fn rgb_sna_matches_the_rgb_to_ycrcb_builder() {
    let lowered = compile_example("rgb.sna");
    let design = sna_designs::rgb_to_ycrcb();
    assert_equivalent("rgb.sna", &lowered, &design);
    let c = lowered.dfg.op_counts();
    assert_eq!((c.muls, c.adds), (9, 8));
    assert_eq!(lowered.dfg.outputs().len(), 3);
}

#[test]
fn diffeq_sna_settles_to_unit_dc_gain() {
    // Sanity beyond equivalence: the textual filter is still the paper's
    // stable unit-DC-gain design.
    let lowered = compile_example("diffeq.sna");
    let mut sim = Simulator::new(&lowered.dfg);
    let mut last = 0.0;
    for _ in 0..2000 {
        last = sim.step(&[1.0]).unwrap()[0];
    }
    assert!((last - 1.0).abs() < 1e-6, "settled at {last}");
}
