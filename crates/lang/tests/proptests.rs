//! Property-based tests for the DSL pipeline.
//!
//! The central invariant is the round trip: pretty-printing a random
//! program and re-parsing it must reproduce the same canonical form, and
//! lowering both must produce structurally identical graphs with
//! bit-identical simulation traces.

use proptest::prelude::*;
use sna_lang::{
    canonical_fingerprint, compile, lower, parse, BinaryOp, Expr, ExprKind, Ident, IndexKind,
    InputRange, Program, Span, Stmt, UnaryOp,
};

// ----------------------------------------------------------------------
// Random program generation (seed-driven, so it composes with the
// proptest strategies without needing recursive combinators)
// ----------------------------------------------------------------------

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Dyadic rationals keep the printed forms short; any f64 would
    /// round-trip, this just keeps failure output readable.
    fn number(&mut self) -> f64 {
        (self.below(4001) as f64 - 2000.0) / 16.0
    }
}

fn ident(name: &str) -> Ident {
    Ident {
        name: name.to_string(),
        span: Span::default(),
    }
}

fn expr(kind: ExprKind) -> Expr {
    Expr {
        kind,
        span: Span::default(),
    }
}

/// What a random expression may reference: scalar names, *tappable*
/// scalar sources (`s[n-k]` sugar), and vector input banks (`v[i]`).
struct Scope {
    names: Vec<String>,
    /// Names whose delay chain the generator may tap (scalar inputs —
    /// always defined before use).
    tappable: Vec<String>,
    /// Vector banks as `(name, width)`.
    vectors: Vec<(String, usize)>,
}

/// A random expression over `scope`, with all six operators plus the
/// index forms reachable.
fn random_expr(g: &mut Gen, scope: &Scope, depth: usize) -> Expr {
    if depth == 0 || g.below(3) == 0 {
        // Leaves: literals, scalar refs, vector elements, tap indices.
        return match g.below(6) {
            0 | 1 => expr(ExprKind::Number(g.number())),
            2 if !scope.vectors.is_empty() => {
                let (name, width) = &scope.vectors[g.below(scope.vectors.len() as u64) as usize];
                expr(ExprKind::Index {
                    base: name.clone(),
                    index: IndexKind::Element(g.below(*width as u64) as usize),
                })
            }
            3 if !scope.tappable.is_empty() => {
                let name = &scope.tappable[g.below(scope.tappable.len() as u64) as usize];
                expr(ExprKind::Index {
                    base: name.clone(),
                    index: IndexKind::Tap(g.below(4) as usize),
                })
            }
            _ if !scope.names.is_empty() => {
                let k = g.below(scope.names.len() as u64) as usize;
                expr(ExprKind::Var(scope.names[k].clone()))
            }
            _ => expr(ExprKind::Number(g.number())),
        };
    }
    match g.below(6) {
        0..=3 => {
            let op = match g.below(4) {
                0 => BinaryOp::Add,
                1 => BinaryOp::Sub,
                2 => BinaryOp::Mul,
                _ => BinaryOp::Div,
            };
            let lhs = random_expr(g, scope, depth - 1);
            let rhs = random_expr(g, scope, depth - 1);
            expr(ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        }
        4 => {
            let operand = random_expr(g, scope, depth - 1);
            // `-literal` folds to a literal at parse time; fold here too
            // so printing stays canonical.
            if let ExprKind::Number(v) = operand.kind {
                expr(ExprKind::Number(-v))
            } else {
                expr(ExprKind::Unary {
                    op: UnaryOp::Neg,
                    operand: Box::new(operand),
                })
            }
        }
        _ => {
            let operand = random_expr(g, scope, depth - 1);
            expr(ExprKind::Unary {
                op: UnaryOp::Delay,
                operand: Box::new(operand),
            })
        }
    }
}

/// A random `[lo, hi]` pair with `lo < 0 < hi`.
fn random_range(g: &mut Gen) -> InputRange {
    InputRange {
        lo: -(1.0 + g.below(8) as f64) / 2.0,
        hi: (1.0 + g.below(8) as f64) / 2.0,
        span: Span::default(),
    }
}

/// A random well-formed program: scalar and vector inputs (some with
/// ranges), straight-line bindings (some with `range` override clauses,
/// some using tap-index sugar), optional `delay`-feedback, one or two
/// outputs.
fn random_program(seed: u64) -> Program {
    let mut g = Gen::new(seed);
    let mut stmts = Vec::new();
    let mut scope = Scope {
        names: Vec::new(),
        tappable: Vec::new(),
        vectors: Vec::new(),
    };

    let n_inputs = 1 + g.below(3) as usize;
    for k in 0..n_inputs {
        let name = format!("x{k}");
        let range = if g.below(2) == 0 {
            Some(random_range(&mut g))
        } else {
            None
        };
        stmts.push(Stmt::Input {
            name: ident(&name),
            width: None,
            range,
        });
        scope.tappable.push(name.clone());
        scope.names.push(name);
    }

    // Optionally a vector input bank.
    if g.below(2) == 0 {
        let width = 2 + g.below(3) as usize;
        let range = if g.below(2) == 0 {
            Some(random_range(&mut g))
        } else {
            None
        };
        stmts.push(Stmt::Input {
            name: ident("vec"),
            width: Some((width, Span::default())),
            range,
        });
        scope.vectors.push(("vec".into(), width));
    }

    // Optional feedback: a forward `delay` reference to the final `out`.
    let feedback = g.below(2) == 0;
    if feedback {
        stmts.push(Stmt::Let {
            name: ident("fb"),
            expr: expr(ExprKind::Unary {
                op: UnaryOp::Delay,
                operand: Box::new(expr(ExprKind::Var("out".into()))),
            }),
            range: None,
        });
        scope.names.push("fb".into());
    }

    let n_lets = g.below(5) as usize;
    for k in 0..n_lets {
        let name = format!("v{k}");
        let e = random_expr(&mut g, &scope, 3);
        // A `range` override clause needs a node of its own, which a
        // binary root always creates (aliases and shared literals are
        // rejected by lowering).
        let range = if matches!(e.kind, ExprKind::Binary { .. }) && g.below(3) == 0 {
            Some(random_range(&mut g))
        } else {
            None
        };
        // `v = w;` aliases are legal but print-canonical only when the
        // alias target is not itself renamed; keep them (they round-trip).
        stmts.push(Stmt::Let {
            name: ident(&name),
            expr: e,
            range,
        });
        scope.names.push(name);
    }

    // The mandatory output closes any feedback loop.
    let closing = random_expr(&mut g, &scope, 2);
    let closing = if feedback {
        // Keep the loop gain bounded so traces stay finite: out depends
        // on fb through a contracting multiply.
        expr(ExprKind::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(expr(ExprKind::Binary {
                op: BinaryOp::Mul,
                lhs: Box::new(expr(ExprKind::Number(0.25))),
                rhs: Box::new(expr(ExprKind::Var("fb".into()))),
            })),
            rhs: Box::new(closing),
        })
    } else {
        closing
    };
    let out_range = if matches!(closing.kind, ExprKind::Binary { .. }) && g.below(4) == 0 {
        Some(random_range(&mut g))
    } else {
        None
    };
    stmts.push(Stmt::Output {
        name: ident("out"),
        expr: Some(closing),
        range: out_range,
    });
    if g.below(2) == 0 {
        let e = random_expr(&mut g, &scope, 2);
        stmts.push(Stmt::Output {
            name: ident("out2"),
            expr: Some(e),
            range: None,
        });
    }
    Program { stmts }
}

/// Division can produce non-finite values or simulator errors (division
/// by zero); compare traces bit-for-bit and stop at the first error —
/// both graphs must fail identically.
fn trace_bits(dfg: &sna_dfg::Dfg, frames: &[Vec<f64>]) -> Vec<Result<Vec<u64>, String>> {
    let mut sim = sna_dfg::Simulator::new(dfg);
    let mut out = Vec::new();
    for frame in frames {
        match sim.step(frame) {
            Ok(values) => out.push(Ok(values.into_iter().map(f64::to_bits).collect())),
            Err(e) => {
                out.push(Err(e.to_string()));
                break;
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_printing_reaches_a_fixpoint_after_one_parse(seed in 0u64..1_000_000_000) {
        let program = random_program(seed);
        let printed = program.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical form does not parse: {e:?}\n{printed}"));
        prop_assert_eq!(reparsed.to_string(), printed.clone());
        // The canonical fingerprint is stable across the round trip …
        prop_assert_eq!(
            canonical_fingerprint(&program),
            canonical_fingerprint(&reparsed),
            "seed {}", seed
        );
        // … and a second parse reproduces the identical AST (spans
        // included: the canonical form *is* the parsed source now).
        let reparsed2 = parse(&reparsed.to_string()).expect("canonical form parses");
        prop_assert_eq!(reparsed2, reparsed, "seed {}", seed);
    }

    #[test]
    fn lowering_is_invariant_under_the_round_trip(seed in 0u64..1_000_000_000) {
        let program = random_program(seed);
        let printed = program.to_string();
        let original = lower(&program);
        let reparsed = compile(&printed);
        match (original, reparsed) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.dfg.op_counts(), b.dfg.op_counts(), "seed {}", seed);
                prop_assert_eq!(a.dfg.len(), b.dfg.len(), "seed {}", seed);
                prop_assert_eq!(&a.input_ranges, &b.input_ranges, "seed {}", seed);
                let mut g = Gen::new(seed ^ 0xdead_beef);
                let frames: Vec<Vec<f64>> = (0..20)
                    .map(|_| (0..a.dfg.n_inputs()).map(|_| g.number() / 100.0).collect())
                    .collect();
                prop_assert_eq!(
                    trace_bits(&a.dfg, &frames),
                    trace_bits(&b.dfg, &frames),
                    "seed {}",
                    seed
                );
            }
            (Err(ea), Err(eb)) => {
                // Both reject (e.g. a randomly-degenerate program): the
                // round trip must at least agree on rejection.
                prop_assert_eq!(ea.len(), eb.len(), "seed {}", seed);
            }
            (a, b) => panic!("seed {seed}: lowering disagreement: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn random_numbers_round_trip_exactly(bits in 0u64..u64::MAX) {
        // Any finite f64 literal printed canonically must re-parse to the
        // same bits (the foundation of the designs-equivalence tests).
        let v = f64::from_bits(bits);
        if v.is_finite() && v >= 0.0 {
            let src = format!("input x;\noutput y = x + {v};\n");
            let lowered = compile(&src).unwrap();
            let consts: Vec<f64> = lowered
                .dfg
                .nodes()
                .filter_map(|(_, n)| match n.op() {
                    sna_dfg::Op::Const(c) => Some(c),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(consts.len(), 1);
            prop_assert_eq!(consts[0].to_bits(), v.to_bits());
        }
    }
}
