//! Content fingerprints for compiled-model caching.
//!
//! A cache that keys on raw source bytes misses whenever two requests
//! differ only in whitespace or comments. The canonical pretty-printer
//! already normalizes both away, so hashing the canonical rendering gives
//! a *semantic* key: two sources that parse to the same program share one
//! fingerprint, and therefore one cached model.

use crate::ast::Program;
use crate::Diagnostic;

/// 64-bit FNV-1a. Small, dependency-free, and stable across runs and
/// platforms — exactly what an offline build can promise for cache keys.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The fingerprint of a parsed program: FNV-1a over its canonical
/// rendering. Whitespace- and comment-insensitive by construction.
#[must_use]
pub fn canonical_fingerprint(program: &Program) -> u64 {
    fnv1a_64(program.to_string().as_bytes())
}

/// Parses `source` and returns its canonical fingerprint.
///
/// # Errors
///
/// The parser's diagnostics, unchanged — a source that does not parse has
/// no canonical form to fingerprint.
pub fn source_fingerprint(source: &str) -> Result<u64, Vec<Diagnostic>> {
    Ok(canonical_fingerprint(&crate::parse(source)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Reference values of the FNV-1a 64-bit test suite.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn formatting_and_comments_do_not_change_the_fingerprint() {
        let a = "input x in [-1, 1];\ny = 0.5*x;\noutput y;\n";
        let b = "# a comment\ninput   x in [ -1 , 1 ];\n\n\ny = 0.5 * x; // same\noutput y;";
        assert_eq!(
            source_fingerprint(a).unwrap(),
            source_fingerprint(b).unwrap()
        );
    }

    #[test]
    fn different_programs_differ() {
        let a = source_fingerprint("input x;\noutput y = 0.5*x;\n").unwrap();
        let b = source_fingerprint("input x;\noutput y = 0.25*x;\n").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn parse_failures_surface_diagnostics() {
        assert!(source_fingerprint("input x;\ny = ;\n").is_err());
    }
}
