use std::fmt;

use crate::{Diagnostic, Span};

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token's kind (and payload, for identifiers and numbers).
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

/// The kinds of token in the `.sna` language.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier (not one of the keywords).
    Ident(String),
    /// A numeric literal (always finite).
    Number(f64),
    /// `input`
    KwInput,
    /// `output`
    KwOutput,
    /// `in`
    KwIn,
    /// `delay`
    KwDelay,
    /// `let`
    KwLet,
    /// `range`
    KwRange,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// End of input (always the last token).
    Eof,
}

impl TokenKind {
    /// Human-readable name used in "expected X, found Y" messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Number(v) => format!("number `{v}`"),
            TokenKind::KwInput => "keyword `input`".to_string(),
            TokenKind::KwOutput => "keyword `output`".to_string(),
            TokenKind::KwIn => "keyword `in`".to_string(),
            TokenKind::KwDelay => "keyword `delay`".to_string(),
            TokenKind::KwLet => "keyword `let`".to_string(),
            TokenKind::KwRange => "keyword `range`".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::Eq => "`=`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBracket => "`[`".to_string(),
            TokenKind::RBracket => "`]`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Semi => "`;`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Tokenizes `source`, returning the token stream (terminated by
/// [`TokenKind::Eof`]) or the lexical errors.
///
/// Comments run from `#` or `//` to the end of the line. Numbers are
/// unsigned decimal literals with optional fraction and exponent —
/// negative constants are produced by the parser's unary minus.
///
/// # Errors
///
/// One [`Diagnostic`] per unexpected character or malformed/overflowing
/// number literal.
pub fn lex(source: &str) -> Result<Vec<Token>, Vec<Diagnostic>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut errors = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => i = end_of_line(bytes, i),
            b'/' if bytes.get(i + 1) == Some(&b'/') => i = end_of_line(bytes, i),
            b'+' => i = punct(&mut tokens, TokenKind::Plus, i),
            b'-' => i = punct(&mut tokens, TokenKind::Minus, i),
            b'*' => i = punct(&mut tokens, TokenKind::Star, i),
            b'/' => i = punct(&mut tokens, TokenKind::Slash, i),
            b'=' => i = punct(&mut tokens, TokenKind::Eq, i),
            b'(' => i = punct(&mut tokens, TokenKind::LParen, i),
            b')' => i = punct(&mut tokens, TokenKind::RParen, i),
            b'[' => i = punct(&mut tokens, TokenKind::LBracket, i),
            b']' => i = punct(&mut tokens, TokenKind::RBracket, i),
            b',' => i = punct(&mut tokens, TokenKind::Comma, i),
            b';' => i = punct(&mut tokens, TokenKind::Semi, i),
            b'0'..=b'9' => {
                let start = i;
                i = scan_number(bytes, i);
                let text = &source[start..i];
                match text.parse::<f64>() {
                    Ok(v) if v.is_finite() => tokens.push(Token {
                        kind: TokenKind::Number(v),
                        span: Span::new(start, i),
                    }),
                    _ => errors.push(Diagnostic::new(
                        format!("number literal `{text}` does not fit a finite f64"),
                        Span::new(start, i),
                    )),
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                let kind = match text {
                    "input" => TokenKind::KwInput,
                    "output" => TokenKind::KwOutput,
                    "in" => TokenKind::KwIn,
                    "delay" => TokenKind::KwDelay,
                    "let" => TokenKind::KwLet,
                    "range" => TokenKind::KwRange,
                    _ => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token {
                    kind,
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Take one whole UTF-8 character for the error span.
                let ch_len = source[i..].chars().next().map_or(1, char::len_utf8);
                errors.push(Diagnostic::new(
                    format!("unexpected character `{}`", &source[i..i + ch_len]),
                    Span::new(i, i + ch_len),
                ));
                i += ch_len;
            }
        }
    }

    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::point(source.len()),
    });
    if errors.is_empty() {
        Ok(tokens)
    } else {
        Err(errors)
    }
}

fn punct(tokens: &mut Vec<Token>, kind: TokenKind, at: usize) -> usize {
    tokens.push(Token {
        kind,
        span: Span::new(at, at + 1),
    });
    at + 1
}

fn end_of_line(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

/// Scans `[0-9]+ ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?` starting at a digit.
fn scan_number(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_readme_example() {
        let ks = kinds("input x in [-1, 1]; t = 0.3*x;");
        assert_eq!(
            ks,
            vec![
                TokenKind::KwInput,
                TokenKind::Ident("x".into()),
                TokenKind::KwIn,
                TokenKind::LBracket,
                TokenKind::Minus,
                TokenKind::Number(1.0),
                TokenKind::Comma,
                TokenKind::Number(1.0),
                TokenKind::RBracket,
                TokenKind::Semi,
                TokenKind::Ident("t".into()),
                TokenKind::Eq,
                TokenKind::Number(0.3),
                TokenKind::Star,
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_with_exponents_and_fractions() {
        assert_eq!(
            kinds("1 2.5 1e3 4.25e-2 7E+1"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(2.5),
                TokenKind::Number(1e3),
                TokenKind::Number(4.25e-2),
                TokenKind::Number(7e1),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dangling_dot_is_not_part_of_a_number() {
        // `1.` lexes as number then error for `.` (no trailing-dot floats).
        assert!(lex("x = 1.;").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("# full line\nx // tail\n y"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn delay_is_a_keyword_but_delayed_is_not() {
        assert_eq!(
            kinds("delay delayed"),
            vec![
                TokenKind::KwDelay,
                TokenKind::Ident("delayed".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn huge_literals_are_rejected() {
        let err = lex("x = 1e999;").unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].message.contains("finite"));
    }

    #[test]
    fn unexpected_characters_are_reported_with_spans() {
        let err = lex("x = @;").unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].span, Span::new(4, 5));
    }

    #[test]
    fn spans_cover_the_token_text() {
        let toks = lex("alpha = 10.5;").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 5));
        assert_eq!(toks[2].span, Span::new(8, 12));
    }
}
