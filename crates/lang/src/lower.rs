use std::collections::HashMap;

use sna_dfg::{Dfg, DfgBuilder, NodeId};
use sna_interval::Interval;

use crate::ast::{BinaryOp, Expr, ExprKind, IndexKind, InputRange, Program, Stmt, UnaryOp};
use crate::{Diagnostic, Span};

/// Total delay nodes tap-index sugar may create in one program. Each
/// reference is already depth-capped by the parser
/// ([`crate::parser::MAX_TAP_DEPTH`]); this bounds the *sum* over all
/// sources, so a small untrusted source cannot amplify into millions of
/// nodes.
pub const MAX_SUGAR_DELAYS: usize = 16_384;

/// Total input nodes (scalars plus vector-bank elements) one program may
/// declare; same amplification reasoning as [`MAX_SUGAR_DELAYS`].
pub const MAX_PROGRAM_INPUTS: usize = 16_384;

/// The product of lowering: a validated graph plus per-input ranges, in
/// input-declaration order — exactly the pair every analysis entry point
/// (`Session`, `SnaAnalysis`, `Optimizer`, `synthesize`,
/// `monte_carlo_error`) takes.
#[derive(Clone, Debug)]
pub struct Lowered {
    /// The validated dataflow graph.
    pub dfg: Dfg,
    /// Value range of each input, in input order (defaults to `[-1, 1]`).
    pub input_ranges: Vec<Interval>,
}

impl Lowered {
    /// The full-text *shape key* of the compiled program: the graph's
    /// canonical shape rendering with every `Const` **value masked out**
    /// ([`Dfg::shape_signature`]) plus the declared input ranges.
    ///
    /// Two programs share a shape key exactly when they lower to graphs
    /// that differ only in constant values — the precondition for
    /// mapping one onto the other's cached skeleton via
    /// `Session::with_coefficients` instead of recompiling.  (Constant
    /// *dedup* is value-keyed, so programs that merge literals
    /// differently get different keys — the alias is sound by
    /// construction.)
    #[must_use]
    pub fn shape_key(&self) -> String {
        use std::fmt::Write;
        let mut key = self.dfg.shape_signature();
        for r in &self.input_ranges {
            let _ = writeln!(
                key,
                "range {:016x} {:016x}",
                r.lo().to_bits(),
                r.hi().to_bits()
            );
        }
        key
    }

    /// FNV-1a hash of [`Lowered::shape_key`] — the coefficient-normalized
    /// fingerprint tier of the compile cache.
    #[must_use]
    pub fn shape_fingerprint(&self) -> u64 {
        crate::fnv1a_64(self.shape_key().as_bytes())
    }
}

/// Lowers a parsed program onto [`DfgBuilder`].
///
/// Names resolve in statement order; a name may only be referenced
/// *before* its definition as the direct operand of `delay`, which is the
/// textual form of feedback and lowers to
/// [`DfgBuilder::delay_placeholder`] + [`DfgBuilder::bind_delay`].
///
/// # Errors
///
/// Spanned diagnostics for: duplicate definitions, undefined references,
/// empty/invalid input ranges, duplicate or missing outputs, and any
/// graph-validation failure surfaced by [`DfgBuilder::build`].
pub fn lower(program: &Program) -> Result<Lowered, Vec<Diagnostic>> {
    Lowering::default().run(program)
}

/// Parses and lowers in one call — the usual entry point.
///
/// # Errors
///
/// See [`parse`](crate::parse) and [`lower`].
pub fn compile(source: &str) -> Result<Lowered, Vec<Diagnostic>> {
    lower(&crate::parse(source)?)
}

#[derive(Default)]
struct Lowering {
    builder: DfgBuilder,
    env: HashMap<String, NodeId>,
    /// Definition site of each name (for duplicate-definition notes).
    def_spans: HashMap<String, Span>,
    /// One `Const` node per distinct literal value (keyed by bit pattern,
    /// so `-0.0` and `0.0` stay distinct): repeated coefficients — ubiquitous
    /// in symmetric filters — share a node instead of multiplying the
    /// constant count.
    consts: HashMap<u64, NodeId>,
    /// Vector input banks: name → element nodes (`x[0]` … `x[w-1]`).
    vectors: HashMap<String, Vec<NodeId>>,
    /// The shared delay chain of each tapped source: `taps[s][k-1]` is
    /// `s[n-k]`. All tap references of one source share one chain, so
    /// `x[n-3]` after `x[n-1]` adds two delays, not three.
    taps: HashMap<String, Vec<NodeId>>,
    /// Delay nodes created by tap sugar so far (bounded by
    /// [`MAX_SUGAR_DELAYS`]).
    sugar_delays: usize,
    input_ranges: Vec<Interval>,
    /// Forward references created by `delay name` or a tap of a
    /// not-yet-defined source: placeholder node plus the name and span to
    /// resolve once all statements are lowered.
    pending: Vec<(String, NodeId, Span)>,
    outputs: Vec<String>,
    errors: Vec<Diagnostic>,
}

impl Lowering {
    fn run(mut self, program: &Program) -> Result<Lowered, Vec<Diagnostic>> {
        for stmt in &program.stmts {
            self.stmt(stmt);
        }
        // Bind the feedback placeholders now that every name is defined.
        for (name, placeholder, span) in std::mem::take(&mut self.pending) {
            match self.env.get(&name) {
                Some(&source) => {
                    self.builder
                        .bind_delay(placeholder, source)
                        .expect("placeholder ids are valid and bound once");
                }
                None if self.vectors.contains_key(&name) => self.errors.push(Diagnostic::new(
                    format!(
                        "`{name}` is a vector input bank — bind an element to a name \
                         (`e = {name}[0];`) before delaying or tapping it"
                    ),
                    span,
                )),
                None => self.errors.push(Diagnostic::new(
                    format!("undefined name `{name}` (referenced through `delay` or a tap index)"),
                    span,
                )),
            }
        }
        if self.outputs.is_empty() {
            self.errors.push(Diagnostic::new(
                "program declares no outputs (add `output <name>;`)",
                Span::point(0),
            ));
        }
        if !self.errors.is_empty() {
            return Err(self.errors);
        }
        match self.builder.build() {
            Ok(dfg) => Ok(Lowered {
                dfg,
                input_ranges: self.input_ranges,
            }),
            Err(e) => Err(vec![Diagnostic::new(
                format!("invalid datapath: {e}"),
                Span::point(0),
            )]),
        }
    }

    /// Records the definition site of `name`, reporting a duplicate.
    /// Returns `false` (without recording) when the name already exists.
    fn claim(&mut self, name: &crate::ast::Ident) -> bool {
        if self.def_spans.contains_key(&name.name) {
            self.errors.push(Diagnostic::new(
                format!("`{}` is defined twice", name.name),
                name.span,
            ));
            return false;
        }
        self.def_spans.insert(name.name.clone(), name.span);
        true
    }

    fn define(&mut self, name: &crate::ast::Ident, node: NodeId) {
        if self.claim(name) {
            self.env.insert(name.name.clone(), node);
        }
    }

    /// The `Const` node for `value`, creating it on first use.
    fn const_node(&mut self, value: f64) -> NodeId {
        *self
            .consts
            .entry(value.to_bits())
            .or_insert_with(|| self.builder.constant(value))
    }

    /// Whether lowering `expr` reuses an existing node instead of creating
    /// one — a plain alias of a name, a literal whose `Const` node
    /// already exists, or an index reference (vector elements and tap
    /// chains are shared infrastructure). Such statements must not
    /// (re)name the shared node, and cannot carry a `range` override.
    fn reuses_node(&self, expr: &Expr) -> bool {
        match &expr.kind {
            ExprKind::Var(_) | ExprKind::Index { .. } => true,
            ExprKind::Number(v) => self.consts.contains_key(&v.to_bits()),
            _ => false,
        }
    }

    /// Resolves a scalar name reference, with recovery.
    fn resolve_var(&mut self, name: &str, span: Span) -> NodeId {
        if let Some(&node) = self.env.get(name) {
            return node;
        }
        if self.vectors.contains_key(name) {
            self.errors.push(Diagnostic::new(
                format!("`{name}` is a vector input bank — reference an element like `{name}[0]`"),
                span,
            ));
        } else {
            self.errors.push(Diagnostic::new(
                format!(
                    "undefined name `{name}` (only `delay {name}` or a tap index like \
                     `{name}[n-1]` may refer to a name defined later)"
                ),
                span,
            ));
        }
        // Recovery placeholder so lowering can continue.
        self.builder.constant(0.0)
    }

    /// Grows the shared delay chain of `base` to at least `k` taps, so a
    /// later `base[n-k]` resolves to `taps[base][k-1]`.
    ///
    /// Chains are *hoisted*: every statement's tap references are
    /// collected before its expression is lowered, in reference order,
    /// so the created delay nodes occupy exactly the node ids a
    /// hand-written `x1 = delay x; x2 = delay x1; …` preamble would —
    /// the invariant the differential (sugared vs. desugared) test suite
    /// pins byte-for-byte.
    fn ensure_taps(&mut self, base: &str, k: usize, span: Span) {
        if self.vectors.contains_key(base) {
            self.errors.push(Diagnostic::new(
                format!(
                    "`{base}` is a vector input bank — bind an element to a name \
                     (`e = {base}[0];`) before tapping it"
                ),
                span,
            ));
            return;
        }
        let have = self.taps.get(base).map_or(0, Vec::len);
        if k > have && self.sugar_delays + (k - have) > MAX_SUGAR_DELAYS {
            self.errors.push(Diagnostic::new(
                format!(
                    "tap indices would create more than {MAX_SUGAR_DELAYS} delay nodes \
                     in total"
                ),
                span,
            ));
            return;
        }
        for _ in have..k {
            let prev = self.taps.get(base).and_then(|chain| chain.last().copied());
            let node = match prev {
                Some(prev) => self.builder.delay(prev),
                None => match self.env.get(base) {
                    Some(&src) => self.builder.delay(src),
                    None => {
                        // Tap of a name defined later: the feedback form,
                        // rooted at a placeholder bound after all
                        // statements (exactly like `delay name`).
                        let placeholder = self.builder.delay_placeholder();
                        self.pending.push((base.to_string(), placeholder, span));
                        placeholder
                    }
                },
            };
            self.sugar_delays += 1;
            self.taps.entry(base.to_string()).or_default().push(node);
        }
    }

    /// Pre-pass over a statement's expression: create/extend the delay
    /// chains its tap references need (see [`Lowering::ensure_taps`]).
    fn hoist_taps(&mut self, expr: &Expr) {
        match &expr.kind {
            ExprKind::Index {
                base,
                index: IndexKind::Tap(k),
            } if *k >= 1 => self.ensure_taps(base, *k, expr.span),
            ExprKind::Unary { operand, .. } => self.hoist_taps(operand),
            ExprKind::Binary { lhs, rhs, .. } => {
                self.hoist_taps(lhs);
                self.hoist_taps(rhs);
            }
            _ => {}
        }
    }

    /// Applies a `range [lo, hi]` override clause to the node a binding
    /// just produced. Rejected on literal bindings (a constant's range
    /// *is* its value, and `Const` nodes are deduped — an override on
    /// the first use of a literal would silently leak into every later
    /// use) and on bindings that reuse a shared node (alias, re-bound
    /// literal, index reference), where overriding would retroactively
    /// change every other use.
    fn apply_range_clause(
        &mut self,
        name: &str,
        node: NodeId,
        expr: &Expr,
        fresh: bool,
        clause: &InputRange,
    ) {
        if matches!(expr.kind, ExprKind::Number(_)) {
            self.errors.push(Diagnostic::new(
                format!(
                    "a `range` override cannot attach to the constant binding `{name}` — a \
                     literal's range is its value, and the shared `Const` node may be \
                     reused by other statements"
                ),
                clause.span,
            ));
            return;
        }
        if !fresh {
            self.errors.push(Diagnostic::new(
                format!(
                    "a `range` override needs a node of its own — `{name}` re-binds an \
                     existing node (alias, shared literal, or index reference)"
                ),
                clause.span,
            ));
            return;
        }
        match Interval::new(clause.lo, clause.hi) {
            Ok(interval) => self
                .builder
                .override_range(node, interval)
                .expect("the binding's node id is from this builder"),
            Err(e) => self.errors.push(Diagnostic::new(
                format!("invalid range override: {e}"),
                clause.span,
            )),
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Input { name, width, range } => {
                let interval = match range {
                    Some(r) => match Interval::new(r.lo, r.hi) {
                        Ok(iv) => iv,
                        Err(e) => {
                            self.errors
                                .push(Diagnostic::new(format!("invalid input range: {e}"), r.span));
                            Interval::UNIT
                        }
                    },
                    None => Interval::UNIT,
                };
                let declared = width.as_ref().map_or(1, |(w, _)| *w);
                if self.input_ranges.len() + declared > MAX_PROGRAM_INPUTS {
                    self.errors.push(Diagnostic::new(
                        format!("program declares more than {MAX_PROGRAM_INPUTS} inputs"),
                        name.span,
                    ));
                    return;
                }
                match width {
                    None => {
                        let node = self.builder.input(name.name.clone());
                        self.input_ranges.push(interval);
                        self.define(name, node);
                    }
                    Some((w, _)) => {
                        if !self.claim(name) {
                            return;
                        }
                        // A bank of `w` inputs named `name[0]` …
                        // `name[w-1]`, all with the declared range.
                        let bank: Vec<NodeId> = (0..*w)
                            .map(|i| {
                                self.input_ranges.push(interval);
                                self.builder.input(format!("{}[{i}]", name.name))
                            })
                            .collect();
                        self.vectors.insert(name.name.clone(), bank);
                    }
                }
            }
            Stmt::Let { name, expr, range } => {
                self.hoist_taps(expr);
                // Name the node when this statement created it (pure
                // aliases `a = b;`, re-bound literals and index
                // references must not rename the shared node).
                let fresh = !self.reuses_node(expr);
                let node = self.expr(expr);
                if fresh {
                    let _ = self.builder.name(node, name.name.clone());
                }
                if let Some(clause) = range {
                    self.apply_range_clause(&name.name, node, expr, fresh, clause);
                }
                self.define(name, node);
            }
            Stmt::ConstLet { name, value, .. } => {
                // Same dedup as a bare literal: the first binding of a
                // value creates (and names) the shared `Const` node,
                // later re-binds must not rename it.
                let fresh = !self.consts.contains_key(&value.to_bits());
                let node = self.const_node(*value);
                if fresh {
                    let _ = self.builder.name(node, name.name.clone());
                }
                self.define(name, node);
            }
            Stmt::Output { name, expr, range } => {
                let node = match expr {
                    Some(e) => {
                        self.hoist_taps(e);
                        let fresh = !self.reuses_node(e);
                        let node = self.expr(e);
                        if fresh {
                            let _ = self.builder.name(node, name.name.clone());
                        }
                        if let Some(clause) = range {
                            self.apply_range_clause(&name.name, node, e, fresh, clause);
                        }
                        self.define(name, node);
                        node
                    }
                    None => match self.env.get(&name.name) {
                        Some(&node) => node,
                        None => {
                            self.errors.push(Diagnostic::new(
                                format!("undefined name `{}`", name.name),
                                name.span,
                            ));
                            return;
                        }
                    },
                };
                if self.outputs.contains(&name.name) {
                    self.errors.push(Diagnostic::new(
                        format!("output `{}` is declared twice", name.name),
                        name.span,
                    ));
                    return;
                }
                self.outputs.push(name.name.clone());
                self.builder.output(name.name.clone(), node);
            }
        }
    }

    fn expr(&mut self, expr: &Expr) -> NodeId {
        match &expr.kind {
            ExprKind::Number(v) => self.const_node(*v),
            ExprKind::Var(name) => self.resolve_var(name, expr.span),
            ExprKind::Index { base, index } => match index {
                IndexKind::Element(i) => match self.vectors.get(base) {
                    Some(bank) if *i < bank.len() => bank[*i],
                    Some(bank) => {
                        let w = bank.len();
                        self.errors.push(Diagnostic::new(
                            format!(
                                "element index {i} is out of bounds for the vector input \
                                 `{base}[{w}]`"
                            ),
                            expr.span,
                        ));
                        self.builder.constant(0.0)
                    }
                    None => {
                        self.errors.push(Diagnostic::new(
                            format!("`{base}` is not a vector input bank"),
                            expr.span,
                        ));
                        self.builder.constant(0.0)
                    }
                },
                // `x[n]` is the current sample: a plain reference.
                IndexKind::Tap(0) => self.resolve_var(base, expr.span),
                IndexKind::Tap(k) => match self.taps.get(base).and_then(|c| c.get(*k - 1)) {
                    Some(&tap) => tap,
                    // The hoisting pre-pass already diagnosed why the
                    // chain is missing (vector bank, cap exceeded);
                    // recover without a duplicate error.
                    None => self.builder.constant(0.0),
                },
            },
            ExprKind::Unary { op, operand } => match op {
                UnaryOp::Neg => {
                    let inner = self.expr(operand);
                    self.builder.neg(inner)
                }
                UnaryOp::Delay => {
                    // `delay name` with `name` not yet defined is the
                    // feedback form: create a placeholder bound after all
                    // statements.
                    if let ExprKind::Var(name) = &operand.kind {
                        if !self.env.contains_key(name) {
                            let placeholder = self.builder.delay_placeholder();
                            self.pending.push((name.clone(), placeholder, operand.span));
                            return placeholder;
                        }
                    }
                    let inner = self.expr(operand);
                    self.builder.delay(inner)
                }
            },
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                match op {
                    BinaryOp::Add => self.builder.add(l, r),
                    BinaryOp::Sub => self.builder.sub(l, r),
                    BinaryOp::Mul => self.builder.mul(l, r),
                    BinaryOp::Div => self.builder.div(l, r),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::{Op, Simulator};

    fn compile_ok(src: &str) -> Lowered {
        match compile(src) {
            Ok(l) => l,
            Err(e) => panic!("compile failed: {e:?}"),
        }
    }

    #[test]
    fn lowers_the_issue_example_with_feedback() {
        let l = compile_ok(
            "input x in [-1, 1];\n\
             t = 0.3*x;\n\
             y_prev = delay y;\n\
             y = t + 0.5*y_prev;\n\
             output y;\n",
        );
        let c = l.dfg.op_counts();
        assert_eq!(c.inputs, 1);
        assert_eq!(c.delays, 1);
        assert_eq!(c.muls, 2);
        assert_eq!(c.adds, 1);
        assert_eq!(c.consts, 2);
        assert!(!l.dfg.is_combinational());
        // y[n] = 0.3 x[n] + 0.5 y[n-1]
        let mut sim = Simulator::new(&l.dfg);
        assert_eq!(sim.step(&[1.0]).unwrap(), vec![0.3]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.15]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.075]);
    }

    #[test]
    fn every_op_variant_is_expressible() {
        let l = compile_ok(
            "input a;\n\
             input b in [0.5, 2];\n\
             s = a + b;\n\
             d = a - b;\n\
             p = a * b;\n\
             q = a / b;\n\
             n = -s;\n\
             z = delay p;\n\
             k = 2.5;\n\
             y = s + d + p + q + n + z + k;\n\
             output y;\n",
        );
        let c = l.dfg.op_counts();
        assert_eq!(c.inputs, 2);
        assert_eq!(c.adds, 7);
        assert_eq!(c.subs, 1);
        assert_eq!(c.muls, 1);
        assert_eq!(c.divs, 1);
        assert_eq!(c.negs, 1);
        assert_eq!(c.delays, 1);
        assert_eq!(c.consts, 1);
        assert_eq!(l.input_ranges[0], Interval::UNIT);
        assert_eq!(l.input_ranges[1], Interval::new(0.5, 2.0).unwrap());
    }

    #[test]
    fn aliases_do_not_create_nodes() {
        let l = compile_ok("input x;\ny = x;\noutput y;\n");
        assert_eq!(l.dfg.len(), 1);
        assert_eq!(l.dfg.node(l.dfg.outputs()[0].1).op(), Op::Input(0));
    }

    #[test]
    fn named_outputs_with_inline_expressions() {
        let l = compile_ok("input x;\noutput y = 2 * x;\noutput z = y + 1;\n");
        assert_eq!(l.dfg.outputs().len(), 2);
        assert_eq!(l.dfg.outputs()[0].0, "y");
        assert_eq!(l.dfg.evaluate(&[3.0]).unwrap(), vec![6.0, 7.0]);
    }

    #[test]
    fn undefined_name_is_a_spanned_error() {
        let src = "input x;\ny = x + oops;\noutput y;\n";
        let errs = compile(src).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("undefined name `oops`"));
        assert_eq!(&src[errs[0].span.start..errs[0].span.end], "oops");
    }

    #[test]
    fn forward_reference_outside_delay_is_rejected() {
        let errs = compile("input x;\ny = z + x;\nz = x;\noutput y;\n").unwrap_err();
        assert!(errs[0].message.contains("undefined name `z`"));
        assert!(errs[0].message.contains("delay"));
    }

    #[test]
    fn unresolved_delay_target_is_reported() {
        let errs = compile("input x;\ny = x + delay ghost;\noutput y;\n").unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(
            errs[0].message.contains("undefined name `ghost`"),
            "{errs:?}"
        );
    }

    #[test]
    fn duplicate_definitions_and_outputs_are_rejected() {
        let errs = compile("input x;\nx = 1;\noutput x;\n").unwrap_err();
        assert!(errs[0].message.contains("defined twice"));
        let errs = compile("input x;\noutput x;\noutput x;\n").unwrap_err();
        assert!(errs[0].message.contains("declared twice"));
    }

    #[test]
    fn empty_range_is_rejected_with_the_range_span() {
        let src = "input x in [2, 1];\noutput x;\n";
        let errs = compile(src).unwrap_err();
        assert!(errs[0].message.contains("invalid input range"));
        assert_eq!(&src[errs[0].span.start..errs[0].span.end], "[2, 1]");
    }

    #[test]
    fn missing_outputs_are_rejected() {
        let errs = compile("input x;\ny = x + 1;\n").unwrap_err();
        assert!(errs[0].message.contains("no outputs"));
    }

    #[test]
    fn delay_of_expression_lowers_inline() {
        let l = compile_ok("input x;\ny = delay (x + 1);\noutput y;\n");
        let c = l.dfg.op_counts();
        assert_eq!(c.delays, 1);
        assert_eq!(c.adds, 1);
        let mut sim = Simulator::new(&l.dfg);
        assert_eq!(sim.step(&[5.0]).unwrap(), vec![0.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![6.0]);
    }

    #[test]
    fn delay_chain_feedback_matches_designs_idiom() {
        // Two-tap feedback like the diff-eq builders: taps of y.
        let l = compile_ok(
            "input x;\n\
             t1 = delay y;\n\
             t2 = delay t1;\n\
             y = x + 0.5*t1 + 0.25*t2;\n\
             output y;\n",
        );
        assert_eq!(l.dfg.op_counts().delays, 2);
        let mut sim = Simulator::new(&l.dfg);
        assert_eq!(sim.step(&[1.0]).unwrap(), vec![1.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.5]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.5]);
    }

    #[test]
    fn repeated_literals_share_one_const_node() {
        // A symmetric 3-tap FIR: 0.25 appears twice, 0.5 once.
        let l = compile_ok(
            "input x;\n\
             x1 = delay x;\n\
             x2 = delay x1;\n\
             y = 0.25*x + 0.5*x1 + 0.25*x2;\n\
             output y;\n",
        );
        let c = l.dfg.op_counts();
        assert_eq!(c.consts, 2, "identical literals must dedupe");
        assert_eq!((c.muls, c.adds, c.delays), (3, 2, 2));
        let mut sim = Simulator::new(&l.dfg);
        assert_eq!(sim.step(&[1.0]).unwrap(), vec![0.25]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.5]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.25]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.0]);
    }

    #[test]
    fn negative_zero_stays_distinct_from_zero() {
        let l = compile_ok("input x;\ny = 0.0*x + -0.0*x;\noutput y;\n");
        assert_eq!(l.dfg.op_counts().consts, 2);
    }

    #[test]
    fn rebinding_an_existing_literal_does_not_rename_the_shared_node() {
        // `k = 2.5;` reuses the Const created for the first `2.5` and so
        // must not steal its name; both uses still evaluate correctly.
        let l = compile_ok(
            "input x;\n\
             a = 2.5*x;\n\
             k = 2.5;\n\
             y = a + k;\n\
             output y;\n",
        );
        let c = l.dfg.op_counts();
        assert_eq!(c.consts, 1);
        assert_eq!(l.dfg.evaluate(&[2.0]).unwrap(), vec![7.5]);
    }

    #[test]
    fn let_bindings_lower_to_named_deduped_consts() {
        let l = compile_ok(
            "input x;\n\
             let k = 0.65328125;\n\
             y = k*x + 0.65328125;\n\
             output y;\n",
        );
        let c = l.dfg.op_counts();
        assert_eq!(c.consts, 1, "the let and the literal share one node");
        let (id, node) = l
            .dfg
            .nodes()
            .find(|(_, n)| matches!(n.op(), Op::Const(_)))
            .unwrap();
        assert_eq!(node.name(), Some("k"), "the let names the shared node");
        assert!(matches!(l.dfg.node(id).op(), Op::Const(v) if v == 0.65328125));
        let y = 0.65328125 * 2.0 + 0.65328125;
        assert_eq!(l.dfg.evaluate(&[2.0]).unwrap(), vec![y]);
    }

    #[test]
    fn let_accepts_negative_literals_and_rejects_expressions() {
        let l = compile_ok("input x;\nlet g = -0.5;\noutput y = g*x;\n");
        assert_eq!(l.dfg.evaluate(&[2.0]).unwrap(), vec![-1.0]);
        let errs = crate::parse("let k = 1 + 2;").unwrap_err();
        assert!(errs[0].message.contains("named constant"), "{:?}", errs[0]);
        let errs = crate::parse("let k = x;").unwrap_err();
        assert!(errs[0].message.contains("named constant"), "{:?}", errs[0]);
    }

    #[test]
    fn let_re_binding_an_existing_literal_does_not_rename_it() {
        let l = compile_ok(
            "input x;\n\
             a = 2.5*x;\n\
             let k = 2.5;\n\
             y = a + k;\n\
             output y;\n",
        );
        assert_eq!(l.dfg.op_counts().consts, 1);
        assert_eq!(l.dfg.evaluate(&[2.0]).unwrap(), vec![7.5]);
    }

    #[test]
    fn let_canonical_form_round_trips() {
        let src = "input x;\nlet k = -0.25;\ny = k * x;\noutput y;\n";
        let program = crate::parse(src).unwrap();
        let canon = program.to_string();
        assert!(canon.contains("let k = -0.25;"), "{canon}");
        let reparsed = crate::parse(&canon).unwrap();
        assert_eq!(reparsed.to_string(), canon);
    }

    #[test]
    fn shape_fingerprints_mask_constants_only() {
        let base = compile_ok("input x;\nlet k = 0.25;\noutput y = k*x;\n");
        let swapped = compile_ok("input x;\nlet k = 0.75;\noutput y = k*x;\n");
        let reshaped = compile_ok("input x;\nlet k = 0.25;\noutput y = k*x + x;\n");
        let renamed = compile_ok("input x;\nlet q = 0.25;\noutput y = q*x;\n");
        let reranged = compile_ok("input x in [-2, 2];\nlet k = 0.25;\noutput y = k*x;\n");
        assert_eq!(base.shape_fingerprint(), swapped.shape_fingerprint());
        assert_eq!(base.shape_key(), swapped.shape_key());
        assert_ne!(base.shape_fingerprint(), reshaped.shape_fingerprint());
        assert_ne!(base.shape_fingerprint(), renamed.shape_fingerprint());
        assert_ne!(base.shape_fingerprint(), reranged.shape_fingerprint());
        // The coefficient vectors map slot for slot.
        assert_eq!(base.dfg.const_values(), vec![0.25]);
        assert_eq!(swapped.dfg.const_values(), vec![0.75]);
    }

    #[test]
    fn vector_inputs_declare_a_bank_of_ranged_elements() {
        let l = compile_ok(
            "input v[3] in [-2, 2];\n\
             input x;\n\
             y = v[0] + v[1] + v[2] + x;\n\
             output y;\n",
        );
        let c = l.dfg.op_counts();
        assert_eq!(c.inputs, 4);
        assert_eq!(
            l.dfg.input_names(),
            &["v[0]", "v[1]", "v[2]", "x"].map(String::from)
        );
        assert_eq!(l.input_ranges[0], Interval::new(-2.0, 2.0).unwrap());
        assert_eq!(l.input_ranges[2], Interval::new(-2.0, 2.0).unwrap());
        assert_eq!(l.input_ranges[3], Interval::UNIT);
        assert_eq!(l.dfg.evaluate(&[1.0, 2.0, 3.0, 4.0]).unwrap(), vec![10.0]);
    }

    #[test]
    fn vector_misuse_is_diagnosed() {
        let errs = compile("input v[2];\noutput y = v[5];\n").unwrap_err();
        assert!(errs[0].message.contains("out of bounds"), "{:?}", errs[0]);
        let errs = compile("input v[2];\noutput y = v;\n").unwrap_err();
        assert!(
            errs[0].message.contains("vector input bank"),
            "{:?}",
            errs[0]
        );
        let errs = compile("input x;\noutput y = x[1];\n").unwrap_err();
        assert!(errs[0].message.contains("not a vector"), "{:?}", errs[0]);
        let errs = compile("input v[2];\noutput y = v[n-1];\n").unwrap_err();
        assert!(errs[0].message.contains("before tapping"), "{:?}", errs[0]);
        let errs = compile("input v[2];\nv = 1;\noutput v;\n").unwrap_err();
        assert!(errs[0].message.contains("defined twice"), "{:?}", errs[0]);
    }

    #[test]
    fn tap_sugar_matches_an_explicit_delay_chain_bit_for_bit() {
        let sugar = compile_ok(
            "input x;\n\
             y = 0.25*x + 0.5*x[n-1] + 0.25*x[n-2];\n\
             output y;\n",
        );
        let explicit = compile_ok(
            "input x;\n\
             x1 = delay x;\n\
             x2 = delay x1;\n\
             y = 0.25*x + 0.5*x1 + 0.25*x2;\n\
             output y;\n",
        );
        assert_eq!(sugar.dfg.op_counts(), explicit.dfg.op_counts());
        assert_eq!(sugar.dfg.len(), explicit.dfg.len());
        let mut a = Simulator::new(&sugar.dfg);
        let mut b = Simulator::new(&explicit.dfg);
        for step in [1.0, 0.5, -0.25, 0.0, 0.75] {
            assert_eq!(a.step(&[step]).unwrap(), b.step(&[step]).unwrap());
        }
    }

    #[test]
    fn taps_of_one_source_share_a_single_chain() {
        // x[n-3] and x[n-1] together need exactly 3 delays; repeating a
        // tap adds nothing; x[n] is the input itself.
        let l = compile_ok(
            "input x;\n\
             y = x[n-3] + x[n-1] + x[n-1] + x[n];\n\
             output y;\n",
        );
        let c = l.dfg.op_counts();
        assert_eq!(c.delays, 3, "shared chain");
        assert_eq!(c.adds, 3);
        let mut sim = Simulator::new(&l.dfg);
        // y[n] = x[n-3] + 2·x[n-1] + x[n]
        assert_eq!(sim.step(&[1.0]).unwrap(), vec![1.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![2.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![1.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.0]);
    }

    #[test]
    fn tap_feedback_matches_the_delay_idiom() {
        // y = x + 0.5·y[n-1] + 0.25·y[n-2] via taps of a later-defined
        // name must equal the explicit two-delay feedback form.
        let sugar = compile_ok(
            "input x;\n\
             y = x + 0.5*y[n-1] + 0.25*y[n-2];\n\
             output y;\n",
        );
        let explicit = compile_ok(
            "input x;\n\
             t1 = delay y;\n\
             t2 = delay t1;\n\
             y = x + 0.5*t1 + 0.25*t2;\n\
             output y;\n",
        );
        assert_eq!(sugar.dfg.op_counts().delays, 2);
        let mut a = Simulator::new(&sugar.dfg);
        let mut b = Simulator::new(&explicit.dfg);
        for step in [1.0, 0.0, 0.0, 0.5, -1.0] {
            assert_eq!(a.step(&[step]).unwrap(), b.step(&[step]).unwrap());
        }
    }

    #[test]
    fn chains_extend_incrementally_across_statements() {
        let l = compile_ok(
            "input x;\n\
             a = x[n-1];\n\
             b = x[n-3];\n\
             output y = a + b;\n",
        );
        assert_eq!(l.dfg.op_counts().delays, 3);
        // `a = x[n-1];` aliases the chain tap: no extra node, no rename.
        let tap1 = l
            .dfg
            .nodes()
            .find(|(_, n)| matches!(n.op(), Op::Delay))
            .unwrap();
        assert_eq!(tap1.1.name(), None);
    }

    #[test]
    fn range_overrides_reach_the_graph() {
        let l = compile_ok(
            "input x;\n\
             acc = x + x range [-0.5, 0.5];\n\
             output y = 2 * acc;\n",
        );
        let acc = l
            .dfg
            .nodes()
            .find(|(_, n)| n.name() == Some("acc"))
            .unwrap()
            .0;
        assert_eq!(
            l.dfg.range_override(acc),
            Some(Interval::new(-0.5, 0.5).unwrap())
        );
        let ranges = l
            .dfg
            .ranges_interval(&l.input_ranges, &sna_dfg::RangeOptions::default())
            .unwrap();
        assert_eq!(ranges[acc.index()], Interval::new(-0.5, 0.5).unwrap());
        // Output form too.
        let l = compile_ok("input x;\noutput y = x * x range [0, 1];\n");
        let (yid, _) = l.dfg.nodes().find(|(_, n)| n.name() == Some("y")).unwrap();
        assert_eq!(
            l.dfg.range_override(yid),
            Some(Interval::new(0.0, 1.0).unwrap())
        );
    }

    #[test]
    fn range_overrides_on_shared_nodes_are_rejected() {
        // Alias.
        let errs = compile("input x;\ny = x range [0, 1];\noutput y;\n").unwrap_err();
        assert!(errs[0].message.contains("node of its own"), "{:?}", errs[0]);
        // Re-bound literal.
        let errs = compile("input x;\na = 0.5*x;\nk = 0.5 range [0, 1];\noutput y = a + k;\n")
            .unwrap_err();
        assert!(
            errs[0].message.contains("constant binding"),
            "{:?}",
            errs[0]
        );
        // Tap reference.
        let errs = compile("input x;\na = x[n-1] range [0, 1];\noutput y = a;\n").unwrap_err();
        assert!(errs[0].message.contains("node of its own"), "{:?}", errs[0]);
        // Invalid bounds.
        let errs = compile("input x;\ny = x + x range [1, -1];\noutput y;\n").unwrap_err();
        assert!(
            errs[0].message.contains("invalid range override"),
            "{:?}",
            errs[0]
        );
    }

    #[test]
    fn range_overrides_on_literal_bindings_are_rejected_in_both_orders() {
        // A literal binding may *create* the shared Const node (first
        // use); accepting an override there would silently leak it into
        // every later use of the same literal through dedup. Both
        // statement orders must reject identically.
        let first_use = "input x in [-1, 1];\nk = 0.5 range [0, 0.25];\ny = x * 0.5;\noutput y;\n";
        let errs = compile(first_use).unwrap_err();
        assert!(
            errs[0].message.contains("constant binding"),
            "{:?}",
            errs[0]
        );
        let later_use = "input x in [-1, 1];\ny = x * 0.5;\nk = 0.5 range [0, 0.25];\noutput y;\n";
        let errs = compile(later_use).unwrap_err();
        assert!(
            errs[0].message.contains("constant binding"),
            "{:?}",
            errs[0]
        );
        // Without the clause the program compiles, with the literal's
        // true (unoverridden) range reaching the product.
        let l = compile_ok("input x in [-1, 1];\nk = 0.5;\noutput y = x * 0.5;\n");
        let ranges = l
            .dfg
            .ranges_interval(&l.input_ranges, &sna_dfg::RangeOptions::default())
            .unwrap();
        let (yid, _) = l.dfg.nodes().find(|(_, n)| n.name() == Some("y")).unwrap();
        assert_eq!(ranges[yid.index()], Interval::new(-0.5, 0.5).unwrap());
    }

    #[test]
    fn range_override_shapes_do_not_alias_plain_shapes() {
        let plain = compile_ok("input x;\nlet k = 0.5;\ny = k*x + x;\noutput y;\n");
        let bounded = compile_ok("input x;\nlet k = 0.5;\ny = k*x + x range [-1, 1];\noutput y;\n");
        let rebounded =
            compile_ok("input x;\nlet k = 0.5;\ny = k*x + x range [-2, 2];\noutput y;\n");
        assert_ne!(plain.shape_fingerprint(), bounded.shape_fingerprint());
        assert_ne!(bounded.shape_fingerprint(), rebounded.shape_fingerprint());
        // Same overrides, different coefficients: still one shape.
        let swapped =
            compile_ok("input x;\nlet k = 0.25;\ny = k*x + x range [-1, 1];\noutput y;\n");
        assert_eq!(bounded.shape_fingerprint(), swapped.shape_fingerprint());
    }

    #[test]
    fn sugar_delay_and_input_budgets_are_enforced() {
        // 17 sources tapped at depth 1024 each would cross the 16384
        // sugar-delay budget.
        let mut src = String::from("input x;\n");
        for k in 0..17 {
            src.push_str(&format!("s{k} = x + {};\n", k + 1));
        }
        let refs: Vec<String> = (0..17).map(|k| format!("s{k}[n-1024]")).collect();
        src.push_str(&format!("output y = {};\n", refs.join(" + ")));
        let errs = compile(&src).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("delay nodes")),
            "{:?}",
            errs.first()
        );

        // 17 maximal vector banks cross the input budget.
        let mut src = String::new();
        for k in 0..17 {
            src.push_str(&format!("input v{k}[1024];\n"));
        }
        src.push_str("output y = v0[0];\n");
        let errs = compile(&src).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("inputs")),
            "{:?}",
            errs.first()
        );
    }

    #[test]
    fn self_delay_is_legal_and_silent() {
        // `s = delay s` is a register feeding itself: constant zero.
        let l = compile_ok("input x;\ns = delay s;\ny = x + s;\noutput y;\n");
        let mut sim = Simulator::new(&l.dfg);
        assert_eq!(sim.step(&[3.0]).unwrap(), vec![3.0]);
        assert_eq!(sim.step(&[4.0]).unwrap(), vec![4.0]);
    }
}
