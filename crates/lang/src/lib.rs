//! `sna-lang` — the textual datapath DSL of the SNA toolchain.
//!
//! Every workload this reproduction can analyze used to require hand-coded
//! Rust against [`sna_dfg::DfgBuilder`]. This crate turns any filter,
//! transform or feedback datapath into a few lines of text:
//!
//! ```text
//! # A one-pole low-pass filter.
//! input x in [-1, 1];
//! t = 0.3 * x;
//! y_prev = delay y;        # feedback: `y` is defined below
//! y = t + 0.5 * y_prev;
//! output y;
//! ```
//!
//! [`compile`] turns that source into a [`Lowered`] — a validated
//! [`sna_dfg::Dfg`] plus per-input ranges — ready for every analysis
//! entry point in the workspace (`SnaAnalysis`, `Optimizer`,
//! `synthesize`, `monte_carlo_error`). The `sna` CLI (crate `sna-cli`)
//! wraps exactly this pipeline.
//!
//! # Grammar
//!
//! ```text
//! program  := stmt*
//! stmt     := input | constlet | binding | output
//! input    := "input" IDENT ("[" INT "]")? ("in" "[" signed "," signed "]")? ";"
//! constlet := "let" IDENT "=" signed ";"
//! binding  := IDENT "=" expr override? ";"
//! output   := "output" IDENT ("=" expr override?)? ";"
//! override := "range" "[" signed "," signed "]"
//!
//! expr     := term (("+" | "-") term)*          // left-associative
//! term     := unary (("*" | "/") unary)*        // left-associative
//! unary    := "-" unary | "delay" unary | primary
//! primary  := NUMBER | IDENT index? | "(" expr ")"
//! index    := "[" (INT | "n" ("-" INT)?) "]"
//! signed   := "-"? NUMBER
//!
//! NUMBER   := [0-9]+ ("." [0-9]+)? ([eE] [+-]? [0-9]+)?
//! INT      := [0-9]+
//! IDENT    := [A-Za-z_][A-Za-z0-9_]*            // except keywords
//! ```
//!
//! Comments run from `#` or `//` to end of line. The six keywords are
//! `input`, `output`, `in`, `delay`, `let` and `range`.
//!
//! `let k = 0.70710678;` is a *named constant binding*: semantically the
//! same as `k = 0.70710678;` (it lowers to the shared, deduped `Const`
//! node), but it marks the one obvious mutation site of a
//! coefficient-swept design — the values `Session::with_coefficients`
//! swaps without recompiling.
//!
//! `input v[8] in [-1, 1];` declares a *vector input bank*: eight
//! inputs addressable as `v[0]` … `v[7]`, each with the declared range.
//!
//! `x[n-3]` is *tap-index sugar*: the value of `x` three samples ago.
//! Taps of one source share a single deduped delay chain (`x[n-1]` and
//! `x[n-3]` together create three delay nodes, not four), and a tap of
//! a name defined later expresses feedback exactly like `delay name`.
//! `x[n]` is the current sample.
//!
//! `acc = a + b range [-1, 1];` *overrides range analysis* at the bound
//! node: the range engines behind every analysis path — the interval
//! fixpoint, its cone-limited incremental patch, the LTI L1 fallback,
//! affine analysis, and the per-sample combinational view (where a
//! delay's override becomes its state input's) — report the declared
//! interval for `acc` instead of the computed one.  This is the escape
//! hatch for designer knowledge interval arithmetic cannot see, and a
//! way to bound feedback state that would otherwise diverge.  (The one
//! exception is the standalone `Dfg::unroll` transient view, which
//! carries overrides per step for computed nodes but drops delay-state
//! overrides — see its docs.)  Full reference in
//! `crates/lang/README.md`.
//!
//! # Semantics
//!
//! * Every operator maps 1:1 onto an [`sna_dfg::Op`]: `+` → `Add`, `-` →
//!   `Sub`, `*` → `Mul`, `/` → `Div`, unary `-` → `Neg`, `delay` →
//!   `Delay`, literals → `Const`, `input` → `Input`. Unary minus on a
//!   literal folds into the constant (`-0.5 * x` is one `Const` and one
//!   `Mul`, exactly like `DfgBuilder::mul_const(-0.5, x)`). Identical
//!   literals within one datapath share a single `Const` node (compared
//!   by bit pattern, so `-0.0` and `0.0` stay distinct) — symmetric
//!   filter coefficients do not inflate the node count.
//! * Names must be defined before use, with one exception: the direct
//!   operand of `delay` may be defined *later*, which expresses feedback
//!   and lowers to `delay_placeholder`/`bind_delay`. Every cycle must
//!   pass through a `delay` — the builder rejects anything else.
//! * `name = other_name;` is a pure alias (no node is created).
//! * Inputs take their declared `[lo, hi]` range, defaulting to
//!   `[-1, 1]`; ranges reach the analyses via [`Lowered::input_ranges`]
//!   in declaration order.
//! * `output name = expr;` both declares the output and binds `name`.
//!
//! # Diagnostics
//!
//! All phases report [`Diagnostic`]s carrying byte spans;
//! [`Diagnostic::render`] produces caret-style snippets with line and
//! column numbers. The parser recovers at `;`, so one run reports
//! multiple errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod diag;
mod fingerprint;
mod lower;
mod parser;
mod span;
mod token;

pub use ast::{BinaryOp, Expr, ExprKind, Ident, IndexKind, InputRange, Program, Stmt, UnaryOp};
pub use diag::{render_all, Diagnostic};
pub use fingerprint::{canonical_fingerprint, fnv1a_64, source_fingerprint};
pub use lower::{compile, lower, Lowered, MAX_PROGRAM_INPUTS, MAX_SUGAR_DELAYS};
pub use parser::{parse, MAX_TAP_DEPTH, MAX_VECTOR_WIDTH};
pub use span::Span;
pub use token::{lex, Token, TokenKind};
