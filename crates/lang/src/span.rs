use std::fmt;

/// A byte range into a source string.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span from byte offsets.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// A zero-width span at one offset.
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Resolves this span against its source: `(line, column)` of the
    /// start, both 1-based, measured in characters.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let upto = &source[..self.start.min(source.len())];
        let line = upto.bytes().filter(|&b| b == b'\n').count() + 1;
        let col = upto
            .rfind('\n')
            .map(|nl| upto[nl + 1..].chars().count() + 1)
            .unwrap_or_else(|| upto.chars().count() + 1);
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_resolution() {
        let src = "ab\ncdef\ng";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(1, 2).line_col(src), (1, 2));
        assert_eq!(Span::new(3, 4).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (2, 4));
        assert_eq!(Span::new(8, 9).line_col(src), (3, 1));
    }

    #[test]
    fn joins_cover_both() {
        let a = Span::new(3, 5);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
    }
}
