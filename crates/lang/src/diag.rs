use std::fmt;

use crate::Span;

/// A compiler diagnostic: a message anchored to a span of the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic as a caret-style snippet:
    ///
    /// ```text
    /// error: expected `;` after statement
    ///  --> fir.sna:3:12
    ///   |
    /// 3 | t = 0.3 * x
    ///   |            ^
    /// ```
    ///
    /// `origin` is the file name (or any label) shown in the location
    /// line.
    pub fn render(&self, source: &str, origin: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let gutter = line.to_string();
        let pad = " ".repeat(gutter.len());
        // Caret width: the part of the span that lies on the first line,
        // at least one caret, measured in characters.
        let line_start = self.span.start - (col - 1).min(self.span.start);
        let span_on_line = self
            .span
            .end
            .min(line_start + line_text.len())
            .saturating_sub(self.span.start)
            .max(1);
        let width = source
            .get(self.span.start..self.span.start + span_on_line)
            .map(|s| s.chars().count().max(1))
            .unwrap_or(1);
        format!(
            "error: {msg}\n{pad}--> {origin}:{line}:{col}\n\
             {pad} |\n{gutter} | {line_text}\n{pad} | {caret_pad}{carets}",
            msg = self.message,
            caret_pad = " ".repeat(col - 1),
            carets = "^".repeat(width),
        )
    }
}

/// `Display` shows the message and byte span only; use
/// [`Diagnostic::render`] for the caret snippet.
impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at {})", self.message, self.span)
    }
}

/// Renders a batch of diagnostics, one snippet per entry.
pub fn render_all(diagnostics: &[Diagnostic], source: &str, origin: &str) -> String {
    diagnostics
        .iter()
        .map(|d| d.render(source, origin))
        .collect::<Vec<_>>()
        .join("\n\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_span() {
        let src = "input x;\nt = 0.3 * ;\noutput t;";
        let at = src.find('*').unwrap() + 2;
        let d = Diagnostic::new("expected an expression", Span::new(at, at + 1));
        let out = d.render(src, "test.sna");
        assert!(out.contains("error: expected an expression"), "{out}");
        assert!(out.contains("test.sna:2:11"), "{out}");
        assert!(out.contains("t = 0.3 * ;"), "{out}");
        let caret_line = out.lines().last().unwrap();
        assert_eq!(
            caret_line.find('^').unwrap(),
            caret_line.find('|').unwrap() + 11 + 1
        );
    }

    #[test]
    fn multi_char_spans_get_wide_carets() {
        let src = "output nope;";
        let d = Diagnostic::new("undefined name `nope`", Span::new(7, 11));
        let out = d.render(src, "x.sna");
        assert!(out.contains("^^^^"), "{out}");
    }
}
