use crate::ast::{BinaryOp, Expr, ExprKind, Ident, IndexKind, InputRange, Program, Stmt, UnaryOp};
use crate::token::{lex, Token, TokenKind};
use crate::Diagnostic;

/// Parses `.sna` source into a [`Program`].
///
/// The parser recovers at statement boundaries (`;`), so several errors
/// can be reported in one pass.
///
/// # Errors
///
/// All lexical and syntactic diagnostics collected, each with a span.
pub fn parse(source: &str) -> Result<Program, Vec<Diagnostic>> {
    let tokens = lex(source)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
        errors: Vec::new(),
    };
    let program = p.program();
    if p.errors.is_empty() {
        Ok(program)
    } else {
        Err(p.errors)
    }
}

/// The widest vector input bank accepted (`input x[W];`). Each element
/// is a full input node, and the server feeds this parser untrusted
/// source text — a handful of bytes must not declare millions of nodes.
pub const MAX_VECTOR_WIDTH: usize = 1024;

/// The deepest tap index accepted (`x[n-K]`). Each tap lowers to a delay
/// node in the shared chain; same untrusted-input reasoning as
/// [`MAX_VECTOR_WIDTH`].
pub const MAX_TAP_DEPTH: usize = 1024;

/// The deepest expression nesting accepted. The expression grammar
/// recurses per level (`(`-chains through `primary`, `-`/`delay`-chains
/// through `unary`), and the server feeds this parser untrusted source
/// text: without a bound, a megabyte of `((((…` or `----…` overflows the
/// parsing thread's stack and aborts the process. Real datapaths nest a
/// few levels.
const MAX_EXPR_DEPTH: usize = 256;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
    errors: Vec<Diagnostic>,
}

/// Signals "diagnostic already recorded; unwind to statement level".
struct Recover;

type PResult<T> = Result<T, Recover>;

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn error_here(&mut self, message: impl Into<String>) -> Recover {
        let span = self.peek().span;
        self.errors.push(Diagnostic::new(message, span));
        Recover
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> PResult<Token> {
        if self.at(kind) {
            Ok(self.advance())
        } else {
            let found = self.peek().kind.describe();
            Err(self.error_here(format!("expected {what}, found {found}")))
        }
    }

    fn expect_ident(&mut self, what: &str) -> PResult<Ident> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let span = self.advance().span;
                Ok(Ident { name, span })
            }
            other => Err(self.error_here(format!("expected {what}, found {}", other.describe()))),
        }
    }

    /// Skips ahead to just past the next `;` (or to EOF) after an error.
    fn recover_to_semi(&mut self) {
        loop {
            match self.peek().kind {
                TokenKind::Semi => {
                    self.advance();
                    return;
                }
                TokenKind::Eof => return,
                _ => {
                    self.advance();
                }
            }
        }
    }

    fn program(&mut self) -> Program {
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::Eof) {
            match self.statement() {
                Ok(stmt) => stmts.push(stmt),
                Err(Recover) => self.recover_to_semi(),
            }
        }
        Program { stmts }
    }

    fn statement(&mut self) -> PResult<Stmt> {
        match self.peek().kind {
            TokenKind::KwInput => self.input_stmt(),
            TokenKind::KwOutput => self.output_stmt(),
            TokenKind::KwLet => self.const_let_stmt(),
            TokenKind::Ident(_) => self.let_stmt(),
            _ => {
                let found = self.peek().kind.describe();
                Err(self.error_here(format!(
                    "expected a statement (`input`, `output`, `let`, or `name = ...`), \
                     found {found}"
                )))
            }
        }
    }

    /// `[num, num]` — the bracketed bound pair shared by `in` range
    /// annotations and `range` override clauses.
    fn bracket_range(&mut self) -> PResult<InputRange> {
        let open = self.expect(&TokenKind::LBracket, "`[` to open the range")?;
        let lo = self.signed_number("the range's lower bound")?;
        self.expect(&TokenKind::Comma, "`,` between the range bounds")?;
        let hi = self.signed_number("the range's upper bound")?;
        let close = self.expect(&TokenKind::RBracket, "`]` to close the range")?;
        Ok(InputRange {
            lo,
            hi,
            span: open.span.to(close.span),
        })
    }

    /// `(range [num, num])?` — the optional override clause of a binding.
    fn range_clause(&mut self) -> PResult<Option<InputRange>> {
        if self.eat(&TokenKind::KwRange) {
            Ok(Some(self.bracket_range()?))
        } else {
            Ok(None)
        }
    }

    /// `input NAME ([WIDTH])? (in [num, num])? ;`
    fn input_stmt(&mut self) -> PResult<Stmt> {
        self.advance(); // `input`
        let name = self.expect_ident("an input name")?;
        let width = if self.at(&TokenKind::LBracket) {
            let open = self.advance();
            let w = self.integer("the vector width", 1, MAX_VECTOR_WIDTH)?;
            let close = self.expect(&TokenKind::RBracket, "`]` to close the vector width")?;
            Some((w, open.span.to(close.span)))
        } else {
            None
        };
        let range = if self.at(&TokenKind::KwIn) {
            self.advance();
            Some(self.bracket_range()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semi, "`;` after the input declaration")?;
        Ok(Stmt::Input { name, width, range })
    }

    /// `output NAME (= expr (range [num, num])?)? ;`
    fn output_stmt(&mut self) -> PResult<Stmt> {
        self.advance(); // `output`
        let name = self.expect_ident("an output name")?;
        let (expr, range) = if self.eat(&TokenKind::Eq) {
            let e = self.expr()?;
            let r = self.range_clause()?;
            (Some(e), r)
        } else {
            (None, None)
        };
        self.expect(&TokenKind::Semi, "`;` after the output declaration")?;
        Ok(Stmt::Output { name, expr, range })
    }

    /// `let NAME = '-'? NUMBER ;` — a named constant binding.
    fn const_let_stmt(&mut self) -> PResult<Stmt> {
        self.advance(); // `let`
        let name = self.expect_ident("a constant name after `let`")?;
        self.expect(&TokenKind::Eq, "`=` after the constant name")?;
        let start = self.peek().span;
        let negate = self.eat(&TokenKind::Minus);
        let value = match self.peek().kind {
            TokenKind::Number(v) => {
                let end = self.advance().span;
                Some((if negate { -v } else { v }, start.to(end)))
            }
            _ => None,
        };
        let Some((value, value_span)) = value else {
            let found = self.peek().kind.describe();
            return Err(self.error_here(format!(
                "`let` binds a named constant — expected a number, found {found}"
            )));
        };
        if matches!(
            self.peek().kind,
            TokenKind::Plus | TokenKind::Minus | TokenKind::Star | TokenKind::Slash
        ) {
            return Err(self.error_here(
                "`let` binds a named constant (a single number) — bind an expression \
                 with `name = ...;` instead",
            ));
        }
        self.expect(&TokenKind::Semi, "`;` after the constant binding")?;
        Ok(Stmt::ConstLet {
            name,
            value,
            value_span,
        })
    }

    /// `NAME = expr (range [num, num])? ;`
    fn let_stmt(&mut self) -> PResult<Stmt> {
        let name = self.expect_ident("a name")?;
        self.expect(&TokenKind::Eq, "`=` after the name")?;
        let expr = self.expr()?;
        let range = self.range_clause()?;
        self.expect(&TokenKind::Semi, "`;` after the statement")?;
        Ok(Stmt::Let { name, expr, range })
    }

    /// A possibly-signed numeric literal (used only in range annotations).
    fn signed_number(&mut self, what: &str) -> PResult<f64> {
        let negate = self.eat(&TokenKind::Minus);
        match self.peek().kind {
            TokenKind::Number(v) => {
                self.advance();
                Ok(if negate { -v } else { v })
            }
            _ => {
                let found = self.peek().kind.describe();
                Err(self.error_here(format!("expected {what} (a number), found {found}")))
            }
        }
    }

    /// An unsigned integer literal in `[min, max]` (vector widths,
    /// element indices, tap offsets).
    fn integer(&mut self, what: &str, min: usize, max: usize) -> PResult<usize> {
        match self.peek().kind {
            TokenKind::Number(v) if v.fract() == 0.0 && v >= 0.0 && v <= max as f64 => {
                let v = v as usize;
                if v < min {
                    return Err(
                        self.error_here(format!("expected {what} of at least {min}, found {v}"))
                    );
                }
                self.advance();
                Ok(v)
            }
            TokenKind::Number(v) => Err(self.error_here(format!(
                "expected {what} (an integer in {min}..={max}), found `{v}`"
            ))),
            _ => {
                let found = self.peek().kind.describe();
                Err(self.error_here(format!("expected {what} (an integer), found {found}")))
            }
        }
    }

    /// `expr := term (('+'|'-') term)*`
    fn expr(&mut self) -> PResult<Expr> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.term()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
    }

    /// `term := unary (('*'|'/') unary)*`
    fn term(&mut self) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
    }

    /// `unary := '-' unary | 'delay' unary | primary`
    ///
    /// Every nesting level of the expression grammar passes through here
    /// (parenthesised sub-expressions via `primary`, operator chains
    /// directly), so this is the one recursion-depth checkpoint.
    fn unary(&mut self) -> PResult<Expr> {
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(self.error_here(format!(
                "expression nesting is deeper than {MAX_EXPR_DEPTH} levels"
            )));
        }
        self.depth += 1;
        let result = self.unary_inner();
        self.depth -= 1;
        result
    }

    fn unary_inner(&mut self) -> PResult<Expr> {
        match self.peek().kind {
            TokenKind::Minus => {
                let minus = self.advance();
                let operand = self.unary()?;
                let span = minus.span.to(operand.span);
                // Fold `-literal` into the literal so negative
                // coefficients lower to a single constant node.
                if let ExprKind::Number(v) = operand.kind {
                    return Ok(Expr {
                        kind: ExprKind::Number(-v),
                        span,
                    });
                }
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnaryOp::Neg,
                        operand: Box::new(operand),
                    },
                    span,
                })
            }
            TokenKind::KwDelay => {
                let kw = self.advance();
                let operand = self.unary()?;
                let span = kw.span.to(operand.span);
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnaryOp::Delay,
                        operand: Box::new(operand),
                    },
                    span,
                })
            }
            _ => self.primary(),
        }
    }

    /// `primary := NUMBER | IDENT index? | '(' expr ')'`
    /// `index   := '[' (INT | 'n' ('-' INT)?) ']'`
    fn primary(&mut self) -> PResult<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Number(v) => {
                let span = self.advance().span;
                Ok(Expr {
                    kind: ExprKind::Number(v),
                    span,
                })
            }
            TokenKind::Ident(name) => {
                let span = self.advance().span;
                if self.at(&TokenKind::LBracket) {
                    return self.index_suffix(name, span);
                }
                Ok(Expr {
                    kind: ExprKind::Var(name),
                    span,
                })
            }
            TokenKind::LParen => {
                let open = self.advance();
                let inner = self.expr()?;
                let close = self.expect(&TokenKind::RParen, "`)` to close the parenthesis")?;
                Ok(Expr {
                    kind: inner.kind,
                    span: open.span.to(close.span),
                })
            }
            other => Err(self.error_here(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }

    /// The bracketed index after `base`: `[i]` (vector element) or
    /// `[n]` / `[n-k]` (tap-index sugar, current sample / `k` samples
    /// ago).
    fn index_suffix(&mut self, base: String, base_span: crate::Span) -> PResult<Expr> {
        self.advance(); // `[`
        let index = match self.peek().kind.clone() {
            // `x[n]` / `x[n-k]`: inside an index, `n` is the time index.
            TokenKind::Ident(n) if n == "n" => {
                self.advance();
                if self.eat(&TokenKind::Minus) {
                    IndexKind::Tap(self.integer("the tap offset", 0, MAX_TAP_DEPTH)?)
                } else {
                    IndexKind::Tap(0)
                }
            }
            TokenKind::Number(_) => {
                IndexKind::Element(self.integer("the element index", 0, MAX_VECTOR_WIDTH - 1)?)
            }
            other => {
                return Err(self.error_here(format!(
                    "expected an element index (`{base}[2]`) or a tap index \
                     (`{base}[n-1]`), found {}",
                    other.describe()
                )))
            }
        };
        let close = self.expect(&TokenKind::RBracket, "`]` to close the index")?;
        Ok(Expr {
            kind: ExprKind::Index { base, index },
            span: base_span.to(close.span),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    fn parse_one(src: &str) -> Stmt {
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 1, "{src}");
        p.stmts.into_iter().next().unwrap()
    }

    #[test]
    fn parses_the_issue_example() {
        let src = "input x in [-1, 1];\n\
                   t = 0.3*x;\n\
                   y_prev = delay y;\n\
                   y = t + 0.5*y_prev;\n\
                   output y;\n";
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 5);
        match &p.stmts[0] {
            Stmt::Input { name, width, range } => {
                assert_eq!(name.name, "x");
                assert!(width.is_none());
                let r = range.as_ref().unwrap();
                assert_eq!((r.lo, r.hi), (-1.0, 1.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.stmts[2] {
            Stmt::Let { name, expr, .. } => {
                assert_eq!(name.name, "y_prev");
                assert_eq!(expr.to_string(), "delay y");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parens() {
        let s = parse_one("y = (a + b) * c - d / -e;");
        match s {
            Stmt::Let { expr, .. } => {
                assert_eq!(expr.to_string(), "(a + b) * c - d / -e");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let s = parse_one("y = -0.5 * x;");
        match s {
            Stmt::Let { expr, .. } => match expr.kind {
                ExprKind::Binary { op, lhs, .. } => {
                    assert_eq!(op, BinaryOp::Mul);
                    assert_eq!(lhs.kind, ExprKind::Number(-0.5));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn output_with_inline_expression() {
        let s = parse_one("output y = a + 1;");
        match s {
            Stmt::Output { name, expr, range } => {
                assert_eq!(name.name, "y");
                assert_eq!(expr.unwrap().to_string(), "a + 1");
                assert!(range.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn vector_input_widths_parse_and_are_bounded() {
        match parse_one("input v[8] in [-2, 2];") {
            Stmt::Input { name, width, range } => {
                assert_eq!(name.name, "v");
                assert_eq!(width.unwrap().0, 8);
                assert_eq!(range.unwrap().lo, -2.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_one("input v[1];"),
            Stmt::Input {
                width: Some((1, _)),
                ..
            }
        ));
        let errs = parse("input v[0];").unwrap_err();
        assert!(errs[0].message.contains("at least 1"), "{:?}", errs[0]);
        let errs = parse("input v[100000];").unwrap_err();
        assert!(errs[0].message.contains("integer in"), "{:?}", errs[0]);
        let errs = parse("input v[2.5];").unwrap_err();
        assert!(errs[0].message.contains("integer"), "{:?}", errs[0]);
    }

    #[test]
    fn index_forms_parse() {
        let s = parse_one("y = v[2] + x[n-3] + x[n];");
        let Stmt::Let { expr, .. } = s else {
            panic!("not a let");
        };
        assert_eq!(expr.to_string(), "v[2] + x[n-3] + x[n]");
        // `n - 0` canonicalizes to the current sample.
        let s = parse_one("y = x[n - 0];");
        let Stmt::Let { expr, .. } = s else {
            panic!("not a let");
        };
        assert_eq!(expr.to_string(), "x[n]");
    }

    #[test]
    fn bad_indices_are_diagnosed() {
        let errs = parse("y = x[m];").unwrap_err();
        assert!(errs[0].message.contains("element index"), "{:?}", errs[0]);
        let errs = parse("y = x[n-1.5];").unwrap_err();
        assert!(errs[0].message.contains("tap offset"), "{:?}", errs[0]);
        let errs = parse("y = x[n-99999];").unwrap_err();
        assert!(errs[0].message.contains("tap offset"), "{:?}", errs[0]);
        let errs = parse("y = x[n+1];").unwrap_err();
        assert!(errs[0].message.contains("`]`"), "{:?}", errs[0]);
    }

    #[test]
    fn range_clauses_parse_on_bindings_and_outputs() {
        match parse_one("acc = a + b range [-1.5, 1.5];") {
            Stmt::Let { expr, range, .. } => {
                assert_eq!(expr.to_string(), "a + b");
                let r = range.unwrap();
                assert_eq!((r.lo, r.hi), (-1.5, 1.5));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_one("output y = a * b range [0, 4];") {
            Stmt::Output { range, .. } => assert_eq!(range.unwrap().hi, 4.0),
            other => panic!("unexpected {other:?}"),
        }
        // `range` is a keyword now: not a statement head, not a name.
        let errs = parse("range = 1;").unwrap_err();
        assert!(errs[0].message.contains("expected a statement"));
        // A bare output takes no range clause.
        let errs = parse("output y range [0, 1];").unwrap_err();
        assert!(errs[0].message.contains("`;`"), "{:?}", errs[0]);
    }

    #[test]
    fn reports_multiple_errors_with_recovery() {
        let errs = parse("t = ;\nu = 1 +;\nv = 2;").unwrap_err();
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].message.contains("expected an expression"));
        assert!(errs[1].message.contains("expected an expression"));
    }

    #[test]
    fn error_spans_point_at_the_offender() {
        let src = "y = 1 + ;";
        let errs = parse(src).unwrap_err();
        assert_eq!(errs[0].span, Span::new(8, 9));
    }

    #[test]
    fn missing_semicolon_is_reported() {
        let errs = parse("y = 1").unwrap_err();
        assert!(errs[0].message.contains("`;`"), "{:?}", errs[0]);
    }

    #[test]
    fn input_range_variants() {
        assert!(matches!(
            parse_one("input x;"),
            Stmt::Input { range: None, .. }
        ));
        let errs = parse("input x in [1 2];").unwrap_err();
        assert!(errs[0].message.contains("`,`"));
    }

    #[test]
    fn pathological_nesting_is_a_diagnostic_not_a_stack_overflow() {
        // A megabyte of `(` (as the server may receive from an untrusted
        // peer) must report, not recurse per byte until the stack dies.
        for deep in [
            format!("y = {}x{};", "(".repeat(1 << 20), ")".repeat(1 << 20)),
            format!("y = {}x;", "-".repeat(1 << 20)),
            format!("y = {}x;", "delay ".repeat(1 << 19)),
        ] {
            let errs = parse(&deep).unwrap_err();
            assert!(
                errs.iter().any(|e| e.message.contains("nesting")),
                "{:?}",
                errs.first()
            );
        }
        // Recovery still works: a later statement parses after the
        // too-deep one is skipped.
        let src = format!("y = {}x;\nz = 1;", "-".repeat(1 << 12));
        let errs = parse(&src).unwrap_err();
        assert_eq!(errs.len(), 1, "{errs:?}");
    }

    #[test]
    fn realistic_nesting_stays_accepted() {
        let src = format!("y = {}x{};", "(".repeat(100), ")".repeat(100));
        assert!(parse(&src).is_ok());
        let src = format!("y = {}x;", "-".repeat(200));
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn spans_cover_expressions() {
        let src = "y = a + b * c;";
        let p = parse(src).unwrap();
        match &p.stmts[0] {
            Stmt::Let { expr, .. } => {
                assert_eq!(&src[expr.span.start..expr.span.end], "a + b * c");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
