use std::fmt;

use crate::Span;

/// An identifier with its source location.
#[derive(Clone, Debug, PartialEq)]
pub struct Ident {
    /// The name.
    pub name: String,
    /// Where it was written.
    pub span: Span,
}

/// A binary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// Binding strength: higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::Add | BinaryOp::Sub => 1,
            BinaryOp::Mul | BinaryOp::Div => 2,
        }
    }

    /// The operator's surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

/// A unary operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// `-` (negation)
    Neg,
    /// `delay` (unit delay, `z⁻¹`)
    Delay,
}

/// An expression node.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source range of the whole expression.
    pub span: Span,
}

/// The payload of an `x[...]` reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// `x[i]` — element `i` of a vector input bank.
    Element(usize),
    /// `x[n-k]` — the signal `k` samples ago (`x[n]` is `k == 0`, the
    /// current sample). Lowers onto the shared, deduped delay chain of
    /// `x`.
    Tap(usize),
}

/// Expression shapes.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// A numeric constant. Unary minus applied directly to a literal is
    /// folded into the value at parse time, so coefficients like `-0.5`
    /// lower to a single `Const` node.
    Number(f64),
    /// A reference to a named value.
    Var(String),
    /// `base[i]` (vector-element reference) or `base[n-k]` (tap-index
    /// sugar for the deduped delay chain of `base`).
    Index {
        /// The indexed name.
        base: String,
        /// Which element or tap.
        index: IndexKind,
    },
    /// `-e` or `delay e`.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        operand: Box<Expr>,
    },
    /// `lhs op rhs`.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

/// One statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `input x in [lo, hi];` — declares an external input. Without the
    /// range annotation the input defaults to `[-1, 1]`.
    ///
    /// `input x[8] in [lo, hi];` declares a *bank* of 8 inputs, each
    /// with the same range, addressable as `x[0]` … `x[7]`.
    Input {
        /// The input's name.
        name: Ident,
        /// Bank width for `input x[8];` (with the span of the `[8]`
        /// text); `None` declares a plain scalar input.
        width: Option<(usize, Span)>,
        /// Optional `[lo, hi]` annotation (with its span).
        range: Option<InputRange>,
    },
    /// `name = expr;` — binds a name to the value of an expression.
    ///
    /// `name = expr range [lo, hi];` additionally *overrides* range
    /// analysis at the bound node: every engine reports the declared
    /// interval for it instead of the computed one.
    Let {
        /// The bound name.
        name: Ident,
        /// The defining expression.
        expr: Expr,
        /// Optional `range [lo, hi]` override clause.
        range: Option<InputRange>,
    },
    /// `let name = number;` — a *named constant binding*.  Semantically a
    /// plain binding to a literal, but syntactically marked: the one
    /// obvious mutation site of a coefficient-swept design (see
    /// `Session::with_coefficients` in `sna-core`).  Lowers to the same
    /// deduped `Const` node a bare literal would.
    ConstLet {
        /// The bound name.
        name: Ident,
        /// The constant value (sign folded in at parse time).
        value: f64,
        /// Source range of the value literal.
        value_span: Span,
    },
    /// `output name;` or `output name = expr;` — declares an output. The
    /// second form also binds `name` like a `let`, and accepts the same
    /// `range [lo, hi]` override clause.
    Output {
        /// The output's name.
        name: Ident,
        /// Present in the `output name = expr;` form.
        expr: Option<Expr>,
        /// Optional `range [lo, hi]` override clause (only legal in the
        /// `= expr` form).
        range: Option<InputRange>,
    },
}

/// The `in [lo, hi]` annotation of an input declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct InputRange {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Source range of the `[lo, hi]` text.
    pub span: Span,
}

/// A parsed `.sna` program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// The statements, in source order.
    pub stmts: Vec<Stmt>,
}

// ----------------------------------------------------------------------
// Pretty-printing (the canonical form used by round-trip tests)
// ----------------------------------------------------------------------

fn fmt_number(v: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    // `{}` on f64 prints the shortest string that round-trips, so the
    // canonical form re-parses to bit-identical constants.
    write!(f, "{v}")
}

impl Expr {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        match &self.kind {
            ExprKind::Number(v) => fmt_number(*v, f),
            ExprKind::Var(name) => f.write_str(name),
            ExprKind::Index { base, index } => match index {
                IndexKind::Element(i) => write!(f, "{base}[{i}]"),
                IndexKind::Tap(0) => write!(f, "{base}[n]"),
                IndexKind::Tap(k) => write!(f, "{base}[n-{k}]"),
            },
            ExprKind::Unary { op, operand } => {
                // Unary binds tighter than any binary operator.
                let needs_parens = min_prec > 3;
                if needs_parens {
                    f.write_str("(")?;
                }
                match op {
                    UnaryOp::Neg => f.write_str("-")?,
                    UnaryOp::Delay => f.write_str("delay ")?,
                }
                operand.fmt_prec(f, 4)?;
                if needs_parens {
                    f.write_str(")")?;
                }
                Ok(())
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let prec = op.precedence();
                let needs_parens = prec < min_prec;
                if needs_parens {
                    f.write_str("(")?;
                }
                lhs.fmt_prec(f, prec)?;
                write!(f, " {} ", op.symbol())?;
                // Left-associative: the right child needs one more level.
                rhs.fmt_prec(f, prec + 1)?;
                if needs_parens {
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// Prints ` range [lo, hi]` when a clause is present.
fn fmt_range_clause(range: &Option<InputRange>, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if let Some(r) = range {
        f.write_str(" range [")?;
        fmt_number(r.lo, f)?;
        f.write_str(", ")?;
        fmt_number(r.hi, f)?;
        f.write_str("]")?;
    }
    Ok(())
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Input { name, width, range } => {
                write!(f, "input {}", name.name)?;
                if let Some((w, _)) = width {
                    write!(f, "[{w}]")?;
                }
                if let Some(r) = range {
                    f.write_str(" in [")?;
                    fmt_number(r.lo, f)?;
                    f.write_str(", ")?;
                    fmt_number(r.hi, f)?;
                    f.write_str("]")?;
                }
                f.write_str(";")
            }
            Stmt::Let { name, expr, range } => {
                write!(f, "{} = {expr}", name.name)?;
                fmt_range_clause(range, f)?;
                f.write_str(";")
            }
            Stmt::ConstLet { name, value, .. } => {
                write!(f, "let {} = ", name.name)?;
                fmt_number(*value, f)?;
                f.write_str(";")
            }
            Stmt::Output { name, expr, range } => match expr {
                Some(e) => {
                    write!(f, "output {} = {e}", name.name)?;
                    fmt_range_clause(range, f)?;
                    f.write_str(";")
                }
                None => write!(f, "output {};", name.name),
            },
        }
    }
}

/// Prints the canonical source form: one statement per line.
impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for stmt in &self.stmts {
            writeln!(f, "{stmt}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num(v: f64) -> Expr {
        Expr {
            kind: ExprKind::Number(v),
            span: Span::default(),
        }
    }

    fn var(name: &str) -> Expr {
        Expr {
            kind: ExprKind::Var(name.into()),
            span: Span::default(),
        }
    }

    fn bin(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr {
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span: Span::default(),
        }
    }

    #[test]
    fn printing_inserts_minimal_parens() {
        // (a + b) * c needs parens; a + b * c does not.
        let sum = bin(BinaryOp::Add, var("a"), var("b"));
        let e = bin(BinaryOp::Mul, sum.clone(), var("c"));
        assert_eq!(e.to_string(), "(a + b) * c");
        let e2 = bin(
            BinaryOp::Add,
            var("a"),
            bin(BinaryOp::Mul, var("b"), var("c")),
        );
        assert_eq!(e2.to_string(), "a + b * c");
    }

    #[test]
    fn printing_respects_left_associativity() {
        // a - (b - c) keeps its parens; (a - b) - c drops them.
        let inner = bin(BinaryOp::Sub, var("b"), var("c"));
        let right_nested = bin(BinaryOp::Sub, var("a"), inner.clone());
        assert_eq!(right_nested.to_string(), "a - (b - c)");
        let left_nested = bin(
            BinaryOp::Sub,
            bin(BinaryOp::Sub, var("a"), var("b")),
            var("c"),
        );
        assert_eq!(left_nested.to_string(), "a - b - c");
    }

    #[test]
    fn unary_and_delay_print_compactly() {
        let e = Expr {
            kind: ExprKind::Unary {
                op: UnaryOp::Delay,
                operand: Box::new(var("y")),
            },
            span: Span::default(),
        };
        assert_eq!(e.to_string(), "delay y");
        let neg_sum = Expr {
            kind: ExprKind::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(bin(BinaryOp::Add, var("a"), var("b"))),
            },
            span: Span::default(),
        };
        assert_eq!(neg_sum.to_string(), "-(a + b)");
        assert_eq!(num(-0.5).to_string(), "-0.5");
    }

    #[test]
    fn index_and_range_forms_print_canonically() {
        let elem = Expr {
            kind: ExprKind::Index {
                base: "v".into(),
                index: IndexKind::Element(3),
            },
            span: Span::default(),
        };
        assert_eq!(elem.to_string(), "v[3]");
        let tap = |k: usize| Expr {
            kind: ExprKind::Index {
                base: "x".into(),
                index: IndexKind::Tap(k),
            },
            span: Span::default(),
        };
        assert_eq!(tap(0).to_string(), "x[n]");
        assert_eq!(tap(2).to_string(), "x[n-2]");

        let stmt = Stmt::Let {
            name: Ident {
                name: "acc".into(),
                span: Span::default(),
            },
            expr: bin(BinaryOp::Add, var("a"), var("b")),
            range: Some(InputRange {
                lo: -0.5,
                hi: 1.25,
                span: Span::default(),
            }),
        };
        assert_eq!(stmt.to_string(), "acc = a + b range [-0.5, 1.25];");
        let bank = Stmt::Input {
            name: Ident {
                name: "v".into(),
                span: Span::default(),
            },
            width: Some((4, Span::default())),
            range: Some(InputRange {
                lo: -1.0,
                hi: 1.0,
                span: Span::default(),
            }),
        };
        assert_eq!(bank.to_string(), "input v[4] in [-1, 1];");
    }
}
