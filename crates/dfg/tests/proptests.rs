//! Property-based tests for the dataflow-graph substrate.
//!
//! Random linear datapaths are generated structurally; the invariants tie
//! the analyses to the simulator: interval ranges enclose simulated
//! values, LTI gains predict simulated responses, and the combinational
//! view agrees with the sequential graph step by step.

use proptest::prelude::*;
use sna_dfg::{Dfg, DfgBuilder, LtiOptions, NodeId, RangeOptions, Simulator};
use sna_interval::Interval;

/// Recipe for one node of a random linear datapath.
#[derive(Clone, Debug)]
enum Step {
    AddPrev,
    SubPrev,
    MulConst(f64),
    Neg,
    Delay,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::AddPrev),
        Just(Step::SubPrev),
        (-1.5..1.5f64).prop_map(Step::MulConst),
        Just(Step::Neg),
        Just(Step::Delay),
    ]
}

/// Builds a random linear single-input datapath; feedback-free so every
/// analysis applies.
fn build(steps: &[Step]) -> Dfg {
    let mut b = DfgBuilder::new();
    let x = b.input("x");
    let mut nodes = vec![x];
    for s in steps {
        let last = *nodes.last().expect("nonempty");
        let prev = nodes[nodes.len().saturating_sub(2)];
        let n = match s {
            Step::AddPrev => b.add(last, prev),
            Step::SubPrev => b.sub(last, prev),
            Step::MulConst(k) => b.mul_const(*k, last),
            Step::Neg => b.neg(last),
            Step::Delay => b.delay(last),
        };
        nodes.push(n);
    }
    let y = *nodes.last().expect("nonempty");
    b.output("y", y);
    b.build().expect("structurally valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn interval_ranges_enclose_simulation(steps in proptest::collection::vec(step_strategy(), 1..12),
                                          inputs in proptest::collection::vec(-1.0..1.0f64, 16)) {
        let g = build(&steps);
        let ranges = g
            .ranges_interval(&[Interval::UNIT], &RangeOptions::default())
            .unwrap();
        let (_, yid) = g.outputs()[0].clone();
        let mut sim = Simulator::new(&g);
        for &x in &inputs {
            let out = sim.step(&[x]).unwrap()[0];
            prop_assert!(ranges[yid.index()].lo() - 1e-9 <= out
                         && out <= ranges[yid.index()].hi() + 1e-9,
                         "output {out} outside {}", ranges[yid.index()]);
        }
    }

    #[test]
    fn lti_ranges_also_enclose_simulation(steps in proptest::collection::vec(step_strategy(), 1..12),
                                          inputs in proptest::collection::vec(-1.0..1.0f64, 16)) {
        let g = build(&steps);
        let ranges = g.ranges_lti(&[Interval::UNIT], &LtiOptions::default()).unwrap();
        let (_, yid) = g.outputs()[0].clone();
        let mut sim = Simulator::new(&g);
        for &x in &inputs {
            let out = sim.step(&[x]).unwrap()[0];
            prop_assert!(ranges[yid.index()].lo() - 1e-6 <= out
                         && out <= ranges[yid.index()].hi() + 1e-6);
        }
    }

    #[test]
    fn dc_gain_matches_settled_step_response(steps in proptest::collection::vec(step_strategy(), 1..10)) {
        let g = build(&steps);
        let x = g.nodes().find(|(_, n)| matches!(n.op(), sna_dfg::Op::Input(_))).unwrap().0;
        let gains = g.impulse_gains(x, &LtiOptions::default()).unwrap();
        let dc = gains.per_output[0].dc;
        // Feed a constant 1.0 long enough to settle (feedback-free: depth
        // bounded by the delay count).
        let mut sim = Simulator::new(&g);
        let mut last = 0.0;
        for _ in 0..(steps.len() + 4) {
            last = sim.step(&[1.0]).unwrap()[0];
        }
        prop_assert!((last - dc).abs() < 1e-9 * (1.0 + dc.abs()),
                     "step response {last} vs dc gain {dc}");
    }

    #[test]
    fn combinational_view_matches_with_explicit_state(
        steps in proptest::collection::vec(step_strategy(), 1..10),
        inputs in proptest::collection::vec(-1.0..1.0f64, 8))
    {
        let g = build(&steps);
        let view = g.combinational_view();
        let mut sim = Simulator::new(&g);
        // Track delay state manually and feed it to the view.
        let mut state = vec![0.0; g.delay_nodes().len()];
        for &x in &inputs {
            let mut view_inputs = vec![x];
            view_inputs.extend_from_slice(&state);
            let expect = view.evaluate(&view_inputs).unwrap()[0];
            let got = sim.step(&[x]).unwrap()[0];
            prop_assert!((got - expect).abs() < 1e-12,
                         "sequential {got} vs view {expect}");
            // Update the manual state from the simulator's values.
            for (k, &d) in g.delay_nodes().iter().enumerate() {
                state[k] = sim.values()[d.index()];
            }
        }
    }

    #[test]
    fn topo_order_is_a_valid_schedule(steps in proptest::collection::vec(step_strategy(), 1..16)) {
        let g = build(&steps);
        let mut seen = vec![false; g.len()];
        for &id in g.topo_order() {
            for a in g.node(id).args() {
                if g.node(*a).op() != sna_dfg::Op::Delay {
                    prop_assert!(seen[a.index()], "{id} before its arg {a}");
                }
            }
            seen[id.index()] = true;
        }
    }

    #[test]
    fn evaluation_is_linear_in_the_input(steps in proptest::collection::vec(step_strategy(), 1..10),
                                         a in -2.0..2.0f64, b in -2.0..2.0f64) {
        // For linear graphs: f(a) + f(b) == f(a + b) (delays at zero; one
        // combinational evaluation).
        let g = build(&steps);
        let fa = g.evaluate(&[a]).unwrap()[0];
        let fb = g.evaluate(&[b]).unwrap()[0];
        let fab = g.evaluate(&[a + b]).unwrap()[0];
        prop_assert!((fa + fb - fab).abs() < 1e-9 * (1.0 + fab.abs()));
    }
}

/// `NodeId` round-trips through raw indices (used by serialization-ish
/// tooling).
#[test]
fn node_id_round_trip() {
    for i in [0usize, 1, 17, 10_000] {
        assert_eq!(NodeId::from_index(i).index(), i);
    }
}
