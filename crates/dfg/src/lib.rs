//! Dataflow-graph (DFG) substrate for symbolic noise analysis and
//! high-level synthesis.
//!
//! Every analysis in this reproduction of the DAC'08 SNA paper — interval /
//! affine range analysis, histogram noise propagation, bit-true fixed-point
//! simulation, scheduling and binding — operates on the same graph
//! representation built here:
//!
//! * [`Dfg`] — an immutable, validated dataflow graph of arithmetic nodes
//!   ([`Op`]), supporting sequential semantics through unit-[`Op::Delay`]
//!   nodes (feedback is legal only through delays);
//! * [`DfgBuilder`] — the only way to construct a [`Dfg`]; delays may be
//!   forward-declared and bound later to express feedback;
//! * [`Simulator`] — cycle-accurate `f64` reference simulation;
//! * range analysis (interval and affine, with fixpoint iteration across
//!   delays) in the [`Dfg::ranges_interval`] family;
//! * LTI analysis ([`Dfg::impulse_gains`]) computing per-source L1/L2/DC
//!   gains to every output — the error-transfer machinery for linear
//!   datapaths with feedback (the paper's Designs I–IV are all linear).
//!
//! # Example
//!
//! A one-pole IIR filter `y[n] = 0.5·y[n-1] + x[n]`:
//!
//! ```
//! use sna_dfg::DfgBuilder;
//!
//! # fn main() -> Result<(), sna_dfg::DfgError> {
//! let mut b = DfgBuilder::new();
//! let x = b.input("x");
//! let y_prev = b.delay_placeholder();
//! let half = b.constant(0.5);
//! let fb = b.mul(half, y_prev);
//! let y = b.add(x, fb);
//! b.bind_delay(y_prev, y)?;
//! b.output("y", y);
//! let dfg = b.build()?;
//!
//! let mut sim = sna_dfg::Simulator::new(&dfg);
//! assert_eq!(sim.step(&[1.0])?, vec![1.0]);  // y[0] = 1
//! assert_eq!(sim.step(&[0.0])?, vec![0.5]);  // y[1] = 0.5
//! assert_eq!(sim.step(&[0.0])?, vec![0.25]); // y[2] = 0.25
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dot;
mod error;
mod eval;
mod graph;
mod lti;
mod range;
mod unroll;
mod wire;

pub use builder::DfgBuilder;
pub use error::DfgError;
pub use eval::Simulator;
pub use graph::{Dfg, Node, NodeId, Op, OpCounts};
pub use lti::{ImpulseGains, LtiOptions, OutputGain};
pub use range::RangeOptions;
