use sna_interval::Interval;

use crate::graph::{combinational_topo, Node};
use crate::{Dfg, DfgError, NodeId, Op};

/// Incremental builder for [`Dfg`]s — the only way to construct one.
///
/// Arithmetic methods take already-created node ids, so a well-typed builder
/// program can only produce forward references through
/// [`DfgBuilder::delay_placeholder`] / [`DfgBuilder::bind_delay`], which is
/// exactly the legal way to express feedback.
///
/// # Example
///
/// ```
/// use sna_dfg::DfgBuilder;
///
/// # fn main() -> Result<(), sna_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let x = b.input("x");
/// let k = b.constant(3.0);
/// let y = b.mul(k, x);
/// b.output("y", y);
/// let dfg = b.build()?;
/// assert_eq!(dfg.evaluate(&[2.0])?, vec![6.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct DfgBuilder {
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
    input_names: Vec<String>,
    /// Delay nodes created via `delay_placeholder` that still need binding.
    pending_delays: Vec<NodeId>,
    /// Declared range overrides, `(node, interval)` in declaration order.
    overrides: Vec<(NodeId, Interval)>,
}

impl DfgBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: Op, args: Vec<NodeId>) -> NodeId {
        debug_assert_eq!(op.arity(), args.len());
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            op,
            args,
            name: None,
        });
        id
    }

    /// Declares an external input.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        let idx = self.input_names.len();
        let name = name.into();
        self.input_names.push(name.clone());
        let id = self.push(Op::Input(idx), Vec::new());
        self.nodes[id.0].name = Some(name);
        id
    }

    /// Declares a constant.
    pub fn constant(&mut self, value: f64) -> NodeId {
        self.push(Op::Const(value), Vec::new())
    }

    /// Adds `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Add, vec![a, b])
    }

    /// Adds `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Sub, vec![a, b])
    }

    /// Adds `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Mul, vec![a, b])
    }

    /// Adds `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Div, vec![a, b])
    }

    /// Adds `-a`.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        self.push(Op::Neg, vec![a])
    }

    /// Adds `k * a` for a scalar `k` (constant node plus multiply).
    pub fn mul_const(&mut self, k: f64, a: NodeId) -> NodeId {
        let c = self.constant(k);
        self.mul(c, a)
    }

    /// Adds a unit delay of an existing node.
    pub fn delay(&mut self, a: NodeId) -> NodeId {
        self.push(Op::Delay, vec![a])
    }

    /// Adds a chain of `n` unit delays of `a`, returning all tap outputs
    /// (`result[0]` = `a` delayed once, …).
    pub fn delay_chain(&mut self, a: NodeId, n: usize) -> Vec<NodeId> {
        let mut taps = Vec::with_capacity(n);
        let mut prev = a;
        for _ in 0..n {
            prev = self.delay(prev);
            taps.push(prev);
        }
        taps
    }

    /// Declares a delay whose source will be bound later (feedback).
    pub fn delay_placeholder(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            op: Op::Delay,
            args: Vec::new(),
            name: None,
        });
        self.pending_delays.push(id);
        id
    }

    /// Binds a placeholder delay to its source node.
    ///
    /// # Errors
    ///
    /// * [`DfgError::UnknownNode`] if either id is foreign or `delay` is not
    ///   a delay;
    /// * [`DfgError::DelayAlreadyBound`] when called twice on the same
    ///   placeholder.
    pub fn bind_delay(&mut self, delay: NodeId, source: NodeId) -> Result<(), DfgError> {
        if delay.0 >= self.nodes.len() || self.nodes[delay.0].op != Op::Delay {
            return Err(DfgError::UnknownNode { node: delay });
        }
        if source.0 >= self.nodes.len() {
            return Err(DfgError::UnknownNode { node: source });
        }
        if !self.nodes[delay.0].args.is_empty() {
            return Err(DfgError::DelayAlreadyBound { node: delay });
        }
        self.nodes[delay.0].args.push(source);
        self.pending_delays.retain(|&d| d != delay);
        Ok(())
    }

    /// Names a node (shows up in DOT exports and diagnostics).
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::UnknownNode`] for a foreign id.
    pub fn name(&mut self, node: NodeId, name: impl Into<String>) -> Result<(), DfgError> {
        if node.0 >= self.nodes.len() {
            return Err(DfgError::UnknownNode { node });
        }
        self.nodes[node.0].name = Some(name.into());
        Ok(())
    }

    /// Declares a named output.
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Declares a range override for a node: every range engine will
    /// report `interval` for it instead of the computed range — the
    /// designer-knowledge escape hatch behind the DSL's
    /// `range [lo, hi]` clause.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::UnknownNode`] for a foreign id.
    pub fn override_range(&mut self, node: NodeId, interval: Interval) -> Result<(), DfgError> {
        if node.0 >= self.nodes.len() {
            return Err(DfgError::UnknownNode { node });
        }
        self.overrides.retain(|(n, _)| *n != node);
        self.overrides.push((node, interval));
        Ok(())
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes were created yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Validates and finalizes the graph.
    ///
    /// # Errors
    ///
    /// * [`DfgError::UnboundDelay`] if a placeholder was never bound;
    /// * [`DfgError::NoOutputs`] / [`DfgError::DuplicateOutput`] for bad
    ///   output declarations;
    /// * [`DfgError::UnknownNode`] if an output references a foreign id;
    /// * [`DfgError::CombinationalCycle`] if a cycle avoids all delays.
    pub fn build(self) -> Result<Dfg, DfgError> {
        if let Some(&d) = self.pending_delays.first() {
            return Err(DfgError::UnboundDelay { node: d });
        }
        if self.outputs.is_empty() {
            return Err(DfgError::NoOutputs);
        }
        for (i, (name, node)) in self.outputs.iter().enumerate() {
            if node.0 >= self.nodes.len() {
                return Err(DfgError::UnknownNode { node: *node });
            }
            if self.outputs[..i].iter().any(|(n, _)| n == name) {
                return Err(DfgError::DuplicateOutput { name: name.clone() });
            }
        }
        let topo = combinational_topo(&self.nodes)?;
        let delays = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op == Op::Delay)
            .map(|(i, _)| NodeId(i))
            .collect();
        let mut overrides = vec![
            None;
            if self.overrides.is_empty() {
                0
            } else {
                self.nodes.len()
            }
        ];
        for (node, interval) in self.overrides {
            overrides[node.0] = Some(interval);
        }
        Ok(Dfg {
            nodes: self.nodes,
            outputs: self.outputs,
            input_names: self.input_names,
            topo,
            delays,
            overrides,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_graph() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        b.output("s", s);
        let g = b.build().unwrap();
        assert_eq!(g.n_inputs(), 2);
        assert_eq!(g.evaluate(&[1.0, 2.0]).unwrap(), vec![3.0]);
    }

    #[test]
    fn no_outputs_is_an_error() {
        let mut b = DfgBuilder::new();
        b.input("x");
        assert!(matches!(b.build(), Err(DfgError::NoOutputs)));
    }

    #[test]
    fn duplicate_output_names_are_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        b.output("y", x);
        b.output("y", x);
        assert!(matches!(b.build(), Err(DfgError::DuplicateOutput { .. })));
    }

    #[test]
    fn unbound_delay_is_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d = b.delay_placeholder();
        let s = b.add(x, d);
        b.output("y", s);
        assert!(matches!(b.build(), Err(DfgError::UnboundDelay { .. })));
    }

    #[test]
    fn double_binding_is_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d = b.delay_placeholder();
        b.bind_delay(d, x).unwrap();
        assert!(matches!(
            b.bind_delay(d, x),
            Err(DfgError::DelayAlreadyBound { .. })
        ));
    }

    #[test]
    fn bind_delay_validates_ids() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        assert!(matches!(
            b.bind_delay(x, x),
            Err(DfgError::UnknownNode { .. })
        ));
        let d = b.delay_placeholder();
        assert!(matches!(
            b.bind_delay(d, NodeId(42)),
            Err(DfgError::UnknownNode { .. })
        ));
    }

    #[test]
    fn feedback_through_delay_is_legal() {
        // y = x + 0.9·z⁻¹(y)
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let g = b.mul_const(0.9, fb);
        let y = b.add(x, g);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        assert!(b.build().is_ok());
    }

    #[test]
    fn delay_chain_produces_taps() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let taps = b.delay_chain(x, 3);
        assert_eq!(taps.len(), 3);
        let y = b.add(taps[2], x);
        b.output("y", y);
        let g = b.build().unwrap();
        assert_eq!(g.delay_nodes().len(), 3);
        let mut sim = crate::Simulator::new(&g);
        // x delayed by 3: first three steps see only the direct path.
        assert_eq!(sim.step(&[1.0]).unwrap(), vec![1.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn naming_nodes() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.neg(x);
        b.name(y, "minus_x").unwrap();
        assert!(b.name(NodeId(9), "nope").is_err());
        b.output("y", y);
        let g = b.build().unwrap();
        assert_eq!(g.node(y).name(), Some("minus_x"));
    }
}
