//! Time-unrolling: convert a sequential graph into a combinational one
//! computing `steps` consecutive iterations.
//!
//! Unrolling lets the purely combinational analyses (affine ranges, the
//! symbolic polynomial engine) reason about sequential designs over a
//! finite horizon — e.g. the transient error growth of an IIR filter in
//! its first `n` samples.

use crate::{Dfg, DfgBuilder, DfgError, NodeId, Op};

impl Dfg {
    /// Builds a combinational graph computing `steps` consecutive
    /// iterations of this graph.
    ///
    /// * inputs: `steps` copies of each original input, named
    ///   `"<name>@<t>"`, grouped by step (step-major order);
    /// * delays: step `0` reads the reset state (constant 0); step `t`
    ///   reads the delay's source value from step `t-1`;
    /// * outputs: `steps` copies of each original output, named
    ///   `"<name>@<t>"`;
    /// * range overrides: carried onto each step's copy of an
    ///   overridden *combinational* node. Overrides on delay nodes are
    ///   dropped (delay copies are aliases of other steps' nodes and
    ///   the shared reset constant — pinning those would corrupt
    ///   non-overridden ranges); only the sequential engines honor
    ///   delay-state overrides.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::NoOutputs`] when `steps == 0` (nothing to
    /// compute); construction errors cannot otherwise occur for a valid
    /// source graph.
    pub fn unroll(&self, steps: usize) -> Result<Dfg, DfgError> {
        if steps == 0 {
            return Err(DfgError::NoOutputs);
        }
        let mut b = DfgBuilder::new();
        // map[t][i] = node id of copy of node i at step t.
        let mut map: Vec<Vec<NodeId>> = Vec::with_capacity(steps);
        for t in 0..steps {
            let mut ids = vec![NodeId::from_index(usize::MAX); self.len()];
            // Delays first: they depend only on the previous step.
            //
            // A range override on a *delay* node is deliberately NOT
            // carried here: the delay's copy is a bare alias of the
            // previous step's source copy (or the shared reset
            // constant), so applying the override would pin a node the
            // designer never claimed anything about — narrowing input
            // copies or the reset constant below values the simulator
            // actually produces. Delay-state overrides are honored by
            // the sequential engines ([`Dfg::ranges_interval`] and the
            // LTI bound); the unrolled transient view has no node of
            // its own to attach them to.
            for &d in self.delay_nodes() {
                let src = self.node(d).args()[0];
                let value = if t == 0 {
                    b.constant(0.0) // reset state
                } else {
                    map[t - 1][src.index()]
                };
                ids[d.index()] = value;
            }
            // Combinational nodes in topological order.
            for &id in self.topo_order() {
                let node = self.node(id);
                let new_id = match node.op() {
                    Op::Input(i) => b.input(format!("{}@{t}", self.input_names()[i])),
                    Op::Const(c) => b.constant(c),
                    Op::Add => b.add(ids[node.args()[0].index()], ids[node.args()[1].index()]),
                    Op::Sub => b.sub(ids[node.args()[0].index()], ids[node.args()[1].index()]),
                    Op::Mul => b.mul(ids[node.args()[0].index()], ids[node.args()[1].index()]),
                    Op::Div => b.div(ids[node.args()[0].index()], ids[node.args()[1].index()]),
                    Op::Neg => b.neg(ids[node.args()[0].index()]),
                    Op::Delay => unreachable!("delays handled above"),
                };
                if let Some(name) = node.name() {
                    let _ = b.name(new_id, format!("{name}@{t}"));
                }
                // Each step's copy of an overridden combinational node
                // keeps the declared range (each copy is a node of its
                // own; see the delay caveat above).
                if let Some(r) = self.range_override(id) {
                    let _ = b.override_range(new_id, r);
                }
                ids[id.index()] = new_id;
            }
            for (name, out) in self.outputs() {
                b.output(format!("{name}@{t}"), ids[out.index()]);
            }
            map.push(ids);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    fn one_pole() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn unrolled_matches_simulation() {
        let g = one_pole();
        let n = 5;
        let u = g.unroll(n).unwrap();
        assert!(u.is_combinational());
        assert_eq!(u.n_inputs(), n);
        assert_eq!(u.outputs().len(), n);

        let inputs = [1.0, -0.5, 0.25, 0.0, 2.0];
        let flat: Vec<f64> = inputs.to_vec();
        let unrolled_out = u.evaluate(&flat).unwrap();

        let mut sim = Simulator::new(&g);
        for (t, &x) in inputs.iter().enumerate() {
            let expect = sim.step(&[x]).unwrap()[0];
            assert!(
                (unrolled_out[t] - expect).abs() < 1e-12,
                "step {t}: {} vs {expect}",
                unrolled_out[t]
            );
        }
    }

    #[test]
    fn unrolled_outputs_are_named_by_step() {
        let g = one_pole();
        let u = g.unroll(3).unwrap();
        let names: Vec<&str> = u.outputs().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["y@0", "y@1", "y@2"]);
        let inputs: Vec<&str> = u.input_names().iter().map(String::as_str).collect();
        assert_eq!(inputs, vec!["x@0", "x@1", "x@2"]);
    }

    #[test]
    fn zero_steps_is_rejected() {
        let g = one_pole();
        assert!(matches!(g.unroll(0), Err(DfgError::NoOutputs)));
    }

    #[test]
    fn combinational_overrides_are_carried_per_step_copy() {
        use sna_interval::Interval;
        let iv = |lo: f64, hi: f64| Interval::new(lo, hi).unwrap();

        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let s = b.mul_const(0.5, x);
        let d = b.delay(s);
        let y = b.add(s, d);
        b.override_range(s, iv(-0.25, 0.25)).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let u = g.unroll(2).unwrap();
        let muls: Vec<NodeId> = u
            .nodes()
            .filter(|(_, n)| n.op() == Op::Mul)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(muls.len(), 2);
        for m in muls {
            assert_eq!(u.range_override(m), Some(iv(-0.25, 0.25)));
        }
    }

    #[test]
    fn delay_overrides_never_leak_onto_aliased_copies() {
        use sna_interval::Interval;
        let iv = |lo: f64, hi: f64| Interval::new(lo, hi).unwrap();

        // d1 = delay x; d2 = delay d1 with the *d2 node* overridden to
        // [0.5, 1]. In the unrolled graph d2's copies alias the shared
        // reset constant (t ≤ 1) and x input copies (t ≥ 2); pinning
        // those would exclude values the simulator actually produces
        // (y@0 is exactly 0). The override is a sequential-engine
        // claim and must be dropped here.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d1 = b.delay(x);
        let d2 = b.delay(d1);
        let y = b.add(d1, d2);
        b.override_range(d2, iv(0.5, 1.0)).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();

        let u = g.unroll(3).unwrap();
        assert!(
            !u.has_range_overrides(),
            "no unrolled node may inherit the delay-state override"
        );
        let ranges = u
            .ranges_interval(&[iv(-1.0, 1.0); 3], &crate::RangeOptions::default())
            .unwrap();
        // y@0 = 0 exactly (both states are reset zeros); y@1 = x@0.
        let (_, y0) = &u.outputs()[0];
        assert_eq!(ranges[y0.index()], iv(0.0, 0.0));
        let (_, y1) = &u.outputs()[1];
        assert_eq!(ranges[y1.index()], iv(-1.0, 1.0));
        // The sequential engine still honors the claim on the graph
        // itself.
        let seq = g
            .ranges_interval(&[iv(-1.0, 1.0)], &crate::RangeOptions::default())
            .unwrap();
        assert_eq!(seq[d2.index()], iv(0.5, 1.0));
    }

    #[test]
    fn unrolling_a_combinational_graph_replicates_it() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul_const(3.0, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let u = g.unroll(2).unwrap();
        assert_eq!(u.evaluate(&[1.0, 2.0]).unwrap(), vec![3.0, 6.0]);
    }

    #[test]
    fn fir_unrolled_exposes_the_impulse_response() {
        // 3-tap FIR; unroll 4 steps, feed an impulse, read h on the outputs.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d1 = b.delay(x);
        let d2 = b.delay(d1);
        let t0 = b.mul_const(0.5, x);
        let t1 = b.mul_const(0.3, d1);
        let t2 = b.mul_const(0.2, d2);
        let s = b.add(t0, t1);
        let y = b.add(s, t2);
        b.output("y", y);
        let g = b.build().unwrap();
        let u = g.unroll(4).unwrap();
        let out = u.evaluate(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((out[0] - 0.5).abs() < 1e-12);
        assert!((out[1] - 0.3).abs() < 1e-12);
        assert!((out[2] - 0.2).abs() < 1e-12);
        assert!(out[3].abs() < 1e-12);
    }

    #[test]
    fn unrolled_graph_supports_affine_ranges() {
        // The whole point: combinational-only analyses now apply.
        let g = one_pole();
        let u = g.unroll(3).unwrap();
        let ranges = vec![sna_interval::Interval::UNIT; 3];
        let forms = u.ranges_affine(&ranges).unwrap();
        // y@2 = x2 + 0.5(x1 + 0.5 x0): range ±1.75.
        let (_, yid) = u.outputs()[2].clone();
        let iv = forms[yid.index()].to_interval();
        assert!((iv.hi() - 1.75).abs() < 1e-9, "{iv}");
    }
}
