//! Time-unrolling: convert a sequential graph into a combinational one
//! computing `steps` consecutive iterations.
//!
//! Unrolling lets the purely combinational analyses (affine ranges, the
//! symbolic polynomial engine) reason about sequential designs over a
//! finite horizon — e.g. the transient error growth of an IIR filter in
//! its first `n` samples.

use crate::{Dfg, DfgBuilder, DfgError, NodeId, Op};

impl Dfg {
    /// Builds a combinational graph computing `steps` consecutive
    /// iterations of this graph.
    ///
    /// * inputs: `steps` copies of each original input, named
    ///   `"<name>@<t>"`, grouped by step (step-major order);
    /// * delays: step `0` reads the reset state (constant 0); step `t`
    ///   reads the delay's source value from step `t-1`;
    /// * outputs: `steps` copies of each original output, named
    ///   `"<name>@<t>"`.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::NoOutputs`] when `steps == 0` (nothing to
    /// compute); construction errors cannot otherwise occur for a valid
    /// source graph.
    pub fn unroll(&self, steps: usize) -> Result<Dfg, DfgError> {
        if steps == 0 {
            return Err(DfgError::NoOutputs);
        }
        let mut b = DfgBuilder::new();
        // map[t][i] = node id of copy of node i at step t.
        let mut map: Vec<Vec<NodeId>> = Vec::with_capacity(steps);
        for t in 0..steps {
            let mut ids = vec![NodeId::from_index(usize::MAX); self.len()];
            // Delays first: they depend only on the previous step.
            for &d in self.delay_nodes() {
                let src = self.node(d).args()[0];
                let value = if t == 0 {
                    b.constant(0.0) // reset state
                } else {
                    map[t - 1][src.index()]
                };
                ids[d.index()] = value;
            }
            // Combinational nodes in topological order.
            for &id in self.topo_order() {
                let node = self.node(id);
                let new_id = match node.op() {
                    Op::Input(i) => b.input(format!("{}@{t}", self.input_names()[i])),
                    Op::Const(c) => b.constant(c),
                    Op::Add => b.add(ids[node.args()[0].index()], ids[node.args()[1].index()]),
                    Op::Sub => b.sub(ids[node.args()[0].index()], ids[node.args()[1].index()]),
                    Op::Mul => b.mul(ids[node.args()[0].index()], ids[node.args()[1].index()]),
                    Op::Div => b.div(ids[node.args()[0].index()], ids[node.args()[1].index()]),
                    Op::Neg => b.neg(ids[node.args()[0].index()]),
                    Op::Delay => unreachable!("delays handled above"),
                };
                if let Some(name) = node.name() {
                    let _ = b.name(new_id, format!("{name}@{t}"));
                }
                ids[id.index()] = new_id;
            }
            for (name, out) in self.outputs() {
                b.output(format!("{name}@{t}"), ids[out.index()]);
            }
            map.push(ids);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    fn one_pole() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn unrolled_matches_simulation() {
        let g = one_pole();
        let n = 5;
        let u = g.unroll(n).unwrap();
        assert!(u.is_combinational());
        assert_eq!(u.n_inputs(), n);
        assert_eq!(u.outputs().len(), n);

        let inputs = [1.0, -0.5, 0.25, 0.0, 2.0];
        let flat: Vec<f64> = inputs.to_vec();
        let unrolled_out = u.evaluate(&flat).unwrap();

        let mut sim = Simulator::new(&g);
        for (t, &x) in inputs.iter().enumerate() {
            let expect = sim.step(&[x]).unwrap()[0];
            assert!(
                (unrolled_out[t] - expect).abs() < 1e-12,
                "step {t}: {} vs {expect}",
                unrolled_out[t]
            );
        }
    }

    #[test]
    fn unrolled_outputs_are_named_by_step() {
        let g = one_pole();
        let u = g.unroll(3).unwrap();
        let names: Vec<&str> = u.outputs().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["y@0", "y@1", "y@2"]);
        let inputs: Vec<&str> = u.input_names().iter().map(String::as_str).collect();
        assert_eq!(inputs, vec!["x@0", "x@1", "x@2"]);
    }

    #[test]
    fn zero_steps_is_rejected() {
        let g = one_pole();
        assert!(matches!(g.unroll(0), Err(DfgError::NoOutputs)));
    }

    #[test]
    fn unrolling_a_combinational_graph_replicates_it() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul_const(3.0, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let u = g.unroll(2).unwrap();
        assert_eq!(u.evaluate(&[1.0, 2.0]).unwrap(), vec![3.0, 6.0]);
    }

    #[test]
    fn fir_unrolled_exposes_the_impulse_response() {
        // 3-tap FIR; unroll 4 steps, feed an impulse, read h on the outputs.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d1 = b.delay(x);
        let d2 = b.delay(d1);
        let t0 = b.mul_const(0.5, x);
        let t1 = b.mul_const(0.3, d1);
        let t2 = b.mul_const(0.2, d2);
        let s = b.add(t0, t1);
        let y = b.add(s, t2);
        b.output("y", y);
        let g = b.build().unwrap();
        let u = g.unroll(4).unwrap();
        let out = u.evaluate(&[1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!((out[0] - 0.5).abs() < 1e-12);
        assert!((out[1] - 0.3).abs() < 1e-12);
        assert!((out[2] - 0.2).abs() < 1e-12);
        assert!(out[3].abs() < 1e-12);
    }

    #[test]
    fn unrolled_graph_supports_affine_ranges() {
        // The whole point: combinational-only analyses now apply.
        let g = one_pole();
        let u = g.unroll(3).unwrap();
        let ranges = vec![sna_interval::Interval::UNIT; 3];
        let forms = u.ranges_affine(&ranges).unwrap();
        // y@2 = x2 + 0.5(x1 + 0.5 x0): range ±1.75.
        let (_, yid) = u.outputs()[2].clone();
        let iv = forms[yid.index()].to_interval();
        assert!((iv.hi() - 1.75).abs() < 1e-9, "{iv}");
    }
}
