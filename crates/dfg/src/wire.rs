//! Binary serialization of a [`Dfg`] for the persistent artifact store.
//!
//! The encoding (built on `sna_store::wire`, see that module for the
//! primitive rules) captures exactly the builder's inputs — nodes with
//! operations/arguments/names, declared outputs, input names, range
//! overrides — and **recomputes** everything derived on decode: the
//! topological order comes back through the same Kahn sort the builder
//! uses and the delay inventory is re-collected in node order, so a
//! decoded graph is indistinguishable from a freshly built one and a
//! tampered frame can never smuggle in an inconsistent evaluation
//! order.
//!
//! Decoding validates every structural invariant the builder enforces
//! (argument arity and bounds, input-index bijection, output presence
//! and uniqueness, override intervals) and reports any violation as a
//! [`WireError`] — store consumers treat that exactly like a CRC
//! mismatch and recompile.

use sna_interval::Interval;
use sna_store::{WireError, WireReader, WireWriter};

use crate::graph::{combinational_topo, Dfg, Node, NodeId, Op};

/// Per-node operation tags (stable across releases; append only).
const TAG_INPUT: u8 = 0;
const TAG_CONST: u8 = 1;
const TAG_ADD: u8 = 2;
const TAG_SUB: u8 = 3;
const TAG_MUL: u8 = 4;
const TAG_DIV: u8 = 5;
const TAG_NEG: u8 = 6;
const TAG_DELAY: u8 = 7;

impl Dfg {
    /// Encodes the graph for the artifact store. Constant values travel
    /// as exact bit patterns, so `from_wire(to_wire(g))` reproduces the
    /// graph bit-identically.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.len(self.nodes.len());
        for node in &self.nodes {
            match node.op {
                Op::Input(k) => {
                    w.u8(TAG_INPUT);
                    w.u64(k as u64);
                }
                Op::Const(c) => {
                    w.u8(TAG_CONST);
                    w.f64(c);
                }
                Op::Add => w.u8(TAG_ADD),
                Op::Sub => w.u8(TAG_SUB),
                Op::Mul => w.u8(TAG_MUL),
                Op::Div => w.u8(TAG_DIV),
                Op::Neg => w.u8(TAG_NEG),
                Op::Delay => w.u8(TAG_DELAY),
            }
            // Arity is determined by the op, so arguments need no count.
            for a in &node.args {
                w.u64(a.index() as u64);
            }
            match &node.name {
                Some(name) => {
                    w.u8(1);
                    w.str(name);
                }
                None => w.u8(0),
            }
        }
        w.len(self.input_names.len());
        for name in &self.input_names {
            w.str(name);
        }
        w.len(self.outputs.len());
        for (name, id) in &self.outputs {
            w.str(name);
            w.u64(id.index() as u64);
        }
        let overrides: Vec<(usize, Interval)> = self
            .overrides
            .iter()
            .enumerate()
            .filter_map(|(i, ov)| ov.map(|r| (i, r)))
            .collect();
        w.len(overrides.len());
        for (i, r) in overrides {
            w.u64(i as u64);
            w.f64(r.lo());
            w.f64(r.hi());
        }
        w.finish()
    }

    /// Decodes a graph written by [`Dfg::to_wire`], re-validating every
    /// builder invariant and recomputing the derived structures.
    ///
    /// # Errors
    ///
    /// [`WireError`] on any malformed, truncated, out-of-bounds or
    /// invariant-violating input — never panics.
    pub fn from_wire(bytes: &[u8]) -> Result<Dfg, WireError> {
        let mut r = WireReader::new(bytes);
        let n_nodes = r.read_count(2)?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let op = match r.u8()? {
                TAG_INPUT => Op::Input(usize::try_from(r.u64()?).map_err(wide)?),
                TAG_CONST => Op::Const(r.f64()?),
                TAG_ADD => Op::Add,
                TAG_SUB => Op::Sub,
                TAG_MUL => Op::Mul,
                TAG_DIV => Op::Div,
                TAG_NEG => Op::Neg,
                TAG_DELAY => Op::Delay,
                t => return Err(WireError::new(format!("unknown op tag {t}"))),
            };
            let mut args = Vec::with_capacity(op.arity());
            for _ in 0..op.arity() {
                args.push(node_ref(r.u64()?, n_nodes)?);
            }
            let name = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                f => return Err(WireError::new(format!("bad name flag {f}"))),
            };
            nodes.push(Node { op, args, name });
        }

        let n_inputs = r.read_count(8)?;
        let mut input_names = Vec::with_capacity(n_inputs);
        for _ in 0..n_inputs {
            input_names.push(r.str()?);
        }
        // Input payloads must be a bijection onto the declared names,
        // exactly as the builder constructs them.
        let mut seen = vec![false; n_inputs];
        for node in &nodes {
            if let Op::Input(k) = node.op {
                if k >= n_inputs || seen[k] {
                    return Err(WireError::new(format!("bad input index {k}")));
                }
                seen[k] = true;
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(WireError::new("declared input without an input node"));
        }

        let n_outputs = r.read_count(9)?;
        if n_outputs == 0 {
            return Err(WireError::new("graph declares no outputs"));
        }
        let mut outputs: Vec<(String, NodeId)> = Vec::with_capacity(n_outputs);
        for _ in 0..n_outputs {
            let name = r.str()?;
            if outputs.iter().any(|(n, _)| *n == name) {
                return Err(WireError::new(format!("duplicate output `{name}`")));
            }
            let id = node_ref(r.u64()?, n_nodes)?;
            outputs.push((name, id));
        }

        let n_overrides = r.read_count(24)?;
        let mut overrides = vec![None; n_nodes];
        for _ in 0..n_overrides {
            let id = node_ref(r.u64()?, n_nodes)?;
            let (lo, hi) = (r.f64()?, r.f64()?);
            let interval = Interval::new(lo, hi)
                .map_err(|e| WireError::new(format!("bad override interval: {e}")))?;
            overrides[id.index()] = Some(interval);
        }
        r.expect_end()?;

        let topo = combinational_topo(&nodes)
            .map_err(|e| WireError::new(format!("invalid graph: {e}")))?;
        let delays: Vec<NodeId> = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op == Op::Delay)
            .map(|(i, _)| NodeId(i))
            .collect();
        Ok(Dfg {
            nodes,
            outputs,
            input_names,
            topo,
            delays,
            overrides,
        })
    }
}

fn node_ref(raw: u64, n_nodes: usize) -> Result<NodeId, WireError> {
    let i = usize::try_from(raw).map_err(wide)?;
    if i < n_nodes {
        Ok(NodeId(i))
    } else {
        Err(WireError::new(format!(
            "node reference {i} out of range (graph has {n_nodes})"
        )))
    }
}

fn wide<E>(_: E) -> WireError {
    WireError::new("index exceeds usize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn iir() -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d = b.delay_placeholder();
        let k = b.constant(0.5);
        let prod = b.mul(k, d);
        let y = b.add(x, prod);
        b.name(y, "y").unwrap();
        b.bind_delay(d, y).unwrap();
        b.override_range(y, Interval::new(-2.0, 2.0).unwrap())
            .unwrap();
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn round_trips_bit_identically() {
        let g = iir();
        let decoded = Dfg::from_wire(&g.to_wire()).unwrap();
        assert_eq!(decoded.shape_signature(), g.shape_signature());
        assert_eq!(decoded.const_values(), g.const_values());
        assert_eq!(decoded.topo_order(), g.topo_order());
        assert_eq!(decoded.delay_nodes(), g.delay_nodes());
        assert_eq!(decoded.input_names(), g.input_names());
        assert_eq!(decoded.outputs(), g.outputs());
        // And the round trip is a fixpoint at the byte level.
        assert_eq!(decoded.to_wire(), g.to_wire());
    }

    #[test]
    fn rejects_malformed_frames_without_panicking() {
        let good = iir().to_wire();
        // Truncations at every prefix length must error, never panic.
        for cut in 0..good.len() {
            assert!(Dfg::from_wire(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Flipping any single byte must never produce a *panic*; it may
        // produce a valid-but-different graph (e.g. a constant bit) or
        // an error, but nothing worse.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0xA5;
            let _ = Dfg::from_wire(&bad);
        }
    }

    #[test]
    fn rejects_structural_violations() {
        // An out-of-range argument reference.
        let mut w = WireWriter::new();
        w.len(1);
        w.u8(TAG_NEG);
        w.u64(7); // arg out of range
        w.u8(0);
        w.len(0);
        w.len(0);
        w.len(0);
        assert!(Dfg::from_wire(&w.finish()).is_err());

        // A combinational self-loop (no delay on the cycle).
        let mut w = WireWriter::new();
        w.len(1);
        w.u8(TAG_NEG);
        w.u64(0); // self-reference
        w.u8(0);
        w.len(0); // inputs
        w.len(1); // outputs
        w.str("y");
        w.u64(0);
        w.len(0); // overrides
        assert!(Dfg::from_wire(&w.finish()).is_err());
    }
}
