use crate::{Dfg, DfgError, NodeId, Op};

impl Dfg {
    /// Evaluates the graph combinationally: one [`Simulator`] step from the
    /// all-zero delay state.
    ///
    /// # Errors
    ///
    /// * [`DfgError::WrongInputCount`] for a mis-sized input slice;
    /// * [`DfgError::DivisionByZero`] when a division denominator is 0.
    pub fn evaluate(&self, inputs: &[f64]) -> Result<Vec<f64>, DfgError> {
        Simulator::new(self).step(inputs)
    }

    /// Evaluates and also returns every node's value (used by analyses that
    /// need intermediate signals).
    ///
    /// # Errors
    ///
    /// Same as [`Dfg::evaluate`].
    pub fn evaluate_all(&self, inputs: &[f64]) -> Result<Vec<f64>, DfgError> {
        let mut sim = Simulator::new(self);
        sim.step(inputs)?;
        Ok(sim.values().to_vec())
    }
}

/// Cycle-accurate `f64` simulator: delays hold state across
/// [`Simulator::step`] calls.
///
/// # Example
///
/// A two-tap moving average `y[n] = (x[n] + x[n-1]) / 2`:
///
/// ```
/// use sna_dfg::{DfgBuilder, Simulator};
///
/// # fn main() -> Result<(), sna_dfg::DfgError> {
/// let mut b = DfgBuilder::new();
/// let x = b.input("x");
/// let xd = b.delay(x);
/// let s = b.add(x, xd);
/// let y = b.mul_const(0.5, s);
/// b.output("y", y);
/// let dfg = b.build()?;
///
/// let mut sim = Simulator::new(&dfg);
/// assert_eq!(sim.step(&[2.0])?, vec![1.0]);
/// assert_eq!(sim.step(&[4.0])?, vec![3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    dfg: &'a Dfg,
    /// Current value of every node (delays: their state).
    values: Vec<f64>,
    /// Additive injection applied to node outputs during the next step
    /// (used by impulse-response analysis).
    injection: Vec<f64>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with all delay states at 0.
    pub fn new(dfg: &'a Dfg) -> Self {
        Simulator {
            dfg,
            values: vec![0.0; dfg.len()],
            injection: vec![0.0; dfg.len()],
        }
    }

    /// Resets all state (and pending injections) to zero.
    pub fn reset(&mut self) {
        self.values.fill(0.0);
        self.injection.fill(0.0);
    }

    /// The value of every node after the last step (delay nodes: their
    /// current state).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Schedules an additive injection of `amount` onto `node`'s output for
    /// the next step only.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::UnknownNode`] for a foreign id.
    pub fn inject(&mut self, node: NodeId, amount: f64) -> Result<(), DfgError> {
        self.dfg.check_node(node)?;
        self.injection[node.index()] += amount;
        Ok(())
    }

    /// Advances one cycle: computes all combinational nodes from the inputs
    /// and current delay states, produces the outputs, then latches new
    /// delay states.
    ///
    /// # Errors
    ///
    /// * [`DfgError::WrongInputCount`] for a mis-sized input slice;
    /// * [`DfgError::DivisionByZero`] when a division denominator is 0.
    pub fn step(&mut self, inputs: &[f64]) -> Result<Vec<f64>, DfgError> {
        if inputs.len() != self.dfg.n_inputs() {
            return Err(DfgError::WrongInputCount {
                expected: self.dfg.n_inputs(),
                got: inputs.len(),
            });
        }
        for &id in self.dfg.topo_order() {
            let node = self.dfg.node(id);
            let v = match node.op() {
                Op::Input(i) => inputs[i],
                Op::Const(c) => c,
                Op::Add => {
                    self.values[node.args()[0].index()] + self.values[node.args()[1].index()]
                }
                Op::Sub => {
                    self.values[node.args()[0].index()] - self.values[node.args()[1].index()]
                }
                Op::Mul => {
                    self.values[node.args()[0].index()] * self.values[node.args()[1].index()]
                }
                Op::Div => {
                    let d = self.values[node.args()[1].index()];
                    if d == 0.0 {
                        return Err(DfgError::DivisionByZero { node: id });
                    }
                    self.values[node.args()[0].index()] / d
                }
                Op::Neg => -self.values[node.args()[0].index()],
                Op::Delay => unreachable!("delays are excluded from the topo order"),
            };
            self.values[id.index()] = v + self.injection[id.index()];
            self.injection[id.index()] = 0.0;
        }
        let outputs = self
            .dfg
            .outputs()
            .iter()
            .map(|&(_, id)| self.values[id.index()])
            .collect();
        // Latch delay states for the next cycle (+injections on the delay
        // output itself apply when the state is *read*, i.e. next step).
        let mut next_states: Vec<(usize, f64)> = Vec::with_capacity(self.dfg.delay_nodes().len());
        for &d in self.dfg.delay_nodes() {
            let src = self.dfg.node(d).args()[0];
            next_states.push((d.index(), self.values[src.index()]));
        }
        for (idx, v) in next_states {
            self.values[idx] = v + self.injection[idx];
            self.injection[idx] = 0.0;
        }
        Ok(outputs)
    }

    /// Runs the simulator over a sequence of input frames, collecting one
    /// output frame per step.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::step`].
    pub fn run(&mut self, frames: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, DfgError> {
        frames.iter().map(|f| self.step(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn accumulator() -> Dfg {
        // acc[n] = acc[n-1] + x[n]
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let prev = b.delay_placeholder();
        let acc = b.add(x, prev);
        b.bind_delay(prev, acc).unwrap();
        b.output("acc", acc);
        b.build().unwrap()
    }

    #[test]
    fn combinational_evaluation() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let d = b.sub(x, y);
        let n = b.neg(d);
        let q = b.div(x, y);
        b.output("neg_diff", n);
        b.output("quot", q);
        let g = b.build().unwrap();
        assert_eq!(g.evaluate(&[6.0, 2.0]).unwrap(), vec![-4.0, 3.0]);
    }

    #[test]
    fn wrong_input_count_is_reported() {
        let g = accumulator();
        assert!(matches!(
            g.evaluate(&[1.0, 2.0]),
            Err(DfgError::WrongInputCount {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn division_by_zero_is_reported() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let q = b.div(x, y);
        b.output("q", q);
        let g = b.build().unwrap();
        assert!(matches!(
            g.evaluate(&[1.0, 0.0]),
            Err(DfgError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn accumulator_integrates() {
        let g = accumulator();
        let mut sim = Simulator::new(&g);
        let out = sim.run(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert_eq!(out, vec![vec![1.0], vec![3.0], vec![6.0]]);
        sim.reset();
        assert_eq!(sim.step(&[5.0]).unwrap(), vec![5.0]);
    }

    #[test]
    fn injection_applies_once() {
        let g = accumulator();
        let mut sim = Simulator::new(&g);
        sim.inject(g.outputs()[0].1, 10.0).unwrap();
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![10.0]);
        // Injection consumed; the feedback still carries it (by design: the
        // injected value entered the accumulator state).
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![10.0]);
    }

    #[test]
    fn evaluate_all_exposes_intermediates() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(3.0, x);
        let y = b.add(t, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let vals = g.evaluate_all(&[2.0]).unwrap();
        assert_eq!(vals[t.index()], 6.0);
        assert_eq!(vals[y.index()], 8.0);
    }
}
