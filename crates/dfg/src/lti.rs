//! LTI (linear time-invariant) analysis: noise transfer gains.
//!
//! For a *linear* datapath (all multiplications have at least one
//! signal-independent operand; no signal-dependent divisors) the error
//! injected at any node propagates to each output through an LTI system.
//! Its impulse response `h[k]` gives the three gains SNA needs:
//!
//! * `l2²  = Σ h²` — scales the *variance* of a white noise source;
//! * `l1   = Σ|h|` — scales the worst-case *bounds* of a bounded source;
//! * `dc   = Σ h`  — scales the *mean* of a biased source (e.g. truncation).
//!
//! Gains are measured operationally: simulate the graph with zero inputs,
//! inject a unit impulse at the node, and record the outputs until the
//! response decays.  This works for feedback structures (IIR) without any
//! transfer-function algebra and is exact for linear graphs.

use sna_interval::Interval;

use crate::range::first_nonlinear_node;
use crate::{Dfg, DfgError, NodeId, Simulator};

/// Options for impulse-response gain extraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LtiOptions {
    /// Hard cap on simulated steps.
    pub max_steps: usize,
    /// The response is considered decayed when `Σ|h|` grows by less than
    /// `tolerance` relative for `settle_steps` consecutive steps.
    pub tolerance: f64,
    /// Consecutive quiet steps required to declare convergence.
    pub settle_steps: usize,
}

impl Default for LtiOptions {
    fn default() -> Self {
        LtiOptions {
            max_steps: 100_000,
            tolerance: 1e-12,
            settle_steps: 8,
        }
    }
}

/// Per-output gains of the error-transfer path from one injection node.
#[derive(Clone, Debug, PartialEq)]
pub struct ImpulseGains {
    /// The injection node.
    pub source: NodeId,
    /// Per declared output: `(l1, l2_squared, dc)`.
    pub per_output: Vec<OutputGain>,
}

/// Gains toward a single output.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct OutputGain {
    /// `Σ |h[k]|` — bound gain.
    pub l1: f64,
    /// `Σ h[k]²` — variance gain.
    pub l2_squared: f64,
    /// `Σ h[k]` — mean (DC) gain.
    pub dc: f64,
}

impl Dfg {
    /// Whether the datapath is linear in its signals (constant coefficient
    /// multiplies and divides only).
    pub fn is_linear(&self) -> bool {
        first_nonlinear_node(self).is_none()
    }

    /// Verifies linearity.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::NonlinearNode`] naming the first offending node.
    pub fn require_linear(&self) -> Result<(), DfgError> {
        match first_nonlinear_node(self) {
            None => Ok(()),
            Some(node) => Err(DfgError::NonlinearNode { node }),
        }
    }

    /// Measures the impulse-response gains from `source` to every output.
    ///
    /// # Errors
    ///
    /// * [`DfgError::NonlinearNode`] if the graph is not linear;
    /// * [`DfgError::UnknownNode`] for a foreign id;
    /// * [`DfgError::UnstableImpulse`] when the response does not decay
    ///   within `opts.max_steps` (unstable feedback);
    /// * simulation errors ([`DfgError::DivisionByZero`]) are propagated.
    pub fn impulse_gains(
        &self,
        source: NodeId,
        opts: &LtiOptions,
    ) -> Result<ImpulseGains, DfgError> {
        // One simulation core ([`Dfg::impulse_response`]) serves both
        // entry points, so the aggregates cannot drift apart.
        self.impulse_response(source, opts).map(|(g, _)| g)
    }

    /// Like [`Dfg::impulse_gains`], but also returns the raw per-output
    /// impulse-response *sequences* `h[k]` (one `Vec<f64>` per declared
    /// output, step-major truncated at the decay point).  The aggregate
    /// gains are accumulated by the identical code path, so they are
    /// bit-identical to [`Dfg::impulse_gains`]'s.
    ///
    /// Callers that keep the sequences (e.g. a gain model supporting
    /// incremental coefficient updates) can recombine them without
    /// re-simulating.
    ///
    /// # Errors
    ///
    /// Same as [`Dfg::impulse_gains`].
    #[allow(clippy::type_complexity)]
    pub fn impulse_response(
        &self,
        source: NodeId,
        opts: &LtiOptions,
    ) -> Result<(ImpulseGains, Vec<Vec<f64>>), DfgError> {
        self.require_linear()?;
        self.check_node(source)?;
        let zeros = vec![0.0; self.n_inputs()];
        // Lockstep baseline: graphs with additive constants have a nonzero
        // zero-input response; the impulse response is the *difference*
        // between the injected run and the baseline run.
        let mut sim = Simulator::new(self);
        let mut baseline = Simulator::new(self);
        sim.inject(source, 1.0)?;
        let n_out = self.outputs().len();
        let mut gains = vec![OutputGain::default(); n_out];
        let mut seqs: Vec<Vec<f64>> = vec![Vec::new(); n_out];
        let mut quiet = 0usize;
        for step in 0..opts.max_steps {
            let out = sim.step(&zeros)?;
            let base = baseline.step(&zeros)?;
            let mut increment = 0.0;
            for (k, g) in gains.iter_mut().enumerate() {
                let h = out[k] - base[k];
                g.l1 += h.abs();
                g.l2_squared += h * h;
                g.dc += h;
                seqs[k].push(h);
                increment += h.abs();
            }
            let scale: f64 = gains.iter().map(|g| g.l1).sum::<f64>().max(1e-300);
            if increment / scale < opts.tolerance {
                quiet += 1;
                if quiet >= opts.settle_steps {
                    return Ok((
                        ImpulseGains {
                            source,
                            per_output: gains,
                        },
                        seqs,
                    ));
                }
            } else {
                quiet = 0;
            }
            if self.is_combinational() && step == 0 {
                return Ok((
                    ImpulseGains {
                        source,
                        per_output: gains,
                    },
                    seqs,
                ));
            }
        }
        Err(DfgError::UnstableImpulse {
            node: source,
            steps: opts.max_steps,
        })
    }

    /// Impulse gains from every arithmetic node (the usual noise-injection
    /// set: every rounding site), in node-id order.
    ///
    /// # Errors
    ///
    /// Same as [`Dfg::impulse_gains`].
    pub fn all_impulse_gains(&self, opts: &LtiOptions) -> Result<Vec<ImpulseGains>, DfgError> {
        self.nodes()
            .filter(|(_, n)| n.op().is_arithmetic() || matches!(n.op(), crate::Op::Input(_)))
            .map(|(id, _)| self.impulse_gains(id, opts))
            .collect()
    }

    /// Per-node L1 impulse gains (`Σ|h|` at *every* node, not just the
    /// outputs) from one injection point.
    ///
    /// # Errors
    ///
    /// Same as [`Dfg::impulse_gains`].
    pub fn node_impulse_l1(&self, source: NodeId, opts: &LtiOptions) -> Result<Vec<f64>, DfgError> {
        self.require_linear()?;
        self.check_node(source)?;
        let zeros = vec![0.0; self.n_inputs()];
        let mut sim = Simulator::new(self);
        let mut baseline = Simulator::new(self);
        sim.inject(source, 1.0)?;
        let mut l1 = vec![0.0; self.len()];
        let mut quiet = 0usize;
        for _ in 0..opts.max_steps {
            sim.step(&zeros)?;
            baseline.step(&zeros)?;
            let mut increment = 0.0;
            for (acc, (&a, &b)) in l1
                .iter_mut()
                .zip(sim.values().iter().zip(baseline.values().iter()))
            {
                let h = (a - b).abs();
                *acc += h;
                increment += h;
            }
            let scale: f64 = l1.iter().sum::<f64>().max(1e-300);
            if increment / scale < opts.tolerance {
                quiet += 1;
                if quiet >= opts.settle_steps {
                    return Ok(l1);
                }
            } else {
                quiet = 0;
            }
        }
        Err(DfgError::UnstableImpulse {
            node: source,
            steps: opts.max_steps,
        })
    }

    /// Per-node value ranges for *linear* sequential graphs via L1 impulse
    /// gains: sound and convergent even where the interval fixpoint
    /// diverges (e.g. high-order IIR filters with `Σ|aₖ| ≥ 1`).
    ///
    /// `range(n) = center(n) ± Σᵢ l1ᵢ(n)·rad(inputᵢ)` where `center` is the
    /// settled response to all inputs held at their midpoints.
    ///
    /// A node carrying a [range override](Dfg::range_override) reports
    /// the declared interval instead of its L1 bound (the override pins
    /// that node's reported range; other nodes keep their global
    /// impulse-based bounds).
    ///
    /// # Errors
    ///
    /// * [`DfgError::NonlinearNode`] for nonlinear graphs;
    /// * [`DfgError::WrongInputCount`] for mis-sized ranges;
    /// * [`DfgError::UnstableImpulse`] when a response fails to decay.
    pub fn ranges_lti(
        &self,
        input_ranges: &[Interval],
        opts: &LtiOptions,
    ) -> Result<Vec<Interval>, DfgError> {
        self.require_linear()?;
        if input_ranges.len() != self.n_inputs() {
            return Err(DfgError::WrongInputCount {
                expected: self.n_inputs(),
                got: input_ranges.len(),
            });
        }
        // Settled center response to midpoint inputs.
        let mids: Vec<f64> = input_ranges.iter().map(Interval::mid).collect();
        let mut sim = Simulator::new(self);
        let mut center = vec![0.0; self.len()];
        let mut quiet = 0usize;
        let mut settled = false;
        for _ in 0..opts.max_steps {
            sim.step(&mids)?;
            let mut delta = 0.0;
            let mut scale = 0.0;
            for (c, &v) in center.iter_mut().zip(sim.values().iter()) {
                delta += (v - *c).abs();
                scale += v.abs();
                *c = v;
            }
            if delta <= opts.tolerance * (1.0 + scale) {
                quiet += 1;
                if quiet >= opts.settle_steps {
                    settled = true;
                    break;
                }
            } else {
                quiet = 0;
            }
        }
        if !settled {
            return Err(DfgError::UnstableImpulse {
                node: NodeId(0),
                steps: opts.max_steps,
            });
        }
        // Radii from per-input L1 gains.
        let mut rad = vec![0.0; self.len()];
        for (id, node) in self.nodes() {
            if let crate::Op::Input(i) = node.op() {
                let r = input_ranges[i].rad();
                if r == 0.0 {
                    continue;
                }
                let l1 = self.node_impulse_l1(id, opts)?;
                for (acc, g) in rad.iter_mut().zip(l1.iter()) {
                    *acc += r * g;
                }
            }
        }
        Ok(center
            .iter()
            .zip(rad.iter())
            .enumerate()
            .map(|(i, (&c, &r))| {
                self.range_override(NodeId(i))
                    .unwrap_or_else(|| Interval::centered(c, r))
            })
            .collect())
    }

    /// Range analysis that works on any graph this crate supports: the
    /// interval fixpoint where it converges, the LTI L1 bound as a fallback
    /// for linear graphs whose fixpoint diverges.
    ///
    /// # Errors
    ///
    /// Failures of the fallback are propagated; nonlinear graphs whose
    /// interval fixpoint diverges are reported as divergent.
    pub fn ranges_auto(
        &self,
        input_ranges: &[Interval],
        ropts: &crate::RangeOptions,
        lopts: &LtiOptions,
    ) -> Result<Vec<Interval>, DfgError> {
        match self.ranges_interval(input_ranges, ropts) {
            Ok(r) => Ok(r),
            Err(DfgError::RangeDivergence { .. }) if self.is_linear() => {
                self.ranges_lti(input_ranges, lopts)
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    #[test]
    fn combinational_gain_is_path_gain() {
        // y = 3x + x = 4x; injecting at the "3x" node contributes 1.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(3.0, x);
        let y = b.add(t, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let gains = g.impulse_gains(t, &LtiOptions::default()).unwrap();
        assert_eq!(gains.per_output.len(), 1);
        let og = gains.per_output[0];
        assert!((og.l1 - 1.0).abs() < 1e-12);
        assert!((og.l2_squared - 1.0).abs() < 1e-12);
        assert!((og.dc - 1.0).abs() < 1e-12);
        // Injecting at the input sees the full gain 4.
        let gains = g.impulse_gains(x, &LtiOptions::default()).unwrap();
        assert!((gains.per_output[0].l1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn one_pole_iir_gains_match_geometric_series() {
        // y[n] = a·y[n-1] + x[n] with a = 0.5:
        // h = [1, a, a², …]; l1 = 1/(1-a) = 2; l2² = 1/(1-a²) = 4/3; dc = 2.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let gains = g.impulse_gains(y, &LtiOptions::default()).unwrap();
        let og = gains.per_output[0];
        assert!((og.l1 - 2.0).abs() < 1e-9, "l1 = {}", og.l1);
        assert!((og.l2_squared - 4.0 / 3.0).abs() < 1e-9);
        assert!((og.dc - 2.0).abs() < 1e-9);
    }

    #[test]
    fn alternating_pole_has_smaller_dc_than_l1() {
        // a = -0.5: dc = 1/(1+0.5) = 2/3, l1 = 2, l2² = 4/3.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(-0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let og = g
            .impulse_gains(y, &LtiOptions::default())
            .unwrap()
            .per_output[0];
        assert!((og.dc - 2.0 / 3.0).abs() < 1e-9);
        assert!((og.l1 - 2.0).abs() < 1e-9);
        assert!((og.l2_squared - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn unstable_loop_is_detected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(1.01, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let opts = LtiOptions {
            max_steps: 2_000,
            ..LtiOptions::default()
        };
        assert!(matches!(
            g.impulse_gains(y, &opts),
            Err(DfgError::UnstableImpulse { .. })
        ));
    }

    #[test]
    fn nonlinear_graphs_are_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let sq = b.mul(x, x);
        b.output("y", sq);
        let g = b.build().unwrap();
        assert!(!g.is_linear());
        assert!(matches!(
            g.impulse_gains(x, &LtiOptions::default()),
            Err(DfgError::NonlinearNode { .. })
        ));
    }

    #[test]
    fn all_gains_cover_arithmetic_and_inputs() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(0.25, x);
        let y = b.add(t, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let all = g.all_impulse_gains(&LtiOptions::default()).unwrap();
        // x (input), mul, add — the constant is excluded.
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn lti_ranges_match_interval_ranges_when_both_converge() {
        // y = x + 0.5·y[n-1]: both analyses give y ∈ ±2·|x|max.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let input = [Interval::new(-1.0, 1.0).unwrap()];
        let lti = g.ranges_lti(&input, &LtiOptions::default()).unwrap();
        let fix = g
            .ranges_interval(&input, &crate::RangeOptions::default())
            .unwrap();
        let (_, yid) = g.outputs()[0].clone();
        assert!((lti[yid.index()].lo() - fix[yid.index()].lo()).abs() < 1e-6);
        assert!((lti[yid.index()].hi() - fix[yid.index()].hi()).abs() < 1e-6);
    }

    #[test]
    fn lti_ranges_handle_fixpoint_divergent_but_stable_feedback() {
        // y = x + 1.2·y[n-1] − 0.5·y[n-2]: poles at ~0.6±0.37i (stable),
        // but Σ|aₖ| = 1.7 > 1 makes the interval fixpoint diverge.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d1 = b.delay_placeholder();
        let d2 = b.delay(d1);
        let t1 = b.mul_const(1.2, d1);
        let t2 = b.mul_const(-0.5, d2);
        let s = b.add(t1, t2);
        let y = b.add(x, s);
        b.bind_delay(d1, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let input = [Interval::new(-1.0, 1.0).unwrap()];
        assert!(matches!(
            g.ranges_interval(&input, &crate::RangeOptions::default()),
            Err(DfgError::RangeDivergence { .. })
        ));
        let auto = g
            .ranges_auto(
                &input,
                &crate::RangeOptions::default(),
                &LtiOptions::default(),
            )
            .unwrap();
        let (_, yid) = g.outputs()[0].clone();
        let out = auto[yid.index()];
        // Sound: must cover the actual simulated worst case.
        let mut sim = crate::Simulator::new(&g);
        let mut worst: f64 = 0.0;
        // Worst-case square-wave-ish excitation.
        for k in 0..500 {
            let v = if (k / 4) % 2 == 0 { 1.0 } else { -1.0 };
            let o = sim.step(&[v]).unwrap()[0];
            worst = worst.max(o.abs());
        }
        assert!(
            out.hi() >= worst && out.lo() <= -worst,
            "range {out} vs ±{worst}"
        );
        // Centered input ⇒ roughly symmetric range.
        assert!((out.hi() + out.lo()).abs() < 1e-6 * out.hi().abs());
    }

    #[test]
    fn centered_response_shifts_lti_ranges() {
        // y = x + 2 with x ∈ [0, 1]: center 2.5 ± 0.5.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.constant(2.0);
        let y = b.add(x, c);
        b.output("y", y);
        let g = b.build().unwrap();
        let input = [Interval::new(0.0, 1.0).unwrap()];
        let r = g.ranges_lti(&input, &LtiOptions::default()).unwrap();
        let (_, yid) = g.outputs()[0].clone();
        assert!((r[yid.index()].lo() - 2.0).abs() < 1e-9);
        assert!((r[yid.index()].hi() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fir_l2_gain_is_coefficient_energy() {
        // y = 0.5 x + 0.25 x[n-1]: from input, l2² = 0.5² + 0.25².
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let xd = b.delay(x);
        let t0 = b.mul_const(0.5, x);
        let t1 = b.mul_const(0.25, xd);
        let y = b.add(t0, t1);
        b.output("y", y);
        let g = b.build().unwrap();
        let og = g
            .impulse_gains(x, &LtiOptions::default())
            .unwrap()
            .per_output[0];
        assert!((og.l2_squared - (0.25 + 0.0625)).abs() < 1e-12);
        assert!((og.l1 - 0.75).abs() < 1e-12);
    }
}
