//! Range analysis: per-node value bounds given input ranges.
//!
//! Two engines are provided, matching the paper's "second category" of
//! error-analysis methods (Section 3):
//!
//! * **Interval analysis** ([`Dfg::ranges_interval`]) — fast, dependency
//!   blind; handles feedback by fixpoint iteration across delay states.
//! * **Affine analysis** ([`Dfg::ranges_affine`]) — first-order correlation
//!   aware, combinational graphs only (feedback would need unrolling).
//!
//! Range analysis determines the *integer* part of each node's fixed-point
//! format; the SNA machinery determines the fractional part.

use sna_interval::{AffineContext, AffineForm, Interval};

use crate::{Dfg, DfgError, NodeId, Op};

/// Options for fixpoint range analysis over sequential graphs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RangeOptions {
    /// Maximum fixpoint iterations across delay states.
    pub max_iterations: usize,
    /// Convergence tolerance on interval bounds, relative to width.
    pub tolerance: f64,
}

impl Default for RangeOptions {
    fn default() -> Self {
        RangeOptions {
            max_iterations: 4096,
            tolerance: 1e-9,
        }
    }
}

impl Dfg {
    /// Computes per-node value ranges with interval arithmetic.
    ///
    /// Sequential graphs are handled by iterating to a fixpoint: delay
    /// ranges start at `[0, 0]` (the reset state) and are widened with the
    /// hull of their source's range until stable.
    ///
    /// Nodes carrying a [range override](Dfg::range_override) report the
    /// declared interval instead of the computed one; overridden delays
    /// are pinned (never widened), which can make otherwise-divergent
    /// feedback converge.
    ///
    /// # Errors
    ///
    /// * [`DfgError::WrongInputCount`] for a mis-sized range slice;
    /// * [`DfgError::RangeDivisionByZero`] if a divisor range straddles 0;
    /// * [`DfgError::RangeDivergence`] when feedback does not converge
    ///   (loop gain ≥ 1).
    pub fn ranges_interval(
        &self,
        input_ranges: &[Interval],
        opts: &RangeOptions,
    ) -> Result<Vec<Interval>, DfgError> {
        if input_ranges.len() != self.n_inputs() {
            return Err(DfgError::WrongInputCount {
                expected: self.n_inputs(),
                got: input_ranges.len(),
            });
        }
        let mut ranges = vec![Interval::ZERO; self.len()];
        // Overridden delays are pinned at their declared range from the
        // start (the reset state is inside or outside — the override
        // wins either way).
        for &d in self.delay_nodes() {
            if let Some(r) = self.range_override(d) {
                ranges[d.index()] = r;
            }
        }
        let iterations = if self.is_combinational() {
            1
        } else {
            opts.max_iterations
        };
        for it in 0..iterations {
            for &id in self.topo_order() {
                let node = self.node(id);
                let v = match node.op() {
                    Op::Input(i) => input_ranges[i],
                    Op::Const(c) => Interval::point(c),
                    Op::Add => ranges[node.args()[0].index()] + ranges[node.args()[1].index()],
                    Op::Sub => ranges[node.args()[0].index()] - ranges[node.args()[1].index()],
                    Op::Mul => {
                        // Self-multiplication is a dependent square.
                        if node.args()[0] == node.args()[1] {
                            ranges[node.args()[0].index()].sqr()
                        } else {
                            ranges[node.args()[0].index()] * ranges[node.args()[1].index()]
                        }
                    }
                    Op::Div => ranges[node.args()[0].index()]
                        .checked_div(&ranges[node.args()[1].index()])
                        .map_err(|_| DfgError::RangeDivisionByZero { node: id })?,
                    Op::Neg => -ranges[node.args()[0].index()],
                    Op::Delay => continue,
                };
                ranges[id.index()] = self.range_override(id).unwrap_or(v);
            }
            // Unbounded feedback blows ranges up geometrically; declare
            // divergence as soon as a bound stops being finite.
            if ranges
                .iter()
                .any(|r| !r.lo().is_finite() || !r.hi().is_finite())
            {
                return Err(DfgError::RangeDivergence { iterations: it + 1 });
            }
            // Widen delay states with their sources' ranges.  Combinational
            // nodes are pure functions of inputs and delay states, so the
            // fixpoint is reached exactly when no delay grows materially.
            let mut changed = false;
            for &d in self.delay_nodes() {
                if self.range_override(d).is_some() {
                    continue; // pinned by the override
                }
                let src = self.node(d).args()[0];
                let widened = ranges[d.index()].hull(&ranges[src.index()]);
                if !widened.width().is_finite() {
                    return Err(DfgError::RangeDivergence { iterations: it + 1 });
                }
                if widened != ranges[d.index()] {
                    let grown = widened.width() - ranges[d.index()].width();
                    if grown > opts.tolerance * (1.0 + widened.width()) {
                        changed = true;
                    }
                    ranges[d.index()] = widened;
                }
            }
            if !changed {
                return Ok(ranges);
            }
            if it + 1 == iterations && !self.is_combinational() {
                return Err(DfgError::RangeDivergence { iterations });
            }
        }
        Ok(ranges)
    }

    /// Re-runs interval range analysis only inside the union downstream
    /// cone of `dirty_roots`, reusing `base` for every node outside it —
    /// the incremental path behind coefficient-only recompiles.
    ///
    /// `base` must be the result of [`Dfg::ranges_interval`] on a graph
    /// of identical shape (same nodes/edges); only values at and below
    /// the dirty roots may have changed.  Nodes outside the cone keep
    /// their `base` ranges (their inputs are untouched, so those ranges
    /// are still the fixpoint values); in-cone delays restart from the
    /// reset state `[0, 0]` and widen exactly as a from-scratch run
    /// would, so on graphs whose fixpoint is reached exactly (any
    /// combinational or feed-forward datapath) the result is
    /// bit-identical to a full re-analysis.
    ///
    /// # Errors
    ///
    /// Same as [`Dfg::ranges_interval`].
    pub fn ranges_interval_patched(
        &self,
        input_ranges: &[Interval],
        opts: &RangeOptions,
        base: &[Interval],
        dirty_roots: &[NodeId],
    ) -> Result<Vec<Interval>, DfgError> {
        if input_ranges.len() != self.n_inputs() {
            return Err(DfgError::WrongInputCount {
                expected: self.n_inputs(),
                got: input_ranges.len(),
            });
        }
        if base.len() != self.len() {
            return Err(DfgError::WrongInputCount {
                expected: self.len(),
                got: base.len(),
            });
        }
        let in_cone = self.downstream_mask(dirty_roots);
        let mut ranges = base.to_vec();
        // In-cone delays restart from the reset state, mirroring scratch;
        // overridden delays stay pinned at their declared range instead.
        for &d in self.delay_nodes() {
            if in_cone[d.index()] {
                ranges[d.index()] = self.range_override(d).unwrap_or(Interval::ZERO);
            }
        }
        let cone_has_delay = self.delay_nodes().iter().any(|d| in_cone[d.index()]);
        let iterations = if cone_has_delay {
            opts.max_iterations
        } else {
            1
        };
        for it in 0..iterations {
            for &id in self.topo_order() {
                if !in_cone[id.index()] {
                    continue;
                }
                let node = self.node(id);
                let v = match node.op() {
                    Op::Input(i) => input_ranges[i],
                    Op::Const(c) => Interval::point(c),
                    Op::Add => ranges[node.args()[0].index()] + ranges[node.args()[1].index()],
                    Op::Sub => ranges[node.args()[0].index()] - ranges[node.args()[1].index()],
                    Op::Mul => {
                        if node.args()[0] == node.args()[1] {
                            ranges[node.args()[0].index()].sqr()
                        } else {
                            ranges[node.args()[0].index()] * ranges[node.args()[1].index()]
                        }
                    }
                    Op::Div => ranges[node.args()[0].index()]
                        .checked_div(&ranges[node.args()[1].index()])
                        .map_err(|_| DfgError::RangeDivisionByZero { node: id })?,
                    Op::Neg => -ranges[node.args()[0].index()],
                    Op::Delay => continue,
                };
                ranges[id.index()] = self.range_override(id).unwrap_or(v);
            }
            if ranges
                .iter()
                .any(|r| !r.lo().is_finite() || !r.hi().is_finite())
            {
                return Err(DfgError::RangeDivergence { iterations: it + 1 });
            }
            let mut changed = false;
            for &d in self.delay_nodes() {
                if !in_cone[d.index()] || self.range_override(d).is_some() {
                    continue;
                }
                let src = self.node(d).args()[0];
                let widened = ranges[d.index()].hull(&ranges[src.index()]);
                if !widened.width().is_finite() {
                    return Err(DfgError::RangeDivergence { iterations: it + 1 });
                }
                if widened != ranges[d.index()] {
                    let grown = widened.width() - ranges[d.index()].width();
                    if grown > opts.tolerance * (1.0 + widened.width()) {
                        changed = true;
                    }
                    ranges[d.index()] = widened;
                }
            }
            if !changed {
                return Ok(ranges);
            }
            if it + 1 == iterations && cone_has_delay {
                return Err(DfgError::RangeDivergence { iterations });
            }
        }
        Ok(ranges)
    }

    /// Computes per-node ranges with affine arithmetic (combinational
    /// graphs only); returns the affine form of every node.
    ///
    /// A node carrying a [range override](Dfg::range_override) is
    /// replaced by a fresh independent form over the declared interval
    /// (correlations through it are deliberately cut — the override is
    /// the designer's bound, not a derived one).
    ///
    /// # Errors
    ///
    /// * [`DfgError::NonlinearNode`] if the graph contains delays (use
    ///   [`Dfg::combinational_view`] first);
    /// * [`DfgError::WrongInputCount`] / [`DfgError::RangeDivisionByZero`]
    ///   as for the interval engine.
    pub fn ranges_affine(&self, input_ranges: &[Interval]) -> Result<Vec<AffineForm>, DfgError> {
        if !self.is_combinational() {
            return Err(DfgError::NonlinearNode {
                node: self.delay_nodes()[0],
            });
        }
        if input_ranges.len() != self.n_inputs() {
            return Err(DfgError::WrongInputCount {
                expected: self.n_inputs(),
                got: input_ranges.len(),
            });
        }
        let ctx = AffineContext::new();
        let inputs: Vec<AffineForm> = input_ranges.iter().map(|&r| ctx.from_interval(r)).collect();
        let mut forms = vec![AffineForm::constant(0.0); self.len()];
        for &id in self.topo_order() {
            let node = self.node(id);
            let v = match node.op() {
                Op::Input(i) => inputs[i].clone(),
                Op::Const(c) => AffineForm::constant(c),
                Op::Add => {
                    forms[node.args()[0].index()].clone() + forms[node.args()[1].index()].clone()
                }
                Op::Sub => {
                    forms[node.args()[0].index()].clone() - forms[node.args()[1].index()].clone()
                }
                Op::Mul => {
                    if node.args()[0] == node.args()[1] {
                        forms[node.args()[0].index()].sqr(&ctx)
                    } else {
                        forms[node.args()[0].index()].mul(&forms[node.args()[1].index()], &ctx)
                    }
                }
                Op::Div => forms[node.args()[0].index()]
                    .div(&forms[node.args()[1].index()], &ctx)
                    .map_err(|_| DfgError::RangeDivisionByZero { node: id })?,
                Op::Neg => -forms[node.args()[0].index()].clone(),
                Op::Delay => unreachable!("combinational graph"),
            };
            forms[id.index()] = match self.range_override(id) {
                Some(r) => ctx.from_interval(r),
                None => v,
            };
        }
        Ok(forms)
    }

    /// Convenience: the interval range of each declared output.
    ///
    /// # Errors
    ///
    /// Same as [`Dfg::ranges_interval`].
    pub fn output_ranges(
        &self,
        input_ranges: &[Interval],
        opts: &RangeOptions,
    ) -> Result<Vec<(String, Interval)>, DfgError> {
        let ranges = self.ranges_interval(input_ranges, opts)?;
        Ok(self
            .outputs()
            .iter()
            .map(|(name, id)| (name.clone(), ranges[id.index()]))
            .collect())
    }
}

/// Checks whether a node of the graph is *signal dependent*, i.e. depends
/// (transitively, through combinational edges or delays) on any input.
pub(crate) fn signal_dependent(dfg: &Dfg) -> Vec<bool> {
    let mut dep = vec![false; dfg.len()];
    // Iterate until stable: delays can propagate dependency around loops.
    loop {
        let mut changed = false;
        for (id, node) in dfg.nodes() {
            let d = match node.op() {
                Op::Input(_) => true,
                Op::Const(_) => false,
                _ => node.args().iter().any(|a| dep[a.index()]),
            };
            if d && !dep[id.index()] {
                dep[id.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return dep;
        }
    }
}

/// Returns the first node violating linearity, if any: a multiplication of
/// two signal-dependent operands, or a division with a signal-dependent
/// divisor.
pub(crate) fn first_nonlinear_node(dfg: &Dfg) -> Option<NodeId> {
    let dep = signal_dependent(dfg);
    for (id, node) in dfg.nodes() {
        match node.op() {
            Op::Mul if dep[node.args()[0].index()] && dep[node.args()[1].index()] => {
                return Some(id);
            }
            Op::Div if dep[node.args()[1].index()] => {
                return Some(id);
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn combinational_interval_ranges() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let sq = b.mul(x, x);
        let k = b.constant(2.0);
        let y = b.mul(k, sq);
        b.output("y", y);
        let g = b.build().unwrap();
        let r = g
            .ranges_interval(&[iv(-1.0, 1.0)], &RangeOptions::default())
            .unwrap();
        // Dependent square: [0, 1], not [-1, 1].
        assert_eq!(r[sq.index()], iv(0.0, 1.0));
        assert_eq!(r[y.index()], iv(0.0, 2.0));
    }

    #[test]
    fn stable_feedback_converges() {
        // y = x + 0.5 y[n-1]: range of y is [−2·|x|max, 2·|x|max].
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let half = b.mul_const(0.5, fb);
        let y = b.add(x, half);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let r = g
            .ranges_interval(&[iv(-1.0, 1.0)], &RangeOptions::default())
            .unwrap();
        let (_, yid) = g.outputs()[0].clone();
        let out = r[yid.index()];
        assert!(out.lo() <= -1.99 && out.lo() >= -2.01, "lo = {}", out.lo());
        assert!(out.hi() >= 1.99 && out.hi() <= 2.01, "hi = {}", out.hi());
    }

    #[test]
    fn unstable_feedback_diverges() {
        // y = x + 1.5 y[n-1] diverges.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let amp = b.mul_const(1.5, fb);
        let y = b.add(x, amp);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let err = g
            .ranges_interval(&[iv(-1.0, 1.0)], &RangeOptions::default())
            .unwrap_err();
        assert!(matches!(err, DfgError::RangeDivergence { .. }));
    }

    #[test]
    fn divisor_straddling_zero_is_reported() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let q = b.div(x, y);
        b.output("q", q);
        let g = b.build().unwrap();
        assert!(matches!(
            g.ranges_interval(&[iv(0.0, 1.0), iv(-1.0, 1.0)], &RangeOptions::default()),
            Err(DfgError::RangeDivisionByZero { .. })
        ));
        let ok = g
            .ranges_interval(&[iv(0.0, 1.0), iv(1.0, 2.0)], &RangeOptions::default())
            .unwrap();
        assert_eq!(ok[q.index()], iv(0.0, 1.0));
    }

    #[test]
    fn patched_ranges_match_scratch_on_feedforward_graphs() {
        // A 3-tap FIR: feed-forward, so the fixpoint is reached exactly
        // and the patched result must be bit-identical to scratch.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let x1 = b.delay(x);
        let x2 = b.delay(x1);
        let c0 = b.constant(0.25);
        let c1 = b.constant(0.5);
        let t0 = b.mul(c0, x);
        let t1 = b.mul(c1, x1);
        let t2 = b.mul(c0, x2);
        let s = b.add(t0, t1);
        let y = b.add(s, t2);
        b.output("y", y);
        let g = b.build().unwrap();
        let inputs = [iv(-1.0, 1.0)];
        let opts = RangeOptions::default();
        let base = g.ranges_interval(&inputs, &opts).unwrap();

        // Swap one coefficient and patch only its cone.
        let swapped = g.with_const_values(&[0.3, 0.5]).unwrap();
        let scratch = swapped.ranges_interval(&inputs, &opts).unwrap();
        let patched = swapped
            .ranges_interval_patched(&inputs, &opts, &base, &[c0])
            .unwrap();
        for (i, (s, p)) in scratch.iter().zip(&patched).enumerate() {
            assert_eq!(s.lo().to_bits(), p.lo().to_bits(), "node {i} lo");
            assert_eq!(s.hi().to_bits(), p.hi().to_bits(), "node {i} hi");
        }
        // Nodes outside the cone kept their base ranges untouched.
        assert_eq!(patched[x1.index()], base[x1.index()]);
    }

    #[test]
    fn patched_ranges_handle_feedback_cones() {
        // y = x + k·y[n-1]: the constant's cone crosses the delay, so the
        // patch re-runs the fixpoint over the loop.
        let mk = |k: f64| {
            let mut b = DfgBuilder::new();
            let x = b.input("x");
            let fb = b.delay_placeholder();
            let t = b.mul_const(k, fb);
            let y = b.add(x, t);
            b.bind_delay(fb, y).unwrap();
            b.output("y", y);
            b.build().unwrap()
        };
        let g = mk(0.5);
        let inputs = [iv(-1.0, 1.0)];
        let opts = RangeOptions::default();
        let base = g.ranges_interval(&inputs, &opts).unwrap();
        let swapped = g.with_const_values(&[0.25]).unwrap();
        let scratch = swapped.ranges_interval(&inputs, &opts).unwrap();
        let root = swapped.const_nodes()[0];
        let patched = swapped
            .ranges_interval_patched(&inputs, &opts, &base, &[root])
            .unwrap();
        for (s, p) in scratch.iter().zip(&patched) {
            assert!((s.lo() - p.lo()).abs() <= 1e-9 * (1.0 + s.width()));
            assert!((s.hi() - p.hi()).abs() <= 1e-9 * (1.0 + s.width()));
        }
        // An unstable swap diverges through the patch path too.
        let unstable = g.with_const_values(&[1.5]).unwrap();
        assert!(matches!(
            unstable.ranges_interval_patched(&inputs, &opts, &base, &[root]),
            Err(DfgError::RangeDivergence { .. })
        ));
    }

    #[test]
    fn affine_is_tighter_on_correlated_paths() {
        // y = x - x: IA gives [-2, 2], AA gives exactly 0.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.sub(x, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ia = g
            .ranges_interval(&[iv(-1.0, 1.0)], &RangeOptions::default())
            .unwrap();
        assert_eq!(ia[y.index()], iv(-2.0, 2.0));
        let aa = g.ranges_affine(&[iv(-1.0, 1.0)]).unwrap();
        assert_eq!(aa[y.index()].to_interval(), iv(0.0, 0.0));
    }

    #[test]
    fn affine_rejects_sequential_graphs() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d = b.delay(x);
        let y = b.add(x, d);
        b.output("y", y);
        let g = b.build().unwrap();
        assert!(matches!(
            g.ranges_affine(&[iv(-1.0, 1.0)]),
            Err(DfgError::NonlinearNode { .. })
        ));
        // The combinational view is accepted.
        let cv = g.combinational_view();
        assert!(cv.ranges_affine(&[iv(-1.0, 1.0), iv(-1.0, 1.0)]).is_ok());
    }

    #[test]
    fn linearity_detection() {
        // Linear: constant multiplies only.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(3.0, x);
        let y = b.add(t, x);
        b.output("y", y);
        let g = b.build().unwrap();
        assert_eq!(first_nonlinear_node(&g), None);

        // Nonlinear: x·x.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let sq = b.mul(x, x);
        b.output("y", sq);
        let g = b.build().unwrap();
        assert_eq!(first_nonlinear_node(&g), Some(sq));

        // Nonlinear: division by a signal.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.constant(1.0);
        let q = b.div(c, x);
        b.output("y", q);
        let g = b.build().unwrap();
        assert_eq!(first_nonlinear_node(&g), Some(q));
    }

    #[test]
    fn overrides_replace_computed_ranges_and_propagate_downstream() {
        // y = 2·(x + x): IA computes x+x as [-2, 2]; an override pins it
        // to [-1, 1] and downstream sees the override.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let s = b.add(x, x);
        let y = b.mul_const(2.0, s);
        b.output("y", y);
        b.override_range(s, iv(-1.0, 1.0)).unwrap();
        let g = b.build().unwrap();
        assert!(g.has_range_overrides());
        assert_eq!(g.range_override(s), Some(iv(-1.0, 1.0)));
        let r = g
            .ranges_interval(&[iv(-1.0, 1.0)], &RangeOptions::default())
            .unwrap();
        assert_eq!(r[s.index()], iv(-1.0, 1.0));
        assert_eq!(r[y.index()], iv(-2.0, 2.0));
        // Affine analysis respects it too (as a fresh independent form).
        let aa = g.ranges_affine(&[iv(-1.0, 1.0)]).unwrap();
        assert_eq!(aa[s.index()].to_interval(), iv(-1.0, 1.0));
    }

    #[test]
    fn overridden_delay_pins_divergent_feedback() {
        // y = x + 1.5·y[n-1] diverges — unless the designer bounds the
        // feedback state.
        let mk = |with_override: bool| {
            let mut b = DfgBuilder::new();
            let x = b.input("x");
            let fb = b.delay_placeholder();
            let amp = b.mul_const(1.5, fb);
            let y = b.add(x, amp);
            b.bind_delay(fb, y).unwrap();
            b.output("y", y);
            if with_override {
                b.override_range(fb, iv(-2.0, 2.0)).unwrap();
            }
            b.build().unwrap()
        };
        let opts = RangeOptions::default();
        assert!(matches!(
            mk(false).ranges_interval(&[iv(-1.0, 1.0)], &opts),
            Err(DfgError::RangeDivergence { .. })
        ));
        let g = mk(true);
        let r = g.ranges_interval(&[iv(-1.0, 1.0)], &opts).unwrap();
        let (_, yid) = g.outputs()[0].clone();
        // y = x + 1.5·[-2, 2] = [-4, 4].
        assert_eq!(r[yid.index()], iv(-4.0, 4.0));
    }

    #[test]
    fn patched_ranges_respect_overrides_bit_for_bit() {
        // A FIR tap with an overridden accumulator: patching a swapped
        // coefficient must agree with scratch exactly.
        let mk = |c: f64| {
            let mut b = DfgBuilder::new();
            let x = b.input("x");
            let x1 = b.delay(x);
            let t = b.mul_const(c, x1);
            let y = b.add(x, t);
            b.override_range(y, iv(-1.25, 1.25)).unwrap();
            b.output("y", y);
            (b.build().unwrap(), y)
        };
        let (g, _) = mk(0.5);
        let inputs = [iv(-1.0, 1.0)];
        let opts = RangeOptions::default();
        let base = g.ranges_interval(&inputs, &opts).unwrap();
        let swapped = g.with_const_values(&[0.25]).unwrap();
        assert_eq!(
            swapped.range_override(g.outputs()[0].1),
            Some(iv(-1.25, 1.25)),
            "with_const_values keeps overrides"
        );
        let scratch = swapped.ranges_interval(&inputs, &opts).unwrap();
        let root = swapped.const_nodes()[0];
        let patched = swapped
            .ranges_interval_patched(&inputs, &opts, &base, &[root])
            .unwrap();
        for (i, (s, p)) in scratch.iter().zip(&patched).enumerate() {
            assert_eq!(s.lo().to_bits(), p.lo().to_bits(), "node {i} lo");
            assert_eq!(s.hi().to_bits(), p.hi().to_bits(), "node {i} hi");
        }
    }

    #[test]
    fn lti_ranges_respect_overrides() {
        // Stable feedback via the LTI bound, with the accumulator pinned.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let half = b.mul_const(0.5, fb);
        let y = b.add(x, half);
        b.bind_delay(fb, y).unwrap();
        b.override_range(y, iv(-1.5, 1.5)).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let r = g
            .ranges_lti(&[iv(-1.0, 1.0)], &crate::LtiOptions::default())
            .unwrap();
        assert_eq!(r[y.index()], iv(-1.5, 1.5));
    }

    #[test]
    fn output_ranges_are_labelled() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul_const(2.0, x);
        b.output("twice", y);
        let g = b.build().unwrap();
        let out = g
            .output_ranges(&[iv(0.0, 3.0)], &RangeOptions::default())
            .unwrap();
        assert_eq!(out, vec![("twice".to_string(), iv(0.0, 6.0))]);
    }
}
