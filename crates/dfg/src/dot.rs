//! Graphviz DOT export for debugging and documentation.

use std::fmt::Write as _;

use crate::{Dfg, Op};

impl Dfg {
    /// Renders the graph in Graphviz DOT syntax.
    ///
    /// Inputs are boxes, constants are plain text, arithmetic ops are
    /// ellipses, delays are diamonds; outputs get labelled double circles.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph dfg {\n  rankdir=LR;\n");
        for (id, node) in self.nodes() {
            let label = match node.op() {
                Op::Input(i) => format!("{} (in{})", node.name().unwrap_or("input"), i),
                Op::Const(c) => format!("{c}"),
                op => match node.name() {
                    Some(n) => format!("{} [{}]", op.mnemonic(), n),
                    None => op.mnemonic().to_string(),
                },
            };
            let shape = match node.op() {
                Op::Input(_) => "box",
                Op::Const(_) => "plaintext",
                Op::Delay => "diamond",
                _ => "ellipse",
            };
            let _ = writeln!(out, "  {id} [label=\"{label}\", shape={shape}];");
            for (slot, a) in node.args().iter().enumerate() {
                let _ = writeln!(out, "  {a} -> {id} [label=\"{slot}\"];");
            }
        }
        for (name, id) in self.outputs() {
            let _ = writeln!(
                out,
                "  out_{name} [label=\"{name}\", shape=doublecircle];\n  {id} -> out_{name};"
            );
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::DfgBuilder;

    #[test]
    fn dot_contains_all_nodes_and_outputs() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d = b.delay(x);
        let y = b.add(x, d);
        b.output("y", y);
        let g = b.build().unwrap();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph dfg {"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("out_y"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
