use std::fmt;

use crate::DfgError;

/// Identifier of a node within a [`Dfg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index of this node.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Reconstructs an id from a raw index.
    ///
    /// Ids are plain indices; validity against a particular graph is
    /// checked by [`Dfg::check_node`] at use sites.
    pub fn from_index(index: usize) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The operation performed by a node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// External input; the payload is the index into the input vector.
    Input(usize),
    /// A compile-time constant.
    Const(f64),
    /// Two-operand addition.
    Add,
    /// Two-operand subtraction (`args[0] - args[1]`).
    Sub,
    /// Two-operand multiplication.
    Mul,
    /// Two-operand division (`args[0] / args[1]`).
    Div,
    /// Negation.
    Neg,
    /// Unit delay (`z⁻¹`): outputs its previous-cycle argument value;
    /// initial state is 0.  The only legal way to close feedback loops.
    Delay,
}

impl Op {
    /// Number of arguments the operation takes.
    pub fn arity(&self) -> usize {
        match self {
            Op::Input(_) | Op::Const(_) => 0,
            Op::Neg | Op::Delay => 1,
            Op::Add | Op::Sub | Op::Mul | Op::Div => 2,
        }
    }

    /// Whether this is an arithmetic operator that occupies a functional
    /// unit in hardware (inputs, constants and delays map to wires and
    /// registers instead).
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Neg)
    }

    /// Short mnemonic, used in DOT exports and debug output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input(_) => "in",
            Op::Const(_) => "const",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Neg => "neg",
            Op::Delay => "z⁻¹",
        }
    }
}

/// A node: an operation plus its argument nodes and an optional name.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    pub(crate) op: Op,
    pub(crate) args: Vec<NodeId>,
    pub(crate) name: Option<String>,
}

impl Node {
    /// The node's operation.
    pub fn op(&self) -> Op {
        self.op
    }

    /// The node's arguments.
    pub fn args(&self) -> &[NodeId] {
        &self.args
    }

    /// The node's optional name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// Per-operation node counts, as reported by [`Dfg::op_counts`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Number of input nodes.
    pub inputs: usize,
    /// Number of constant nodes.
    pub consts: usize,
    /// Number of additions.
    pub adds: usize,
    /// Number of subtractions.
    pub subs: usize,
    /// Number of multiplications.
    pub muls: usize,
    /// Number of divisions.
    pub divs: usize,
    /// Number of negations.
    pub negs: usize,
    /// Number of unit delays.
    pub delays: usize,
}

impl OpCounts {
    /// Total number of arithmetic operations (excluding inputs, constants
    /// and delays).
    pub fn arithmetic(&self) -> usize {
        self.adds + self.subs + self.muls + self.divs + self.negs
    }
}

/// A validated dataflow graph.
///
/// Construction goes through [`DfgBuilder`](crate::DfgBuilder), which
/// guarantees: all arguments exist, arities are correct, every delay is
/// bound, outputs are named uniquely, and every cycle passes through a
/// delay.  The graph caches a combinational topological order (delays act
/// as cycle-breaking sources).
#[derive(Clone, Debug)]
pub struct Dfg {
    pub(crate) nodes: Vec<Node>,
    pub(crate) outputs: Vec<(String, NodeId)>,
    pub(crate) input_names: Vec<String>,
    /// Topological order for combinational evaluation: delays excluded
    /// (their values are state, available at cycle start).
    pub(crate) topo: Vec<NodeId>,
    /// All delay nodes, in id order.
    pub(crate) delays: Vec<NodeId>,
}

impl Dfg {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterates over `(id, node)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Declared outputs as `(name, node)` pairs.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Number of external inputs.
    pub fn n_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Names of the inputs, in input-index order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// All delay nodes in id order.
    pub fn delay_nodes(&self) -> &[NodeId] {
        &self.delays
    }

    /// The cached combinational topological order (delays excluded).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Whether the graph is purely combinational (no delays).
    pub fn is_combinational(&self) -> bool {
        self.delays.is_empty()
    }

    /// Counts nodes per operation kind.
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for n in &self.nodes {
            match n.op {
                Op::Input(_) => c.inputs += 1,
                Op::Const(_) => c.consts += 1,
                Op::Add => c.adds += 1,
                Op::Sub => c.subs += 1,
                Op::Mul => c.muls += 1,
                Op::Div => c.divs += 1,
                Op::Neg => c.negs += 1,
                Op::Delay => c.delays += 1,
            }
        }
        c
    }

    /// Longest path length counted in arithmetic operations (the
    /// combinational critical path in operator stages).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for &id in &self.topo {
            let n = &self.nodes[id.0];
            let base = n.args.iter().map(|a| depth[a.0]).max().unwrap_or(0);
            depth[id.0] = base + usize::from(n.op.is_arithmetic());
        }
        self.outputs
            .iter()
            .map(|(_, id)| depth[id.0])
            .max()
            .unwrap_or(0)
    }

    /// A purely combinational copy in which every delay node is replaced by
    /// a fresh input — the "per-sample datapath" view used for scheduling
    /// and for range/noise analysis of one iteration.
    ///
    /// The fresh inputs are appended after the original ones, named
    /// `"<delay name or node id>.state"`, in delay id order.
    pub fn combinational_view(&self) -> Dfg {
        let mut nodes = self.nodes.clone();
        let mut input_names = self.input_names.clone();
        for &d in &self.delays {
            let idx = input_names.len();
            let name = match &self.nodes[d.0].name {
                Some(n) => format!("{n}.state"),
                None => format!("{d}.state"),
            };
            input_names.push(name.clone());
            nodes[d.0] = Node {
                op: Op::Input(idx),
                args: Vec::new(),
                name: Some(name),
            };
        }
        // All nodes are now combinational; recompute the topological order.
        let topo = combinational_topo(&nodes).expect("delay-free graph cannot have cycles");
        Dfg {
            nodes,
            outputs: self.outputs.clone(),
            input_names,
            topo,
            delays: Vec::new(),
        }
    }

    /// The downstream cone of `id`: every node whose value can change when
    /// `id`'s value (or output format) changes, `id` included, in
    /// evaluation order.
    ///
    /// Reachability follows *all* consumer edges — including the
    /// sequential edge into a delay — so the cone is the full region an
    /// incremental analysis must re-propagate after a single-node change.
    /// Combinational nodes appear in [`Dfg::topo_order`] position; delay
    /// nodes (whose value is state, recomputed at cycle boundaries) are
    /// appended afterwards in id order.
    ///
    /// Cost is `O(#nodes + #edges)` per call; callers that need many cones
    /// should cache the results.
    pub fn downstream_cone(&self, id: NodeId) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut reachable = vec![false; n];
        reachable[id.0] = true;
        // Id order is not an evaluation order (a delay's argument may have
        // a larger id), so sweep to a fixpoint; combinational edges
        // resolve in one forward pass and each extra pass crosses at
        // least one delay, so this terminates quickly.
        loop {
            let mut changed = false;
            for (i, node) in self.nodes.iter().enumerate() {
                if reachable[i] {
                    continue;
                }
                if node.args.iter().any(|a| reachable[a.0]) {
                    reachable[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut cone: Vec<NodeId> = self
            .topo
            .iter()
            .copied()
            .filter(|t| reachable[t.0])
            .collect();
        cone.extend(self.delays.iter().copied().filter(|d| reachable[d.0]));
        cone
    }

    /// Validates that `id` belongs to this graph.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::UnknownNode`] otherwise.
    pub fn check_node(&self, id: NodeId) -> Result<(), DfgError> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(DfgError::UnknownNode { node: id })
        }
    }
}

/// Kahn topological sort over the combinational edges (delay nodes are
/// sources: their incoming edge is sequential, not combinational).
pub(crate) fn combinational_topo(nodes: &[Node]) -> Result<Vec<NodeId>, DfgError> {
    let n = nodes.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        if node.op == Op::Delay {
            continue; // sequential edge
        }
        for a in &node.args {
            succs[a.0].push(i);
            indegree[i] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(NodeId(i));
        for &s in &succs[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() != n {
        let node = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(NodeId)
            .expect("some node has positive indegree");
        return Err(DfgError::CombinationalCycle { node });
    }
    // Exclude delays from the evaluation order (their output is state).
    Ok(order
        .into_iter()
        .filter(|id| nodes[id.0].op != Op::Delay)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn fir2() -> Dfg {
        // y[n] = x[n] + 0.5 x[n-1]
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let xd = b.delay(x);
        let c = b.constant(0.5);
        let t = b.mul(c, xd);
        let y = b.add(x, t);
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn op_metadata() {
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Neg.arity(), 1);
        assert_eq!(Op::Const(1.0).arity(), 0);
        assert!(Op::Mul.is_arithmetic());
        assert!(!Op::Delay.is_arithmetic());
        assert_eq!(Op::Div.mnemonic(), "div");
    }

    #[test]
    fn graph_queries() {
        let g = fir2();
        assert_eq!(g.len(), 5);
        assert_eq!(g.n_inputs(), 1);
        assert_eq!(g.input_names(), &["x".to_string()]);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.delay_nodes().len(), 1);
        assert!(!g.is_combinational());
        let c = g.op_counts();
        assert_eq!(c.adds, 1);
        assert_eq!(c.muls, 1);
        assert_eq!(c.delays, 1);
        assert_eq!(c.arithmetic(), 2);
    }

    #[test]
    fn depth_counts_arithmetic_stages() {
        let g = fir2();
        // x -> (mul) -> (add): depth 2.
        assert_eq!(g.depth(), 2);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = fir2();
        let pos: Vec<usize> = {
            let mut pos = vec![usize::MAX; g.len()];
            for (k, id) in g.topo_order().iter().enumerate() {
                pos[id.index()] = k;
            }
            pos
        };
        for (id, node) in g.nodes() {
            if node.op() == Op::Delay {
                continue;
            }
            for a in node.args() {
                if g.node(*a).op() == Op::Delay {
                    continue;
                }
                assert!(pos[a.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn combinational_view_replaces_delays_with_inputs() {
        let g = fir2();
        let c = g.combinational_view();
        assert!(c.is_combinational());
        assert_eq!(c.n_inputs(), 2);
        assert_eq!(c.op_counts().delays, 0);
        // Same arithmetic structure.
        assert_eq!(c.op_counts().arithmetic(), g.op_counts().arithmetic());
        // Evaluating the view with explicit state matches a simulator step.
        let y = crate::Simulator::new(&g).step(&[2.0]).unwrap();
        let yv = c.evaluate(&[2.0, 0.0]).unwrap();
        assert_eq!(y, yv);
    }

    #[test]
    fn downstream_cone_follows_all_consumer_edges() {
        let g = fir2();
        // Node ids in build order: x=0, xd=1 (delay), c=2, t=3 (mul),
        // y=4 (add).
        let cone_of = |i: usize| {
            let mut v: Vec<usize> = g
                .downstream_cone(NodeId(i))
                .iter()
                .map(|n| n.index())
                .collect();
            v.sort_unstable();
            v
        };
        // x feeds the delay (sequential edge), the mul via the delay, and
        // the add directly: everything is downstream.
        assert_eq!(cone_of(0), vec![0, 1, 3, 4]);
        // The constant only feeds mul -> add.
        assert_eq!(cone_of(2), vec![2, 3, 4]);
        // The output add reaches only itself.
        assert_eq!(cone_of(4), vec![4]);
    }

    #[test]
    fn downstream_cone_is_in_evaluation_order() {
        let g = fir2();
        let pos: Vec<usize> = {
            let mut pos = vec![usize::MAX; g.len()];
            for (k, id) in g.topo_order().iter().enumerate() {
                pos[id.index()] = k;
            }
            pos
        };
        for (id, _) in g.nodes() {
            let cone = g.downstream_cone(id);
            let combinational: Vec<usize> = cone
                .iter()
                .filter(|n| g.node(**n).op() != Op::Delay)
                .map(|n| pos[n.index()])
                .collect();
            assert!(
                combinational.windows(2).all(|w| w[0] < w[1]),
                "cone of {id} not topo-sorted"
            );
            assert!(cone.contains(&id));
        }
    }

    #[test]
    fn downstream_cone_through_feedback_reaches_the_loop() {
        // y = x + 0.5·y[n-1]: the constant's cone crosses the delay and
        // covers the whole loop body.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let cone = g.downstream_cone(x);
        // x -> add -> delay -> mul -> add: all of the loop is reachable.
        assert!(cone.len() >= 4, "cone {cone:?}");
        assert!(cone.contains(&fb));
        assert!(cone.contains(&y));
    }

    #[test]
    fn check_node_rejects_foreign_ids() {
        let g = fir2();
        assert!(g.check_node(NodeId(0)).is_ok());
        assert!(matches!(
            g.check_node(NodeId(99)),
            Err(DfgError::UnknownNode { .. })
        ));
    }
}
