use std::fmt;

use sna_interval::Interval;

use crate::DfgError;

/// Identifier of a node within a [`Dfg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The raw index of this node.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Reconstructs an id from a raw index.
    ///
    /// Ids are plain indices; validity against a particular graph is
    /// checked by [`Dfg::check_node`] at use sites.
    pub fn from_index(index: usize) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The operation performed by a node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// External input; the payload is the index into the input vector.
    Input(usize),
    /// A compile-time constant.
    Const(f64),
    /// Two-operand addition.
    Add,
    /// Two-operand subtraction (`args[0] - args[1]`).
    Sub,
    /// Two-operand multiplication.
    Mul,
    /// Two-operand division (`args[0] / args[1]`).
    Div,
    /// Negation.
    Neg,
    /// Unit delay (`z⁻¹`): outputs its previous-cycle argument value;
    /// initial state is 0.  The only legal way to close feedback loops.
    Delay,
}

impl Op {
    /// Number of arguments the operation takes.
    pub fn arity(&self) -> usize {
        match self {
            Op::Input(_) | Op::Const(_) => 0,
            Op::Neg | Op::Delay => 1,
            Op::Add | Op::Sub | Op::Mul | Op::Div => 2,
        }
    }

    /// Whether this is an arithmetic operator that occupies a functional
    /// unit in hardware (inputs, constants and delays map to wires and
    /// registers instead).
    pub fn is_arithmetic(&self) -> bool {
        matches!(self, Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Neg)
    }

    /// Short mnemonic, used in DOT exports and debug output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Op::Input(_) => "in",
            Op::Const(_) => "const",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Neg => "neg",
            Op::Delay => "z⁻¹",
        }
    }
}

/// A node: an operation plus its argument nodes and an optional name.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    pub(crate) op: Op,
    pub(crate) args: Vec<NodeId>,
    pub(crate) name: Option<String>,
}

impl Node {
    /// The node's operation.
    pub fn op(&self) -> Op {
        self.op
    }

    /// The node's arguments.
    pub fn args(&self) -> &[NodeId] {
        &self.args
    }

    /// The node's optional name.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// Per-operation node counts, as reported by [`Dfg::op_counts`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Number of input nodes.
    pub inputs: usize,
    /// Number of constant nodes.
    pub consts: usize,
    /// Number of additions.
    pub adds: usize,
    /// Number of subtractions.
    pub subs: usize,
    /// Number of multiplications.
    pub muls: usize,
    /// Number of divisions.
    pub divs: usize,
    /// Number of negations.
    pub negs: usize,
    /// Number of unit delays.
    pub delays: usize,
}

impl OpCounts {
    /// Total number of arithmetic operations (excluding inputs, constants
    /// and delays).
    pub fn arithmetic(&self) -> usize {
        self.adds + self.subs + self.muls + self.divs + self.negs
    }
}

/// A validated dataflow graph.
///
/// Construction goes through [`DfgBuilder`](crate::DfgBuilder), which
/// guarantees: all arguments exist, arities are correct, every delay is
/// bound, outputs are named uniquely, and every cycle passes through a
/// delay.  The graph caches a combinational topological order (delays act
/// as cycle-breaking sources).
#[derive(Clone, Debug)]
pub struct Dfg {
    pub(crate) nodes: Vec<Node>,
    pub(crate) outputs: Vec<(String, NodeId)>,
    pub(crate) input_names: Vec<String>,
    /// Topological order for combinational evaluation: delays excluded
    /// (their values are state, available at cycle start).
    pub(crate) topo: Vec<NodeId>,
    /// All delay nodes, in id order.
    pub(crate) delays: Vec<NodeId>,
    /// Per-node range overrides (the DSL's `range [lo, hi]` clause):
    /// every range engine reports the declared interval for an
    /// overridden node instead of its computed one.  Empty when no node
    /// is overridden.
    pub(crate) overrides: Vec<Option<Interval>>,
}

impl Dfg {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Iterates over `(id, node)` pairs in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Declared outputs as `(name, node)` pairs.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Number of external inputs.
    pub fn n_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// Names of the inputs, in input-index order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// All delay nodes in id order.
    pub fn delay_nodes(&self) -> &[NodeId] {
        &self.delays
    }

    /// The cached combinational topological order (delays excluded).
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Whether the graph is purely combinational (no delays).
    pub fn is_combinational(&self) -> bool {
        self.delays.is_empty()
    }

    /// The declared range override of a node (the DSL's
    /// `range [lo, hi]` clause), if any.  Every range engine in this
    /// crate reports the override for such a node instead of its
    /// computed range.
    pub fn range_override(&self, id: NodeId) -> Option<Interval> {
        self.overrides.get(id.0).copied().flatten()
    }

    /// Whether any node carries a range override.
    pub fn has_range_overrides(&self) -> bool {
        self.overrides.iter().any(Option::is_some)
    }

    /// Counts nodes per operation kind.
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for n in &self.nodes {
            match n.op {
                Op::Input(_) => c.inputs += 1,
                Op::Const(_) => c.consts += 1,
                Op::Add => c.adds += 1,
                Op::Sub => c.subs += 1,
                Op::Mul => c.muls += 1,
                Op::Div => c.divs += 1,
                Op::Neg => c.negs += 1,
                Op::Delay => c.delays += 1,
            }
        }
        c
    }

    /// Longest path length counted in arithmetic operations (the
    /// combinational critical path in operator stages).
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        for &id in &self.topo {
            let n = &self.nodes[id.0];
            let base = n.args.iter().map(|a| depth[a.0]).max().unwrap_or(0);
            depth[id.0] = base + usize::from(n.op.is_arithmetic());
        }
        self.outputs
            .iter()
            .map(|(_, id)| depth[id.0])
            .max()
            .unwrap_or(0)
    }

    /// A purely combinational copy in which every delay node is replaced by
    /// a fresh input — the "per-sample datapath" view used for scheduling
    /// and for range/noise analysis of one iteration.
    ///
    /// The fresh inputs are appended after the original ones, named
    /// `"<delay name or node id>.state"`, in delay id order.
    pub fn combinational_view(&self) -> Dfg {
        let mut nodes = self.nodes.clone();
        let mut input_names = self.input_names.clone();
        for &d in &self.delays {
            let idx = input_names.len();
            let name = match &self.nodes[d.0].name {
                Some(n) => format!("{n}.state"),
                None => format!("{d}.state"),
            };
            input_names.push(name.clone());
            nodes[d.0] = Node {
                op: Op::Input(idx),
                args: Vec::new(),
                name: Some(name),
            };
        }
        // All nodes are now combinational; recompute the topological order.
        let topo = combinational_topo(&nodes).expect("delay-free graph cannot have cycles");
        Dfg {
            nodes,
            outputs: self.outputs.clone(),
            input_names,
            topo,
            delays: Vec::new(),
            // A delay's override becomes its state input's override: the
            // per-sample view reports the same per-node ranges.
            overrides: self.overrides.clone(),
        }
    }

    /// The downstream cone of `id`: every node whose value can change when
    /// `id`'s value (or output format) changes, `id` included, in
    /// evaluation order.
    ///
    /// Reachability follows *all* consumer edges — including the
    /// sequential edge into a delay — so the cone is the full region an
    /// incremental analysis must re-propagate after a single-node change.
    /// Combinational nodes appear in [`Dfg::topo_order`] position; delay
    /// nodes (whose value is state, recomputed at cycle boundaries) are
    /// appended afterwards in id order.
    ///
    /// Cost is `O(#nodes + #edges)` per call; callers that need many cones
    /// should cache the results.
    pub fn downstream_cone(&self, id: NodeId) -> Vec<NodeId> {
        let reachable = self.downstream_mask(&[id]);
        let mut cone: Vec<NodeId> = self
            .topo
            .iter()
            .copied()
            .filter(|t| reachable[t.0])
            .collect();
        cone.extend(self.delays.iter().copied().filter(|d| reachable[d.0]));
        cone
    }

    /// The union downstream cone of several roots, as a per-node mask —
    /// the region a multi-node change (e.g. a coefficient swap touching
    /// several constants) must re-analyze.
    ///
    /// Follows the same edges as [`Dfg::downstream_cone`], including the
    /// sequential edge into a delay.
    pub fn downstream_mask(&self, roots: &[NodeId]) -> Vec<bool> {
        let n = self.nodes.len();
        let mut reachable = vec![false; n];
        for r in roots {
            reachable[r.0] = true;
        }
        // Id order is not an evaluation order (a delay's argument may have
        // a larger id), so sweep to a fixpoint; combinational edges
        // resolve in one forward pass and each extra pass crosses at
        // least one delay, so this terminates quickly.
        loop {
            let mut changed = false;
            for (i, node) in self.nodes.iter().enumerate() {
                if reachable[i] {
                    continue;
                }
                if node.args.iter().any(|a| reachable[a.0]) {
                    reachable[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        reachable
    }

    /// The upstream closure of `targets`: every node from which some
    /// target is reachable through at least one edge (delay edges
    /// included).  The targets themselves are *not* marked unless they
    /// feed another target — this is "who can influence a target's
    /// operands", the invalidation set for gain reuse when a local
    /// coefficient at a target changes.
    pub fn upstream_of(&self, targets: &[NodeId]) -> Vec<bool> {
        let n = self.nodes.len();
        let mut is_target = vec![false; n];
        for t in targets {
            is_target[t.0] = true;
        }
        let mut reaches = vec![false; n];
        // reaches[i] ⇔ some consumer j of i has reaches[j] or is a target.
        loop {
            let mut changed = false;
            for (j, node) in self.nodes.iter().enumerate() {
                if !(reaches[j] || is_target[j]) {
                    continue;
                }
                for a in &node.args {
                    if !reaches[a.0] {
                        reaches[a.0] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        reaches
    }

    /// The ids of every `Const` node, in id order — the coefficient slots
    /// of [`Dfg::with_const_values`].
    pub fn const_nodes(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| matches!(n.op(), Op::Const(_)))
            .map(|(id, _)| id)
            .collect()
    }

    /// The current constant values, in [`Dfg::const_nodes`] order — the
    /// graph's coefficient vector.
    pub fn const_values(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .filter_map(|n| match n.op {
                Op::Const(c) => Some(c),
                _ => None,
            })
            .collect()
    }

    /// A copy of the graph with every `Const` value replaced, in
    /// [`Dfg::const_nodes`] order — the "same shape, new coefficients"
    /// skeleton reuse behind incremental recompilation.  Everything
    /// structural (node ids, arguments, names, topological order, delay
    /// inventory, outputs) is preserved verbatim.
    ///
    /// # Errors
    ///
    /// [`DfgError::WrongInputCount`] when `values.len()` differs from the
    /// number of constant nodes (reusing the counting error shape: the
    /// expected/got pair names the constant slots).
    pub fn with_const_values(&self, values: &[f64]) -> Result<Dfg, DfgError> {
        let n_consts = self
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Const(_)))
            .count();
        if values.len() != n_consts {
            return Err(DfgError::WrongInputCount {
                expected: n_consts,
                got: values.len(),
            });
        }
        let mut patched = self.clone();
        let mut next = values.iter();
        for node in &mut patched.nodes {
            if matches!(node.op, Op::Const(_)) {
                node.op = Op::Const(*next.next().expect("counted above"));
            }
        }
        Ok(patched)
    }

    /// A canonical text rendering of the graph's *shape*: every node's
    /// operation (with `Const` **values masked out**), arguments and
    /// name, plus the declared outputs.  Two graphs share a signature
    /// exactly when one is [`Dfg::with_const_values`] of the other — the
    /// key of coefficient-level skeleton caches.
    ///
    /// Input ranges are not part of the graph and must be appended by
    /// the caller when they matter for the cached artifact.
    #[must_use]
    pub fn shape_signature(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.nodes.len() * 16);
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = write!(out, "n{i} ");
            match node.op {
                Op::Input(k) => {
                    let _ = write!(out, "in{k}");
                }
                Op::Const(_) => out.push_str("const#"), // value masked
                _ => out.push_str(node.op.mnemonic()),
            }
            for a in &node.args {
                let _ = write!(out, " n{}", a.0);
            }
            if let Some(name) = &node.name {
                let _ = write!(out, " \"{name}\"");
            }
            out.push('\n');
        }
        for (name, id) in &self.outputs {
            let _ = writeln!(out, "out \"{name}\" n{}", id.0);
        }
        // Range overrides change every downstream analysis, so two
        // shapes that differ only in overrides must not alias.
        for (i, ov) in self.overrides.iter().enumerate() {
            if let Some(r) = ov {
                let _ = writeln!(
                    out,
                    "override n{i} {:016x} {:016x}",
                    r.lo().to_bits(),
                    r.hi().to_bits()
                );
            }
        }
        out
    }

    /// Per-node signal dependence: `true` for nodes whose value depends
    /// (transitively, through combinational edges or delays) on some
    /// input.  The complement — constant-driven nodes — is exactly the
    /// set whose values shift when only coefficients change.
    pub fn signal_dependent_mask(&self) -> Vec<bool> {
        crate::range::signal_dependent(self)
    }

    /// Validates that `id` belongs to this graph.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::UnknownNode`] otherwise.
    pub fn check_node(&self, id: NodeId) -> Result<(), DfgError> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(DfgError::UnknownNode { node: id })
        }
    }
}

/// Kahn topological sort over the combinational edges (delay nodes are
/// sources: their incoming edge is sequential, not combinational).
pub(crate) fn combinational_topo(nodes: &[Node]) -> Result<Vec<NodeId>, DfgError> {
    let n = nodes.len();
    let mut indegree = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        if node.op == Op::Delay {
            continue; // sequential edge
        }
        for a in &node.args {
            succs[a.0].push(i);
            indegree[i] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        order.push(NodeId(i));
        for &s in &succs[i] {
            indegree[s] -= 1;
            if indegree[s] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() != n {
        let node = (0..n)
            .find(|&i| indegree[i] > 0)
            .map(NodeId)
            .expect("some node has positive indegree");
        return Err(DfgError::CombinationalCycle { node });
    }
    // Exclude delays from the evaluation order (their output is state).
    Ok(order
        .into_iter()
        .filter(|id| nodes[id.0].op != Op::Delay)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;

    fn fir2() -> Dfg {
        // y[n] = x[n] + 0.5 x[n-1]
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let xd = b.delay(x);
        let c = b.constant(0.5);
        let t = b.mul(c, xd);
        let y = b.add(x, t);
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn op_metadata() {
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Neg.arity(), 1);
        assert_eq!(Op::Const(1.0).arity(), 0);
        assert!(Op::Mul.is_arithmetic());
        assert!(!Op::Delay.is_arithmetic());
        assert_eq!(Op::Div.mnemonic(), "div");
    }

    #[test]
    fn graph_queries() {
        let g = fir2();
        assert_eq!(g.len(), 5);
        assert_eq!(g.n_inputs(), 1);
        assert_eq!(g.input_names(), &["x".to_string()]);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.delay_nodes().len(), 1);
        assert!(!g.is_combinational());
        let c = g.op_counts();
        assert_eq!(c.adds, 1);
        assert_eq!(c.muls, 1);
        assert_eq!(c.delays, 1);
        assert_eq!(c.arithmetic(), 2);
    }

    #[test]
    fn depth_counts_arithmetic_stages() {
        let g = fir2();
        // x -> (mul) -> (add): depth 2.
        assert_eq!(g.depth(), 2);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = fir2();
        let pos: Vec<usize> = {
            let mut pos = vec![usize::MAX; g.len()];
            for (k, id) in g.topo_order().iter().enumerate() {
                pos[id.index()] = k;
            }
            pos
        };
        for (id, node) in g.nodes() {
            if node.op() == Op::Delay {
                continue;
            }
            for a in node.args() {
                if g.node(*a).op() == Op::Delay {
                    continue;
                }
                assert!(pos[a.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn combinational_view_replaces_delays_with_inputs() {
        let g = fir2();
        let c = g.combinational_view();
        assert!(c.is_combinational());
        assert_eq!(c.n_inputs(), 2);
        assert_eq!(c.op_counts().delays, 0);
        // Same arithmetic structure.
        assert_eq!(c.op_counts().arithmetic(), g.op_counts().arithmetic());
        // Evaluating the view with explicit state matches a simulator step.
        let y = crate::Simulator::new(&g).step(&[2.0]).unwrap();
        let yv = c.evaluate(&[2.0, 0.0]).unwrap();
        assert_eq!(y, yv);
    }

    #[test]
    fn downstream_cone_follows_all_consumer_edges() {
        let g = fir2();
        // Node ids in build order: x=0, xd=1 (delay), c=2, t=3 (mul),
        // y=4 (add).
        let cone_of = |i: usize| {
            let mut v: Vec<usize> = g
                .downstream_cone(NodeId(i))
                .iter()
                .map(|n| n.index())
                .collect();
            v.sort_unstable();
            v
        };
        // x feeds the delay (sequential edge), the mul via the delay, and
        // the add directly: everything is downstream.
        assert_eq!(cone_of(0), vec![0, 1, 3, 4]);
        // The constant only feeds mul -> add.
        assert_eq!(cone_of(2), vec![2, 3, 4]);
        // The output add reaches only itself.
        assert_eq!(cone_of(4), vec![4]);
    }

    #[test]
    fn downstream_cone_is_in_evaluation_order() {
        let g = fir2();
        let pos: Vec<usize> = {
            let mut pos = vec![usize::MAX; g.len()];
            for (k, id) in g.topo_order().iter().enumerate() {
                pos[id.index()] = k;
            }
            pos
        };
        for (id, _) in g.nodes() {
            let cone = g.downstream_cone(id);
            let combinational: Vec<usize> = cone
                .iter()
                .filter(|n| g.node(**n).op() != Op::Delay)
                .map(|n| pos[n.index()])
                .collect();
            assert!(
                combinational.windows(2).all(|w| w[0] < w[1]),
                "cone of {id} not topo-sorted"
            );
            assert!(cone.contains(&id));
        }
    }

    #[test]
    fn downstream_cone_through_feedback_reaches_the_loop() {
        // y = x + 0.5·y[n-1]: the constant's cone crosses the delay and
        // covers the whole loop body.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let cone = g.downstream_cone(x);
        // x -> add -> delay -> mul -> add: all of the loop is reachable.
        assert!(cone.len() >= 4, "cone {cone:?}");
        assert!(cone.contains(&fb));
        assert!(cone.contains(&y));
    }

    #[test]
    fn const_values_round_trip_through_with_const_values() {
        let g = fir2();
        assert_eq!(g.const_values(), vec![0.5]);
        assert_eq!(g.const_nodes().len(), 1);
        let patched = g.with_const_values(&[0.25]).unwrap();
        assert_eq!(patched.const_values(), vec![0.25]);
        // Structure is untouched: same ids, args, topo order, outputs.
        assert_eq!(patched.len(), g.len());
        assert_eq!(patched.topo_order(), g.topo_order());
        assert_eq!(patched.delay_nodes(), g.delay_nodes());
        assert_eq!(patched.outputs(), g.outputs());
        // And the new coefficient is live.
        let mut sim = crate::Simulator::new(&patched);
        assert_eq!(sim.step(&[1.0]).unwrap(), vec![1.0]);
        assert_eq!(sim.step(&[0.0]).unwrap(), vec![0.25]);
        // Wrong slot count is rejected.
        assert!(matches!(
            g.with_const_values(&[0.1, 0.2]),
            Err(DfgError::WrongInputCount { .. })
        ));
    }

    #[test]
    fn downstream_mask_unions_roots() {
        let g = fir2();
        // Roots {c=2, x=0}: everything but nothing extra beyond the two
        // single-root cones.
        let mask = g.downstream_mask(&[NodeId(2), NodeId(0)]);
        let expect: Vec<usize> = vec![0, 1, 2, 3, 4];
        let got: Vec<usize> = (0..g.len()).filter(|&i| mask[i]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn upstream_of_marks_strict_influencers() {
        let g = fir2();
        // Node ids: x=0, xd=1 (delay), c=2, t=3 (mul), y=4 (add).
        let up = g.upstream_of(&[NodeId(3)]);
        // x (via the delay), the delay, and the constant can influence the
        // mul's operands; the mul itself and the add cannot.
        assert!(up[0] && up[1] && up[2]);
        assert!(!up[3] && !up[4]);
    }

    #[test]
    fn signal_dependent_mask_separates_constant_driven_nodes() {
        let g = fir2();
        let dep = g.signal_dependent_mask();
        assert!(dep[0] && dep[1] && dep[3] && dep[4]);
        assert!(!dep[2], "the constant is not signal dependent");
    }

    #[test]
    fn check_node_rejects_foreign_ids() {
        let g = fir2();
        assert!(g.check_node(NodeId(0)).is_ok());
        assert!(matches!(
            g.check_node(NodeId(99)),
            Err(DfgError::UnknownNode { .. })
        ));
    }
}
