use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while building, validating or analyzing a dataflow graph.
#[derive(Clone, Debug, PartialEq)]
pub enum DfgError {
    /// A delay placeholder was never bound to a source node.
    UnboundDelay {
        /// The offending delay node.
        node: NodeId,
    },
    /// A delay placeholder was bound more than once.
    DelayAlreadyBound {
        /// The offending delay node.
        node: NodeId,
    },
    /// The graph contains a cycle that does not pass through a delay.
    CombinationalCycle {
        /// A node on the cycle.
        node: NodeId,
    },
    /// A node id does not belong to this graph/builder.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
    /// The graph declares no outputs.
    NoOutputs,
    /// Two outputs share the same name.
    DuplicateOutput {
        /// The repeated name.
        name: String,
    },
    /// An evaluation was called with the wrong number of inputs.
    WrongInputCount {
        /// Number of graph inputs.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// Division by zero during `f64` evaluation.
    DivisionByZero {
        /// The division node.
        node: NodeId,
    },
    /// Range analysis did not converge (feedback loop with gain >= 1 or
    /// too few iterations).
    RangeDivergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// Range analysis encountered a division by a zero-straddling range.
    RangeDivisionByZero {
        /// The division node.
        node: NodeId,
    },
    /// An analysis requiring linearity found a nonlinear node.
    NonlinearNode {
        /// The offending node.
        node: NodeId,
    },
    /// An impulse response failed to decay (unstable feedback).
    UnstableImpulse {
        /// The injection node.
        node: NodeId,
        /// Steps simulated before giving up.
        steps: usize,
    },
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::UnboundDelay { node } => write!(f, "delay node {node} was never bound"),
            DfgError::DelayAlreadyBound { node } => {
                write!(f, "delay node {node} is already bound")
            }
            DfgError::CombinationalCycle { node } => {
                write!(f, "combinational cycle through node {node}")
            }
            DfgError::UnknownNode { node } => write!(f, "node {node} is not in this graph"),
            DfgError::NoOutputs => write!(f, "graph declares no outputs"),
            DfgError::DuplicateOutput { name } => {
                write!(f, "output name {name:?} is declared twice")
            }
            DfgError::WrongInputCount { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            DfgError::DivisionByZero { node } => {
                write!(f, "division by zero at node {node}")
            }
            DfgError::RangeDivergence { iterations } => {
                write!(f, "range analysis diverged after {iterations} iterations")
            }
            DfgError::RangeDivisionByZero { node } => {
                write!(f, "range of divisor at node {node} contains zero")
            }
            DfgError::NonlinearNode { node } => {
                write!(f, "node {node} is nonlinear in the signal path")
            }
            DfgError::UnstableImpulse { node, steps } => write!(
                f,
                "impulse response from node {node} did not decay within {steps} steps"
            ),
        }
    }
}

impl Error for DfgError {}
