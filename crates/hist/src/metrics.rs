//! Distances between histograms, used to validate SNA results against
//! Monte-Carlo ground truth.

use crate::Histogram;

impl Histogram {
    /// Kolmogorov–Smirnov distance: `sup_x |F(x) - G(x)|`, evaluated on the
    /// union of both bin-edge sets (where the piecewise-linear CDFs attain
    /// their extrema).
    pub fn kolmogorov_distance(&self, other: &Histogram) -> f64 {
        let mut edges: Vec<f64> = self.grid().edges().chain(other.grid().edges()).collect();
        edges.sort_by(|a, b| a.partial_cmp(b).expect("finite edges"));
        edges
            .iter()
            .map(|&x| (self.cdf(x) - other.cdf(x)).abs())
            .fold(0.0, f64::max)
    }

    /// Total-variation distance `½ ∫ |f - g|`, computed on a common
    /// refinement grid of `resolution` cells spanning both supports.
    pub fn total_variation(&self, other: &Histogram, resolution: usize) -> f64 {
        let lo = self.support().0.min(other.support().0);
        let hi = self.support().1.max(other.support().1);
        if hi <= lo || resolution == 0 {
            return 0.0;
        }
        let dx = (hi - lo) / resolution as f64;
        let mut acc = 0.0;
        for i in 0..resolution {
            let x = lo + (i as f64 + 0.5) * dx;
            acc += (self.density(x) - other.density(x)).abs() * dx;
        }
        0.5 * acc
    }

    /// First-Wasserstein (earth mover's) distance `∫ |F(x) - G(x)| dx`
    /// computed by trapezoidal quadrature over the joint support.
    pub fn wasserstein_distance(&self, other: &Histogram, resolution: usize) -> f64 {
        let lo = self.support().0.min(other.support().0);
        let hi = self.support().1.max(other.support().1);
        if hi <= lo || resolution == 0 {
            return 0.0;
        }
        let dx = (hi - lo) / resolution as f64;
        (0..=resolution)
            .map(|i| {
                let x = lo + i as f64 * dx;
                let w = if i == 0 || i == resolution { 0.5 } else { 1.0 };
                w * (self.cdf(x) - other.cdf(x)).abs() * dx
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histograms_have_zero_distance() {
        let h = Histogram::triangular(0.0, 1.0, 32).unwrap();
        assert!(h.kolmogorov_distance(&h) < 1e-12);
        assert!(h.total_variation(&h, 1000) < 1e-12);
        assert!(h.wasserstein_distance(&h, 1000) < 1e-12);
    }

    #[test]
    fn disjoint_histograms_have_maximal_tv() {
        let a = Histogram::uniform(0.0, 1.0, 8).unwrap();
        let b = Histogram::uniform(2.0, 3.0, 8).unwrap();
        assert!((a.total_variation(&b, 3000) - 1.0).abs() < 1e-2);
        assert!((a.kolmogorov_distance(&b) - 1.0).abs() < 1e-12);
        // Wasserstein = distance between the means for translated copies.
        assert!((a.wasserstein_distance(&b, 4000) - 2.0).abs() < 1e-2);
    }

    #[test]
    fn ks_detects_shape_differences() {
        let u = Histogram::uniform(0.0, 1.0, 64).unwrap();
        let t = Histogram::triangular(0.0, 1.0, 64).unwrap();
        let d = u.kolmogorov_distance(&t);
        assert!(d > 0.1 && d < 0.3, "unexpected KS distance {d}");
    }

    #[test]
    fn distances_shrink_with_refinement() {
        // A coarse approximation of a triangular density approaches the fine
        // one as bins increase.
        let fine = Histogram::triangular(0.0, 1.0, 256).unwrap();
        let coarse = Histogram::triangular(0.0, 1.0, 8).unwrap();
        let finer = Histogram::triangular(0.0, 1.0, 64).unwrap();
        assert!(fine.kolmogorov_distance(&finer) < fine.kolmogorov_distance(&coarse));
    }
}
