//! Plain-text rendering of histograms, used by the repro binaries to emit
//! the paper's Figure 1 and Figure 3 as terminal plots.

use std::fmt::Write as _;

use crate::Histogram;

/// Options for [`Histogram::render_ascii`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RenderOptions {
    /// Maximum bar length in characters.
    pub bar_width: usize,
    /// Print at most this many rows (bins are coarsened on overflow by
    /// grouping adjacent bins).
    pub max_rows: usize,
    /// Show cumulative probability alongside each bar.
    pub show_cdf: bool,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            bar_width: 50,
            max_rows: 32,
            show_cdf: false,
        }
    }
}

impl Histogram {
    /// Renders the histogram as an ASCII bar chart, one row per bin.
    ///
    /// # Example
    ///
    /// ```
    /// use sna_hist::{Histogram, RenderOptions};
    ///
    /// # fn main() -> Result<(), sna_hist::HistError> {
    /// let h = Histogram::triangular(-1.0, 1.0, 8)?;
    /// let plot = h.render_ascii(&RenderOptions::default());
    /// assert!(plot.lines().count() >= 8);
    /// # Ok(())
    /// # }
    /// ```
    pub fn render_ascii(&self, opts: &RenderOptions) -> String {
        // Group bins when there are more than max_rows of them.
        let group = self.n_bins().div_ceil(opts.max_rows.max(1));
        let rows: Vec<(f64, f64, f64)> = self
            .probs()
            .chunks(group)
            .enumerate()
            .map(|(r, chunk)| {
                let lo = self.grid().bin_lo(r * group);
                let hi = lo + self.grid().bin_width() * chunk.len() as f64;
                (lo, hi, chunk.iter().sum::<f64>())
            })
            .collect();
        let peak = rows.iter().map(|r| r.2).fold(0.0, f64::max).max(1e-300);
        let mut out = String::new();
        let mut cum = 0.0;
        for (lo, hi, p) in rows {
            cum += p;
            let bar_len = ((p / peak) * opts.bar_width as f64).round() as usize;
            let bar: String = "█".repeat(bar_len);
            if opts.show_cdf {
                let _ = writeln!(out, "[{lo:>10.4}, {hi:>10.4})  {p:>8.5}  {cum:>7.4}  {bar}");
            } else {
                let _ = writeln!(out, "[{lo:>10.4}, {hi:>10.4})  {p:>8.5}  {bar}");
            }
        }
        out
    }

    /// Returns `(bin midpoint, probability)` pairs — the series a plotting
    /// tool would consume.
    pub fn to_series(&self) -> Vec<(f64, f64)> {
        (0..self.n_bins())
            .map(|i| (self.grid().bin_mid(i), self.prob(i)))
            .collect()
    }

    /// Returns `(bin midpoint, density)` pairs (probability / bin width).
    pub fn to_density_series(&self) -> Vec<(f64, f64)> {
        let w = self.grid().bin_width();
        (0..self.n_bins())
            .map(|i| (self.grid().bin_mid(i), self.prob(i) / w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_one_row_per_bin() {
        let h = Histogram::uniform(0.0, 1.0, 8).unwrap();
        let s = h.render_ascii(&RenderOptions::default());
        assert_eq!(s.lines().count(), 8);
        assert!(s.contains("█"));
    }

    #[test]
    fn render_groups_when_too_many_bins() {
        let h = Histogram::uniform(0.0, 1.0, 128).unwrap();
        let opts = RenderOptions {
            max_rows: 16,
            ..RenderOptions::default()
        };
        let s = h.render_ascii(&opts);
        assert_eq!(s.lines().count(), 16);
    }

    #[test]
    fn cdf_column_reaches_one() {
        let h = Histogram::triangular(0.0, 1.0, 8).unwrap();
        let opts = RenderOptions {
            show_cdf: true,
            ..RenderOptions::default()
        };
        let s = h.render_ascii(&opts);
        let last = s.lines().last().unwrap();
        assert!(last.contains("1.0000"), "last row: {last}");
    }

    #[test]
    fn series_round_trips_probabilities() {
        let h = Histogram::triangular(-1.0, 1.0, 16).unwrap();
        let series = h.to_series();
        assert_eq!(series.len(), 16);
        let total: f64 = series.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let dens = h.to_density_series();
        assert!((dens[8].1 - h.density(dens[8].0)).abs() < 1e-12);
    }
}
