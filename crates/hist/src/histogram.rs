use std::fmt;

use sna_interval::Interval;

use crate::{Grid, HistError};

/// A discretized probability density: a [`Grid`] plus one probability mass
/// per bin, with mass distributed *uniformly within each bin*.
///
/// Histograms are always kept normalized (total mass 1) by their
/// constructors.  All moments and quantiles honour the uniform-within-bin
/// interpretation, so e.g. the variance of `Histogram::uniform(0, 1, n)` is
/// exactly `1/12` for any `n`.
///
/// # Example
///
/// ```
/// use sna_hist::Histogram;
///
/// # fn main() -> Result<(), sna_hist::HistError> {
/// let h = Histogram::uniform(-1.0, 1.0, 32)?;
/// assert!((h.mean()).abs() < 1e-12);
/// assert!((h.variance() - 1.0 / 3.0).abs() < 1e-12);
/// assert_eq!(h.support(), (-1.0, 1.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    grid: Grid,
    probs: Vec<f64>,
}

impl Histogram {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a histogram from a grid and per-bin masses, normalizing the
    /// total mass to 1.
    ///
    /// # Errors
    ///
    /// * [`HistError::NegativeMass`] / [`HistError::NonFinite`] for invalid
    ///   masses;
    /// * [`HistError::ZeroTotalMass`] when all masses are zero;
    /// * [`HistError::ZeroBins`] when `masses.len() != grid.n_bins()`.
    pub fn from_masses(grid: Grid, masses: Vec<f64>) -> Result<Self, HistError> {
        if masses.len() != grid.n_bins() {
            return Err(HistError::ZeroBins);
        }
        let mut total = 0.0;
        for &m in &masses {
            if !m.is_finite() {
                return Err(HistError::NonFinite { value: m });
            }
            if m < 0.0 {
                return Err(HistError::NegativeMass { value: m });
            }
            total += m;
        }
        if total <= 0.0 {
            return Err(HistError::ZeroTotalMass);
        }
        let probs = masses.into_iter().map(|m| m / total).collect();
        Ok(Histogram { grid, probs })
    }

    /// The uniform distribution on `[lo, hi]` with `bins` bins.
    ///
    /// # Errors
    ///
    /// Propagates grid construction errors (see [`Grid::new`]).
    pub fn uniform(lo: f64, hi: f64, bins: usize) -> Result<Self, HistError> {
        let grid = Grid::new(lo, hi, bins)?;
        let p = 1.0 / bins as f64;
        Ok(Histogram {
            grid,
            probs: vec![p; bins],
        })
    }

    /// The standard SNA noise symbol: uniform on `[-1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroBins`] if `bins == 0`.
    pub fn unit_symbol(bins: usize) -> Result<Self, HistError> {
        Histogram::uniform(-1.0, 1.0, bins)
    }

    /// A symmetric triangular distribution on `[lo, hi]` (mode at the
    /// midpoint).
    ///
    /// # Errors
    ///
    /// Propagates grid construction errors.
    pub fn triangular(lo: f64, hi: f64, bins: usize) -> Result<Self, HistError> {
        let mid = 0.5 * (lo + hi);
        Histogram::from_density_fn(lo, hi, bins, |x| {
            let half = 0.5 * (hi - lo);
            (1.0 - (x - mid).abs() / half).max(0.0)
        })
    }

    /// A Gaussian with the given mean and standard deviation, truncated to
    /// `[mean - 4σ, mean + 4σ]`.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::NonFinite`] for non-finite parameters or
    /// [`HistError::EmptySupport`] when `sd <= 0`.
    pub fn gaussian(mean: f64, sd: f64, bins: usize) -> Result<Self, HistError> {
        if !mean.is_finite() {
            return Err(HistError::NonFinite { value: mean });
        }
        if !sd.is_finite() {
            return Err(HistError::NonFinite { value: sd });
        }
        Histogram::from_density_fn(mean - 4.0 * sd, mean + 4.0 * sd, bins, |x| {
            let z = (x - mean) / sd;
            (-0.5 * z * z).exp()
        })
    }

    /// Builds a histogram by sampling a (not necessarily normalized) density
    /// function at bin midpoints.
    ///
    /// # Errors
    ///
    /// Propagates grid errors; returns [`HistError::ZeroTotalMass`] if the
    /// density is zero everywhere on the support.
    pub fn from_density_fn(
        lo: f64,
        hi: f64,
        bins: usize,
        density: impl Fn(f64) -> f64,
    ) -> Result<Self, HistError> {
        let grid = Grid::new(lo, hi, bins)?;
        let masses: Vec<f64> = (0..bins).map(|i| density(grid.bin_mid(i))).collect();
        Histogram::from_masses(grid, masses)
    }

    /// Builds an empirical histogram from samples; the support is the sample
    /// range (widened slightly for a degenerate range).
    ///
    /// # Errors
    ///
    /// Returns [`HistError::NoSamples`] for an empty iterator and
    /// [`HistError::NonFinite`] when a sample is NaN/infinite.
    pub fn from_samples(
        samples: impl IntoIterator<Item = f64>,
        bins: usize,
    ) -> Result<Self, HistError> {
        let samples: Vec<f64> = samples.into_iter().collect();
        if samples.is_empty() {
            return Err(HistError::NoSamples);
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &s in &samples {
            if !s.is_finite() {
                return Err(HistError::NonFinite { value: s });
            }
            lo = lo.min(s);
            hi = hi.max(s);
        }
        if lo == hi {
            // Degenerate sample set: widen to a tiny symmetric support.
            let pad = lo.abs().max(1.0) * 1e-12;
            lo -= pad;
            hi += pad;
        }
        let grid = Grid::new(lo, hi, bins)?;
        let mut masses = vec![0.0; bins];
        for &s in &samples {
            masses[grid.bin_of(s)] += 1.0;
        }
        Histogram::from_masses(grid, masses)
    }

    /// Deposits a collection of `(interval, mass)` pairs onto a grid,
    /// spreading each mass uniformly over its interval.
    ///
    /// This is the core *rebinning* primitive of Berleant-style histogram
    /// arithmetic: partial results of an operation land here.  Mass falling
    /// outside the grid is clamped to the boundary bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroTotalMass`] when the total deposited mass is
    /// zero, and propagates invalid masses.
    pub fn from_interval_masses(
        grid: Grid,
        pairs: impl IntoIterator<Item = (Interval, f64)>,
    ) -> Result<Self, HistError> {
        let mut masses = vec![0.0; grid.n_bins()];
        for (iv, m) in pairs {
            if !m.is_finite() {
                return Err(HistError::NonFinite { value: m });
            }
            if m < 0.0 {
                return Err(HistError::NegativeMass { value: m });
            }
            deposit_uniform(&grid, &mut masses, iv, m);
        }
        Histogram::from_masses(grid, masses)
    }

    // ------------------------------------------------------------------
    // Geometry / access
    // ------------------------------------------------------------------

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.probs.len()
    }

    /// Probability mass of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_bins()`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// The probability masses, one per bin.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Iterates over `(bin interval, probability)` pairs.
    pub fn bins(&self) -> impl Iterator<Item = (Interval, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .map(move |(i, &p)| (self.grid.bin_interval(i), p))
    }

    /// The support `(lo, hi)` of the grid.
    pub fn support(&self) -> (f64, f64) {
        (self.grid.lo(), self.grid.hi())
    }

    /// The support restricted to bins carrying at least `eps` mass.
    ///
    /// With `eps = 0.0` this trims only exactly-empty boundary bins; it is
    /// the "effective bounds" view used when reporting SNA ranges.
    pub fn effective_support(&self, eps: f64) -> (f64, f64) {
        let first = self.probs.iter().position(|&p| p > eps);
        let last = self.probs.iter().rposition(|&p| p > eps);
        match (first, last) {
            (Some(a), Some(b)) => (
                self.grid.bin_lo(a),
                self.grid.bin_lo(b) + self.grid.bin_width(),
            ),
            _ => self.support(),
        }
    }

    /// Probability density at `x` (mass / bin width), 0 outside the support.
    pub fn density(&self, x: f64) -> f64 {
        let (lo, hi) = self.support();
        if x < lo || x > hi {
            return 0.0;
        }
        self.probs[self.grid.bin_of(x)] / self.grid.bin_width()
    }

    // ------------------------------------------------------------------
    // Moments & quantiles
    // ------------------------------------------------------------------

    /// Mean under the uniform-within-bin interpretation.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * self.grid.bin_mid(i))
            .sum()
    }

    /// Variance under the uniform-within-bin interpretation (includes the
    /// `w²/12` within-bin spread).
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        let w2 = self.grid.bin_width() * self.grid.bin_width() / 12.0;
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let d = self.grid.bin_mid(i) - mean;
                p * (d * d + w2)
            })
            .sum()
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Raw moment `E[xᵏ]`, exact for the uniform-within-bin density.
    pub fn moment(&self, k: u32) -> f64 {
        if k == 0 {
            return 1.0;
        }
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| p * uniform_moment(self.grid.bin_interval(i), k))
            .sum()
    }

    /// Central moment `E[(x - mean)ᵏ]`.
    pub fn central_moment(&self, k: u32) -> f64 {
        let mean = self.mean();
        // Expand around the mean using per-bin uniform moments of (x - mean).
        self.probs
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let iv = self.grid.bin_interval(i).shift(-mean);
                p * uniform_moment(iv, k)
            })
            .sum()
    }

    /// Noise power `E[x²] = variance + mean²` — the quantity the paper's
    /// synthesis tables constrain.
    pub fn noise_power(&self) -> f64 {
        self.moment(2)
    }

    /// Cumulative distribution function `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        let (lo, hi) = self.support();
        if x <= lo {
            return 0.0;
        }
        if x >= hi {
            return 1.0;
        }
        let i = self.grid.bin_of(x);
        let below: f64 = self.probs[..i].iter().sum();
        let frac = (x - self.grid.bin_lo(i)) / self.grid.bin_width();
        below + self.probs[i] * frac
    }

    /// Quantile (inverse CDF) for `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile requires q in [0, 1]");
        if q == 0.0 {
            return self.grid.lo();
        }
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            if acc + p >= q {
                if p == 0.0 {
                    return self.grid.bin_lo(i);
                }
                let frac = (q - acc) / p;
                return self.grid.bin_lo(i) + frac * self.grid.bin_width();
            }
            acc += p;
        }
        self.grid.hi()
    }

    /// Central interval containing probability `coverage` (e.g. `0.99`),
    /// i.e. `[quantile((1-c)/2), quantile(1-(1-c)/2)]`.
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn credible_interval(&self, coverage: f64) -> (f64, f64) {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must lie in [0, 1]"
        );
        let tail = 0.5 * (1.0 - coverage);
        (self.quantile(tail), self.quantile(1.0 - tail))
    }

    /// Index of the bin with the highest mass (first one on ties).
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &p) in self.probs.iter().enumerate() {
            if p > self.probs[best] {
                best = i;
            }
        }
        best
    }

    // ------------------------------------------------------------------
    // Reshaping
    // ------------------------------------------------------------------

    /// Redistributes the mass onto a different grid (uniform-within-bin).
    ///
    /// Mass falling outside the target grid is clamped into its boundary
    /// bins, so the result is still a distribution.
    ///
    /// # Errors
    ///
    /// Propagates [`HistError::ZeroTotalMass`] (cannot occur for a valid
    /// source histogram, but kept for API uniformity).
    pub fn rebin(&self, grid: Grid) -> Result<Histogram, HistError> {
        Histogram::from_interval_masses(grid, self.bins())
    }

    /// Merges every `factor` adjacent bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroBins`] when `factor` does not divide the bin
    /// count.
    pub fn coarsen(&self, factor: usize) -> Result<Histogram, HistError> {
        let grid = self.grid.coarsen(factor)?;
        let probs = self.probs.chunks(factor).map(|c| c.iter().sum()).collect();
        Ok(Histogram { grid, probs })
    }

    /// Drops leading/trailing bins whose cumulative mass is below `tail_eps`
    /// on each side, renormalizing the rest.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroTotalMass`] if `tail_eps` would remove all
    /// mass.
    pub fn trim_tails(&self, tail_eps: f64) -> Result<Histogram, HistError> {
        let n = self.n_bins();
        let mut first = 0;
        let mut acc = 0.0;
        while first < n && acc + self.probs[first] <= tail_eps {
            acc += self.probs[first];
            first += 1;
        }
        let mut last = n;
        acc = 0.0;
        while last > first && acc + self.probs[last - 1] <= tail_eps {
            acc += self.probs[last - 1];
            last -= 1;
        }
        if first >= last {
            return Err(HistError::ZeroTotalMass);
        }
        let grid = Grid::new(
            self.grid.bin_lo(first),
            self.grid.bin_lo(last - 1) + self.grid.bin_width(),
            last - first,
        )?;
        Histogram::from_masses(grid, self.probs[first..last].to_vec())
    }

    /// Clamps the distribution to `[lo, hi]`: mass outside moves onto the
    /// boundary bins.  Models saturation-mode overflow of a fixed-point
    /// register.
    ///
    /// # Errors
    ///
    /// Propagates grid construction errors when `lo >= hi`.
    pub fn clamp(&self, lo: f64, hi: f64) -> Result<Histogram, HistError> {
        let (slo, shi) = self.support();
        if lo <= slo && shi <= hi {
            return Ok(self.clone());
        }
        let grid = Grid::new(lo.max(slo.min(hi)), hi.min(shi.max(lo)), self.n_bins())
            .or_else(|_| Grid::new(lo, hi, self.n_bins()))?;
        let mut masses = vec![0.0; grid.n_bins()];
        for (iv, p) in self.bins() {
            if p == 0.0 {
                continue;
            }
            // Mass below `lo` piles onto the first bin, above `hi` onto the
            // last; the rest deposits proportionally.
            let below = iv.overlap_len(&Interval::new(f64::MIN, lo).unwrap_or(iv));
            let w = iv.width();
            let below_frac = if iv.hi() <= lo {
                1.0
            } else if iv.lo() >= lo {
                0.0
            } else {
                (lo - iv.lo()) / w
            };
            let above_frac = if iv.lo() >= hi {
                1.0
            } else if iv.hi() <= hi {
                0.0
            } else {
                (iv.hi() - hi) / w
            };
            let _ = below;
            masses[0] += p * below_frac;
            let last = grid.n_bins() - 1;
            masses[last] += p * above_frac;
            let mid_frac = 1.0 - below_frac - above_frac;
            if mid_frac > 0.0 {
                let clipped = Interval::new(iv.lo().max(lo), iv.hi().min(hi))
                    .expect("clipped interval is valid");
                deposit_uniform(&grid, &mut masses, clipped, p * mid_frac);
            }
        }
        Histogram::from_masses(grid, masses)
    }

    /// Total probability mass (1 up to rounding).
    pub fn total_mass(&self) -> f64 {
        self.probs.iter().sum()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram({}, mean={:.6}, var={:.6})",
            self.grid,
            self.mean(),
            self.variance()
        )
    }
}

/// `E[xᵏ]` of the uniform distribution on `iv`:
/// `(hiᵏ⁺¹ - loᵏ⁺¹) / ((k+1)(hi - lo))`.
fn uniform_moment(iv: Interval, k: u32) -> f64 {
    let (a, b) = (iv.lo(), iv.hi());
    if a == b {
        return a.powi(k as i32);
    }
    let k1 = (k + 1) as i32;
    (b.powi(k1) - a.powi(k1)) / (k1 as f64 * (b - a))
}

/// Deposits `mass` spread uniformly over `iv` into `masses` on `grid`,
/// clamping out-of-range mass to the boundary bins.
pub(crate) fn deposit_uniform(grid: &Grid, masses: &mut [f64], iv: Interval, mass: f64) {
    if mass == 0.0 {
        return;
    }
    let w = iv.width();
    if w == 0.0 {
        masses[grid.bin_of(iv.mid())] += mass;
        return;
    }
    let lo_bin = grid.bin_of(iv.lo());
    let hi_bin = grid.bin_of(iv.hi());
    // Clamp: portions outside the grid go to the boundary bins.
    let below = (grid.lo() - iv.lo()).max(0.0).min(w);
    let above = (iv.hi() - grid.hi()).max(0.0).min(w);
    if below > 0.0 {
        masses[0] += mass * below / w;
    }
    if above > 0.0 {
        masses[grid.n_bins() - 1] += mass * above / w;
    }
    for (i, m) in masses.iter_mut().enumerate().take(hi_bin + 1).skip(lo_bin) {
        let overlap = grid.bin_interval(i).overlap_len(&iv);
        if overlap > 0.0 {
            *m += mass * overlap / w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn uniform_has_exact_moments() {
        let h = Histogram::uniform(2.0, 6.0, 7).unwrap();
        assert!(close(h.mean(), 4.0, 1e-12));
        assert!(close(h.variance(), 16.0 / 12.0, 1e-12));
        assert!(close(h.moment(1), 4.0, 1e-12));
        assert!(close(h.moment(2), 16.0 / 12.0 + 16.0, 1e-12));
        assert!(close(h.total_mass(), 1.0, 1e-12));
    }

    #[test]
    fn from_masses_normalizes() {
        let g = Grid::new(0.0, 1.0, 2).unwrap();
        let h = Histogram::from_masses(g, vec![1.0, 3.0]).unwrap();
        assert_eq!(h.prob(0), 0.25);
        assert_eq!(h.prob(1), 0.75);
    }

    #[test]
    fn from_masses_rejects_bad_input() {
        let g = Grid::new(0.0, 1.0, 2).unwrap();
        assert!(matches!(
            Histogram::from_masses(g, vec![1.0]),
            Err(HistError::ZeroBins)
        ));
        assert!(matches!(
            Histogram::from_masses(g, vec![-1.0, 2.0]),
            Err(HistError::NegativeMass { .. })
        ));
        assert!(matches!(
            Histogram::from_masses(g, vec![0.0, 0.0]),
            Err(HistError::ZeroTotalMass)
        ));
        assert!(matches!(
            Histogram::from_masses(g, vec![f64::NAN, 1.0]),
            Err(HistError::NonFinite { .. })
        ));
    }

    #[test]
    fn triangular_is_symmetric_and_peaked() {
        let h = Histogram::triangular(-2.0, 2.0, 16).unwrap();
        assert!(close(h.mean(), 0.0, 1e-9));
        // Var of symmetric triangular on [-2,2] is (b-a)²/24 = 16/24.
        assert!(close(h.variance(), 16.0 / 24.0, 2e-2));
        let mode = h.mode_bin();
        assert!(mode == 7 || mode == 8);
    }

    #[test]
    fn gaussian_moments() {
        let h = Histogram::gaussian(1.0, 0.5, 256).unwrap();
        assert!(close(h.mean(), 1.0, 1e-6));
        assert!(close(h.std_dev(), 0.5, 1e-2));
    }

    #[test]
    fn from_samples_builds_empirical_distribution() {
        let samples = [0.0, 0.1, 0.2, 0.9, 1.0];
        let h = Histogram::from_samples(samples, 5).unwrap();
        assert_eq!(h.support(), (0.0, 1.0));
        assert!(h.prob(0) > h.prob(2));
        assert!(Histogram::from_samples(std::iter::empty(), 4).is_err());
        // A constant sample set still works (degenerate support widened).
        let h = Histogram::from_samples([3.0, 3.0, 3.0], 4).unwrap();
        assert!(close(h.mean(), 3.0, 1e-9));
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        let h = Histogram::uniform(0.0, 2.0, 8).unwrap();
        assert_eq!(h.cdf(-1.0), 0.0);
        assert_eq!(h.cdf(3.0), 1.0);
        assert!(close(h.cdf(1.0), 0.5, 1e-12));
        assert!(close(h.quantile(0.5), 1.0, 1e-12));
        for q in [0.1, 0.25, 0.6, 0.99] {
            assert!(close(h.cdf(h.quantile(q)), q, 1e-9));
        }
    }

    #[test]
    fn credible_interval_covers() {
        let h = Histogram::gaussian(0.0, 1.0, 128).unwrap();
        let (lo, hi) = h.credible_interval(0.95);
        assert!(lo < -1.5 && hi > 1.5);
        assert!(close(h.cdf(hi) - h.cdf(lo), 0.95, 1e-6));
    }

    #[test]
    fn rebin_preserves_mass_and_mean() {
        let h = Histogram::triangular(0.0, 1.0, 32).unwrap();
        let g = Grid::new(-0.5, 1.5, 10).unwrap();
        let r = h.rebin(g).unwrap();
        assert!(close(r.total_mass(), 1.0, 1e-12));
        assert!(close(r.mean(), h.mean(), 1e-2));
    }

    #[test]
    fn coarsen_merges_bins() {
        let h = Histogram::uniform(0.0, 1.0, 8).unwrap();
        let c = h.coarsen(4).unwrap();
        assert_eq!(c.n_bins(), 2);
        assert!(close(c.prob(0), 0.5, 1e-12));
        assert!(h.coarsen(3).is_err());
    }

    #[test]
    fn trim_tails_drops_empty_bins() {
        let g = Grid::new(0.0, 1.0, 10).unwrap();
        let mut masses = vec![0.0; 10];
        masses[3] = 1.0;
        masses[4] = 2.0;
        let h = Histogram::from_masses(g, masses).unwrap();
        let t = h.trim_tails(0.0).unwrap();
        assert_eq!(t.n_bins(), 2);
        assert!(close(t.support().0, 0.3, 1e-12));
        assert!(close(t.support().1, 0.5, 1e-12));
    }

    #[test]
    fn effective_support_ignores_empty_edges() {
        let g = Grid::new(0.0, 1.0, 4).unwrap();
        let h = Histogram::from_masses(g, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let (lo, hi) = h.effective_support(0.0);
        assert!(close(lo, 0.25, 1e-12));
        assert!(close(hi, 0.75, 1e-12));
    }

    #[test]
    fn clamp_models_saturation() {
        let h = Histogram::uniform(-2.0, 2.0, 16).unwrap();
        let c = h.clamp(-1.0, 1.0).unwrap();
        assert!(close(c.total_mass(), 1.0, 1e-12));
        let (lo, hi) = c.support();
        assert!(lo >= -1.0 - 1e-12 && hi <= 1.0 + 1e-12);
        // A quarter of the mass saturates at each rail.
        assert!(c.prob(0) > 0.25 - 1e-9);
        assert!(c.prob(c.n_bins() - 1) > 0.25 - 1e-9);
    }

    #[test]
    fn density_integrates_to_one() {
        let h = Histogram::triangular(0.0, 4.0, 64).unwrap();
        let n = 10_000;
        let dx = 4.0 / n as f64;
        let integral: f64 = (0..n)
            .map(|i| h.density(i as f64 * dx + dx / 2.0) * dx)
            .sum();
        assert!(close(integral, 1.0, 1e-6));
    }

    #[test]
    fn central_moments_match_variance() {
        let h = Histogram::gaussian(2.0, 0.7, 128).unwrap();
        assert!(close(h.central_moment(2), h.variance(), 1e-9));
        assert!(close(h.central_moment(1), 0.0, 1e-9));
        // Symmetric ⇒ third central moment ≈ 0.
        assert!(close(h.central_moment(3), 0.0, 1e-6));
    }

    #[test]
    fn deposit_point_interval_lands_in_single_bin() {
        let g = Grid::new(0.0, 1.0, 4).unwrap();
        let h = Histogram::from_interval_masses(g, [(Interval::point(0.6), 1.0)]).unwrap();
        assert_eq!(h.prob(2), 1.0);
    }

    #[test]
    fn deposit_clamps_out_of_range_mass() {
        let g = Grid::new(0.0, 1.0, 4).unwrap();
        let h =
            Histogram::from_interval_masses(g, [(Interval::new(-1.0, 2.0).unwrap(), 1.0)]).unwrap();
        assert!(close(h.total_mass(), 1.0, 1e-12));
        // 1/3 below, 1/3 inside, 1/3 above.
        assert!(h.prob(0) > 0.33);
        assert!(h.prob(3) > 0.33);
    }
}
