use std::fmt;

use sna_interval::Interval;

use crate::HistError;

/// A uniform partition of `[lo, hi]` into `n` equal-width bins.
///
/// A [`Grid`](crate::Grid) is the skeleton of a [`Histogram`](crate::Histogram):
/// it fixes *where* the probability mass can sit.  Operations that must place
/// several histograms on a common footing (rebinning, distance metrics,
/// depositing partial results of histogram arithmetic) are phrased in terms
/// of grids.
///
/// # Example
///
/// ```
/// use sna_hist::Grid;
///
/// # fn main() -> Result<(), sna_hist::HistError> {
/// let grid = Grid::new(-1.0, 1.0, 4)?;
/// assert_eq!(grid.bin_width(), 0.5);
/// assert_eq!(grid.bin_of(-0.3), 1);
/// assert_eq!(grid.bin_of(2.0), 3); // clamped to the last bin
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid {
    lo: f64,
    width: f64,
    n: usize,
}

impl Grid {
    /// Creates a grid over `[lo, hi]` with `n` bins.
    ///
    /// # Errors
    ///
    /// * [`HistError::ZeroBins`] if `n == 0`;
    /// * [`HistError::NonFinite`] if a bound is NaN/infinite;
    /// * [`HistError::EmptySupport`] if `lo >= hi`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Result<Self, HistError> {
        if n == 0 {
            return Err(HistError::ZeroBins);
        }
        if !lo.is_finite() {
            return Err(HistError::NonFinite { value: lo });
        }
        if !hi.is_finite() {
            return Err(HistError::NonFinite { value: hi });
        }
        if lo >= hi {
            return Err(HistError::EmptySupport { lo, hi });
        }
        Ok(Grid {
            lo,
            width: (hi - lo) / n as f64,
            n,
        })
    }

    /// Grid over an [`Interval`].
    ///
    /// # Errors
    ///
    /// Same as [`Grid::new`]; in particular a point interval yields
    /// [`HistError::EmptySupport`].
    pub fn over(interval: Interval, n: usize) -> Result<Self, HistError> {
        Grid::new(interval.lo(), interval.hi(), n)
    }

    /// The paper's standard symbol grid: `[-1, 1]` with the given bin count.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroBins`] if `bins == 0`.
    pub fn symbol(bins: usize) -> Result<Self, HistError> {
        Grid::new(-1.0, 1.0, bins)
    }

    /// Lower edge of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the support.
    pub fn hi(&self) -> f64 {
        self.lo + self.width * self.n as f64
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        self.n
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        self.width
    }

    /// The support as an [`Interval`].
    pub fn support(&self) -> Interval {
        Interval::new(self.lo, self.hi()).expect("grid support is a valid interval")
    }

    /// Lower edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_bins()`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        assert!(i < self.n, "bin index {i} out of range");
        self.lo + self.width * i as f64
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_bins()`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        self.bin_lo(i) + 0.5 * self.width
    }

    /// The closed interval of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_bins()`.
    pub fn bin_interval(&self, i: usize) -> Interval {
        let lo = self.bin_lo(i);
        Interval::new(lo, lo + self.width).expect("bin is a valid interval")
    }

    /// Index of the bin containing `x`, clamped to `[0, n_bins() - 1]`.
    pub fn bin_of(&self, x: f64) -> usize {
        if x <= self.lo {
            return 0;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        idx.min(self.n - 1)
    }

    /// Iterates over the `n + 1` bin edges.
    pub fn edges(&self) -> impl Iterator<Item = f64> + '_ {
        (0..=self.n).map(move |i| self.lo + self.width * i as f64)
    }

    /// Returns a grid with the same support but `factor` times fewer bins.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroBins`] if `factor == 0` or `factor` does not
    /// divide the bin count.
    pub fn coarsen(&self, factor: usize) -> Result<Grid, HistError> {
        if factor == 0 || !self.n.is_multiple_of(factor) {
            return Err(HistError::ZeroBins);
        }
        Grid::new(self.lo, self.hi(), self.n / factor)
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] / {} bins", self.lo, self.hi(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(Grid::new(0.0, 1.0, 0), Err(HistError::ZeroBins));
        assert!(matches!(
            Grid::new(1.0, 1.0, 4),
            Err(HistError::EmptySupport { .. })
        ));
        assert!(matches!(
            Grid::new(f64::NAN, 1.0, 4),
            Err(HistError::NonFinite { .. })
        ));
        assert!(Grid::new(-1.0, 1.0, 4).is_ok());
    }

    #[test]
    fn geometry_queries() {
        let g = Grid::new(-1.0, 1.0, 4).unwrap();
        assert_eq!(g.bin_width(), 0.5);
        assert_eq!(g.hi(), 1.0);
        assert_eq!(g.bin_lo(2), 0.0);
        assert_eq!(g.bin_mid(0), -0.75);
        assert_eq!(g.bin_interval(3), Interval::new(0.5, 1.0).unwrap());
        let edges: Vec<f64> = g.edges().collect();
        assert_eq!(edges, vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
    }

    #[test]
    fn bin_of_clamps() {
        let g = Grid::new(0.0, 1.0, 10).unwrap();
        assert_eq!(g.bin_of(-5.0), 0);
        assert_eq!(g.bin_of(0.0), 0);
        assert_eq!(g.bin_of(0.55), 5);
        assert_eq!(g.bin_of(1.0), 9);
        assert_eq!(g.bin_of(7.0), 9);
    }

    #[test]
    fn coarsen_checks_divisibility() {
        let g = Grid::new(0.0, 1.0, 8).unwrap();
        let c = g.coarsen(4).unwrap();
        assert_eq!(c.n_bins(), 2);
        assert_eq!(c.bin_width(), 0.5);
        assert!(g.coarsen(3).is_err());
        assert!(g.coarsen(0).is_err());
    }

    #[test]
    fn symbol_grid_is_unit_range() {
        let g = Grid::symbol(16).unwrap();
        assert_eq!(g.lo(), -1.0);
        assert_eq!(g.hi(), 1.0);
        assert_eq!(g.n_bins(), 16);
    }
}
