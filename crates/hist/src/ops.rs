//! Histogram arithmetic (Berleant's method).
//!
//! A binary operation on two independent histograms is computed by applying
//! interval arithmetic to every pair of operand bins and depositing the
//! product mass `p_a · p_b` into the output grid.  How each partial result
//! spreads over the output bins is controlled by a [`DepositPolicy`].

use sna_interval::Interval;

use crate::histogram::deposit_uniform;
use crate::{Grid, HistError, Histogram};

/// How a partial result interval deposits its probability mass into the
/// output grid.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DepositPolicy {
    /// Spread the mass uniformly over the result interval (the basic
    /// histogram method of the paper).  Conservative and fast; the default.
    #[default]
    Uniform,
    /// Use the exact within-bin distribution of the operation where one is
    /// known (`x + y` / `x - y` of uniform bins is trapezoidal; `x²` has a
    /// closed-form push-forward).  Falls back to [`DepositPolicy::Uniform`]
    /// for operations without a closed form (multiplication, division,
    /// generic `apply_binary`).
    Exact,
    /// Put all mass into the bin containing the interval midpoint.  Produces
    /// *inner* (non-conservative) bounds; useful for comparison studies.
    Midpoint,
}

/// Options controlling a histogram operation.
///
/// # Example
///
/// ```
/// use sna_hist::{Histogram, OpOptions, DepositPolicy};
///
/// # fn main() -> Result<(), sna_hist::HistError> {
/// let a = Histogram::uniform(0.0, 1.0, 8)?;
/// let b = Histogram::uniform(0.0, 1.0, 8)?;
/// let opts = OpOptions::default().with_out_bins(32).with_deposit(DepositPolicy::Exact);
/// let s = a.add_with(&b, &opts)?;
/// assert_eq!(s.n_bins(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OpOptions {
    /// Number of output bins; defaults to the larger operand bin count.
    pub out_bins: Option<usize>,
    /// Force a specific output grid (out-of-range mass clamps to boundary
    /// bins).  Overrides `out_bins`.
    pub grid: Option<Grid>,
    /// Mass deposit policy.
    pub deposit: DepositPolicy,
}

impl OpOptions {
    /// Sets the number of output bins.
    pub fn with_out_bins(mut self, bins: usize) -> Self {
        self.out_bins = Some(bins);
        self
    }

    /// Forces the output grid.
    pub fn with_grid(mut self, grid: Grid) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Sets the deposit policy.
    pub fn with_deposit(mut self, deposit: DepositPolicy) -> Self {
        self.deposit = deposit;
        self
    }
}

impl Histogram {
    // ------------------------------------------------------------------
    // Binary operations
    // ------------------------------------------------------------------

    /// Sum of two independent uncertain values (exact trapezoidal deposit).
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures (degenerate output support).
    pub fn add(&self, rhs: &Histogram) -> Result<Histogram, HistError> {
        self.add_with(
            rhs,
            &OpOptions::default().with_deposit(DepositPolicy::Exact),
        )
    }

    /// Sum with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn add_with(&self, rhs: &Histogram, opts: &OpOptions) -> Result<Histogram, HistError> {
        if opts.deposit == DepositPolicy::Exact {
            self.linear_exact(rhs, 1.0, opts)
        } else {
            self.apply_binary(rhs, |a, b| a + b, opts)
        }
    }

    /// Difference of two independent uncertain values.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn sub(&self, rhs: &Histogram) -> Result<Histogram, HistError> {
        self.sub_with(
            rhs,
            &OpOptions::default().with_deposit(DepositPolicy::Exact),
        )
    }

    /// Difference with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn sub_with(&self, rhs: &Histogram, opts: &OpOptions) -> Result<Histogram, HistError> {
        if opts.deposit == DepositPolicy::Exact {
            self.linear_exact(rhs, -1.0, opts)
        } else {
            self.apply_binary(rhs, |a, b| a - b, opts)
        }
    }

    /// Product of two independent uncertain values.
    ///
    /// The deposit is uniform-within-result-interval (no closed form is used
    /// for the product of two uniforms); with narrow bins the approximation
    /// error is second-order.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn mul(&self, rhs: &Histogram) -> Result<Histogram, HistError> {
        self.mul_with(rhs, &OpOptions::default())
    }

    /// Product with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn mul_with(&self, rhs: &Histogram, opts: &OpOptions) -> Result<Histogram, HistError> {
        self.apply_binary(rhs, |a, b| a * b, opts)
    }

    /// Quotient of two independent uncertain values.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::DivisionByZero`] when the denominator support
    /// contains zero; otherwise propagates grid construction failures.
    pub fn div(&self, rhs: &Histogram) -> Result<Histogram, HistError> {
        self.div_with(rhs, &OpOptions::default())
    }

    /// Quotient with explicit options.
    ///
    /// # Errors
    ///
    /// Same as [`Histogram::div`].
    pub fn div_with(&self, rhs: &Histogram, opts: &OpOptions) -> Result<Histogram, HistError> {
        let (lo, hi) = rhs.support();
        if lo <= 0.0 && 0.0 <= hi {
            return Err(HistError::DivisionByZero {
                denominator: (lo, hi),
            });
        }
        self.apply_binary(
            rhs,
            |a, b| a.checked_div(&b).expect("denominator excludes zero"),
            opts,
        )
    }

    /// Applies an arbitrary inclusion-isotonic interval operation over the
    /// Cartesian product of operand bins.
    ///
    /// The output support is `f(support_a, support_b)` unless
    /// `opts.grid` is given; `f` must therefore be inclusion-isotonic (the
    /// image of sub-boxes must lie inside the image of the full box), which
    /// holds for every interval-arithmetic primitive.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures (e.g. a constant `f` collapses
    /// the support).
    pub fn apply_binary(
        &self,
        rhs: &Histogram,
        f: impl Fn(Interval, Interval) -> Interval,
        opts: &OpOptions,
    ) -> Result<Histogram, HistError> {
        let grid = match opts.grid {
            Some(g) => g,
            None => {
                let sup = f(self.grid().support(), rhs.grid().support());
                let bins = opts
                    .out_bins
                    .unwrap_or_else(|| self.n_bins().max(rhs.n_bins()));
                Grid::over(sup, bins)?
            }
        };
        let mut masses = vec![0.0; grid.n_bins()];
        for (ia, pa) in self.bins() {
            if pa == 0.0 {
                continue;
            }
            for (ib, pb) in rhs.bins() {
                let mass = pa * pb;
                if mass == 0.0 {
                    continue;
                }
                let out = f(ia, ib);
                match opts.deposit {
                    DepositPolicy::Midpoint => masses[grid.bin_of(out.mid())] += mass,
                    _ => deposit_uniform(&grid, &mut masses, out, mass),
                }
            }
        }
        Histogram::from_masses(grid, masses)
    }

    /// `self + sign·rhs` with the exact trapezoidal deposit for each bin
    /// pair (the true distribution of the sum of two uniform densities).
    fn linear_exact(
        &self,
        rhs: &Histogram,
        sign: f64,
        opts: &OpOptions,
    ) -> Result<Histogram, HistError> {
        let rhs_support = rhs.grid().support().scale(sign);
        let grid = match opts.grid {
            Some(g) => g,
            None => {
                let sup = self.grid().support() + rhs_support;
                let bins = opts
                    .out_bins
                    .unwrap_or_else(|| self.n_bins().max(rhs.n_bins()));
                Grid::over(sup, bins)?
            }
        };
        let w1 = self.grid().bin_width();
        let w2 = rhs.grid().bin_width();
        let mut masses = vec![0.0; grid.n_bins()];
        for (ia, pa) in self.bins() {
            if pa == 0.0 {
                continue;
            }
            for (ib, pb) in rhs.bins() {
                let mass = pa * pb;
                if mass == 0.0 {
                    continue;
                }
                let ib = ib.scale(sign);
                let lo = ia.lo() + ib.lo();
                deposit_trapezoid(&grid, &mut masses, lo, w1, w2, mass);
            }
        }
        Histogram::from_masses(grid, masses)
    }

    // ------------------------------------------------------------------
    // Unary operations
    // ------------------------------------------------------------------

    /// Negation (exact: mirrors the grid).
    pub fn neg(&self) -> Histogram {
        let grid = Grid::new(-self.grid().hi(), -self.grid().lo(), self.n_bins())
            .expect("mirrored grid is valid");
        let probs: Vec<f64> = self.probs().iter().rev().copied().collect();
        Histogram::from_masses(grid, probs).expect("mirrored histogram is valid")
    }

    /// Multiplication by a scalar (exact: scales the grid).
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroScale`] when `k == 0`.
    pub fn scale(&self, k: f64) -> Result<Histogram, HistError> {
        if k == 0.0 {
            return Err(HistError::ZeroScale);
        }
        if !k.is_finite() {
            return Err(HistError::NonFinite { value: k });
        }
        if k < 0.0 {
            return self.neg().scale(-k);
        }
        let grid = Grid::new(self.grid().lo() * k, self.grid().hi() * k, self.n_bins())?;
        Histogram::from_masses(grid, self.probs().to_vec())
    }

    /// Translation by a scalar (exact: shifts the grid).
    ///
    /// # Errors
    ///
    /// Returns [`HistError::NonFinite`] for a non-finite shift.
    pub fn shift(&self, c: f64) -> Result<Histogram, HistError> {
        if !c.is_finite() {
            return Err(HistError::NonFinite { value: c });
        }
        let grid = Grid::new(self.grid().lo() + c, self.grid().hi() + c, self.n_bins())?;
        Histogram::from_masses(grid, self.probs().to_vec())
    }

    /// Affine image `a·x + b` (exact).
    ///
    /// # Errors
    ///
    /// Returns [`HistError::ZeroScale`] when `a == 0`.
    pub fn affine(&self, a: f64, b: f64) -> Result<Histogram, HistError> {
        self.scale(a)?.shift(b)
    }

    /// Dependent square `x²` with the exact push-forward deposit.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn sqr(&self) -> Result<Histogram, HistError> {
        self.sqr_with(&OpOptions::default().with_deposit(DepositPolicy::Exact))
    }

    /// Dependent square with explicit options.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn sqr_with(&self, opts: &OpOptions) -> Result<Histogram, HistError> {
        let grid = match opts.grid {
            Some(g) => g,
            None => {
                let sup = self.grid().support().sqr();
                let bins = opts.out_bins.unwrap_or_else(|| self.n_bins());
                Grid::over(sup, bins)?
            }
        };
        let mut masses = vec![0.0; grid.n_bins()];
        for (iv, p) in self.bins() {
            if p == 0.0 {
                continue;
            }
            match opts.deposit {
                DepositPolicy::Exact => deposit_sqr(&grid, &mut masses, iv, p),
                DepositPolicy::Midpoint => masses[grid.bin_of(iv.sqr().mid())] += p,
                DepositPolicy::Uniform => deposit_uniform(&grid, &mut masses, iv.sqr(), p),
            }
        }
        Histogram::from_masses(grid, masses)
    }

    /// Dependent integer power `xⁿ`.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures; `n == 0` yields a degenerate
    /// support and therefore fails.
    pub fn powi(&self, n: u32) -> Result<Histogram, HistError> {
        match n {
            0 => Err(HistError::EmptySupport { lo: 1.0, hi: 1.0 }),
            1 => Ok(self.clone()),
            2 => self.sqr(),
            _ => self.apply_unary(|iv| iv.powi(n), &OpOptions::default()),
        }
    }

    /// Absolute value `|x|`.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn abs(&self) -> Result<Histogram, HistError> {
        let (lo, _hi) = self.support();
        if lo >= 0.0 {
            return Ok(self.clone());
        }
        self.apply_unary(|iv| iv.abs(), &OpOptions::default())
    }

    /// Reciprocal `1/x`.
    ///
    /// # Errors
    ///
    /// Returns [`HistError::DivisionByZero`] when the support contains zero.
    pub fn recip(&self) -> Result<Histogram, HistError> {
        let (lo, hi) = self.support();
        if lo <= 0.0 && 0.0 <= hi {
            return Err(HistError::DivisionByZero {
                denominator: (lo, hi),
            });
        }
        self.apply_unary(
            |iv| iv.recip().expect("support excludes zero"),
            &OpOptions::default(),
        )
    }

    /// Applies an arbitrary inclusion-isotonic unary interval operation
    /// bin-by-bin.
    ///
    /// # Errors
    ///
    /// Propagates grid construction failures.
    pub fn apply_unary(
        &self,
        f: impl Fn(Interval) -> Interval,
        opts: &OpOptions,
    ) -> Result<Histogram, HistError> {
        let grid = match opts.grid {
            Some(g) => g,
            None => {
                let sup = f(self.grid().support());
                let bins = opts.out_bins.unwrap_or_else(|| self.n_bins());
                Grid::over(sup, bins)?
            }
        };
        let mut masses = vec![0.0; grid.n_bins()];
        for (iv, p) in self.bins() {
            if p == 0.0 {
                continue;
            }
            let out = f(iv);
            match opts.deposit {
                DepositPolicy::Midpoint => masses[grid.bin_of(out.mid())] += p,
                _ => deposit_uniform(&grid, &mut masses, out, p),
            }
        }
        Histogram::from_masses(grid, masses)
    }
}

/// Deposits mass through an arbitrary CDF defined on `[lo, hi]` (relative
/// CDF values: `cdf(lo) = 0`, `cdf(hi) = 1`).
fn deposit_cdf(
    grid: &Grid,
    masses: &mut [f64],
    lo: f64,
    hi: f64,
    mass: f64,
    cdf: impl Fn(f64) -> f64,
) {
    if hi <= lo {
        masses[grid.bin_of(lo)] += mass;
        return;
    }
    // Mass outside the grid clamps to boundary bins.
    let glo = grid.lo();
    let ghi = grid.hi();
    if lo < glo {
        masses[0] += mass * cdf(glo.min(hi));
    }
    if hi > ghi {
        masses[grid.n_bins() - 1] += mass * (1.0 - cdf(ghi.max(lo)));
    }
    let start = grid.bin_of(lo.max(glo));
    let end = grid.bin_of(hi.min(ghi));
    for (i, m) in masses.iter_mut().enumerate().take(end + 1).skip(start) {
        let edge_lo = grid.bin_lo(i).max(lo);
        let edge_hi = (grid.bin_lo(i) + grid.bin_width()).min(hi);
        if edge_hi > edge_lo {
            *m += mass * (cdf(edge_hi) - cdf(edge_lo));
        }
    }
}

/// Deposits the exact trapezoidal distribution of `U[lo, lo+w1+w2]`
/// (the sum of two independent uniforms with widths `w1`, `w2`).
fn deposit_trapezoid(grid: &Grid, masses: &mut [f64], lo: f64, w1: f64, w2: f64, mass: f64) {
    let m = w1.min(w2);
    let big = w1.max(w2);
    let total = w1 + w2;
    if total <= 0.0 {
        masses[grid.bin_of(lo)] += mass;
        return;
    }
    let cdf = move |x: f64| -> f64 {
        let t = (x - lo).clamp(0.0, total);
        if m == 0.0 {
            // One operand is (numerically) a point: plain uniform CDF.
            return t / total;
        }
        if t <= m {
            t * t / (2.0 * w1 * w2)
        } else if t <= big {
            (2.0 * t - m) / (2.0 * big)
        } else {
            1.0 - (total - t) * (total - t) / (2.0 * w1 * w2)
        }
    };
    deposit_cdf(grid, masses, lo, lo + total, mass, cdf);
}

/// Deposits the exact push-forward of `x²` for `x` uniform on `iv`.
fn deposit_sqr(grid: &Grid, masses: &mut [f64], iv: Interval, mass: f64) {
    let (a, b) = (iv.lo(), iv.hi());
    let w = b - a;
    if w <= 0.0 {
        masses[grid.bin_of(a * a)] += mass;
        return;
    }
    // Split a sign-straddling interval at zero; each side is monotone.
    if a < 0.0 && b > 0.0 {
        let left_mass = mass * (-a) / w;
        let right_mass = mass * b / w;
        deposit_sqr_monotone(grid, masses, 0.0, -a, left_mass);
        deposit_sqr_monotone(grid, masses, 0.0, b, right_mass);
    } else if b <= 0.0 {
        deposit_sqr_monotone(grid, masses, -b, -a, mass);
    } else {
        deposit_sqr_monotone(grid, masses, a, b, mass);
    }
}

/// Push-forward of `x²` for `x` uniform on `[a, b]` with `0 <= a < b`:
/// `P(x² <= v) = (√v - a) / (b - a)`.
fn deposit_sqr_monotone(grid: &Grid, masses: &mut [f64], a: f64, b: f64, mass: f64) {
    debug_assert!(0.0 <= a && a <= b);
    if mass == 0.0 {
        return;
    }
    if b == a {
        masses[grid.bin_of(a * a)] += mass;
        return;
    }
    let cdf = move |v: f64| -> f64 { ((v.max(0.0).sqrt() - a) / (b - a)).clamp(0.0, 1.0) };
    deposit_cdf(grid, masses, a * a, b * b, mass, cdf);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn add_of_uniforms_is_triangular() {
        let a = Histogram::uniform(0.0, 1.0, 32).unwrap();
        let b = Histogram::uniform(0.0, 1.0, 32).unwrap();
        let s = a.add(&b).unwrap();
        assert_eq!(s.support(), (0.0, 2.0));
        assert!(close(s.mean(), 1.0, 1e-9));
        // Var(U+U) = 1/12 + 1/12 = 1/6; trapezoid deposit is exact up to the
        // O(w²) uniform-within-bin requantization of the output grid.
        assert!(close(s.variance(), 1.0 / 6.0, 2e-3));
        // Peak in the middle, symmetric tails.
        assert!(s.density(1.0) > s.density(0.1));
        assert!(close(s.cdf(1.0), 0.5, 1e-9));
    }

    #[test]
    fn add_uniform_policy_overestimates_spread() {
        let a = Histogram::uniform(0.0, 1.0, 8).unwrap();
        let b = Histogram::uniform(0.0, 1.0, 8).unwrap();
        let exact = a.add(&b).unwrap();
        let blurred = a
            .add_with(
                &b,
                &OpOptions::default().with_deposit(DepositPolicy::Uniform),
            )
            .unwrap();
        assert!(blurred.variance() >= exact.variance());
    }

    #[test]
    fn sub_is_add_of_negation() {
        let a = Histogram::uniform(0.0, 2.0, 16).unwrap();
        let b = Histogram::uniform(0.5, 1.0, 16).unwrap();
        let d = a.sub(&b).unwrap();
        let d2 = a.add(&b.neg()).unwrap();
        assert!(close(d.mean(), d2.mean(), 1e-9));
        assert!(close(d.variance(), d2.variance(), 1e-9));
        assert_eq!(d.support(), (-1.0, 1.5));
    }

    #[test]
    fn mul_of_independent_uniforms_has_product_moments() {
        let a = Histogram::uniform(1.0, 3.0, 64).unwrap();
        let b = Histogram::uniform(2.0, 4.0, 64).unwrap();
        let p = a.mul(&b).unwrap();
        // E[ab] = E[a]E[b] = 6; independence is built into the method.
        assert!(close(p.mean(), 6.0, 2e-2));
        assert_eq!(p.support(), (2.0, 12.0));
        // Var(ab) = E[a²]E[b²] − (E[a]E[b])² for independent a, b.
        let va = 4.0 / 12.0;
        let vb = 4.0 / 12.0;
        let expected = (va + 4.0) * (vb + 9.0) - 36.0;
        assert!(close(p.variance(), expected, 0.05));
    }

    #[test]
    fn div_requires_nonzero_denominator() {
        let a = Histogram::uniform(1.0, 2.0, 8).unwrap();
        let z = Histogram::uniform(-1.0, 1.0, 8).unwrap();
        assert!(matches!(a.div(&z), Err(HistError::DivisionByZero { .. })));
        let b = Histogram::uniform(2.0, 4.0, 64).unwrap();
        let q = a.div(&b).unwrap();
        assert_eq!(q.support(), (0.25, 1.0));
        // E[1/b] = ln(2)/2 for U[2,4]; E[a] = 1.5.
        assert!(close(q.mean(), 1.5 * (2.0f64.ln() / 2.0), 1e-2));
    }

    #[test]
    fn neg_scale_shift_are_exact() {
        let h = Histogram::triangular(0.0, 2.0, 16).unwrap();
        let n = h.neg();
        assert_eq!(n.support(), (-2.0, 0.0));
        assert!(close(n.mean(), -h.mean(), 1e-12));
        let s = h.scale(-3.0).unwrap();
        assert_eq!(s.support(), (-6.0, 0.0));
        assert!(close(s.variance(), 9.0 * h.variance(), 1e-9));
        let t = h.shift(5.0).unwrap();
        assert!(close(t.mean(), h.mean() + 5.0, 1e-9));
        assert!(close(t.variance(), h.variance(), 1e-9));
        assert!(matches!(h.scale(0.0), Err(HistError::ZeroScale)));
    }

    #[test]
    fn sqr_of_unit_uniform() {
        // For x ~ U[-1,1]: E[x²] = 1/3, support [0,1], density ~ 1/(2√v).
        let x = Histogram::unit_symbol(128).unwrap();
        let s = x.sqr().unwrap();
        assert_eq!(s.support(), (0.0, 1.0));
        assert!(close(s.mean(), 1.0 / 3.0, 1e-3));
        // E[x⁴] = 1/5 ⇒ Var(x²) = 1/5 − 1/9 = 4/45.
        assert!(close(s.variance(), 4.0 / 45.0, 1e-2));
        // Density decreasing in v.
        assert!(s.density(0.05) > s.density(0.5));
    }

    #[test]
    fn sqr_beats_self_multiplication() {
        let x = Histogram::unit_symbol(32).unwrap();
        let dependent = x.sqr().unwrap();
        let independent = x.mul(&x).unwrap(); // treats the two factors as independent
        assert_eq!(dependent.support(), (0.0, 1.0));
        assert_eq!(independent.support(), (-1.0, 1.0));
    }

    #[test]
    fn powi_cases() {
        let x = Histogram::uniform(0.5, 2.0, 32).unwrap();
        assert!(x.powi(0).is_err());
        let p1 = x.powi(1).unwrap();
        assert_eq!(p1.support(), x.support());
        let p3 = x.powi(3).unwrap();
        assert_eq!(p3.support(), (0.125, 8.0));
        // E[x³] for U[0.5, 2]: (2⁴ − 0.5⁴)/(4·1.5) = 2.65625.
        assert!(close(p3.mean(), 2.65625, 0.05));
    }

    #[test]
    fn abs_folds_negative_mass() {
        let x = Histogram::uniform(-2.0, 1.0, 48).unwrap();
        let a = x.abs().unwrap();
        let (lo, hi) = a.support();
        assert!(lo >= -1e-12 && close(hi, 2.0, 1e-12));
        // E|x| for U[-2,1] = (4+1)/(2·3) = 5/6.
        assert!(close(a.mean(), 5.0 / 6.0, 2e-2));
        // Already-positive support is returned as-is.
        let p = Histogram::uniform(1.0, 2.0, 8).unwrap();
        assert_eq!(p.abs().unwrap(), p);
    }

    #[test]
    fn recip_requires_sign_definite_support() {
        let x = Histogram::uniform(-1.0, 1.0, 8).unwrap();
        assert!(x.recip().is_err());
        let y = Histogram::uniform(1.0, 2.0, 64).unwrap();
        let r = y.recip().unwrap();
        assert_eq!(r.support(), (0.5, 1.0));
        assert!(close(r.mean(), 2.0f64.ln(), 1e-2));
    }

    #[test]
    fn forced_grid_clamps_out_of_range() {
        let a = Histogram::uniform(0.0, 1.0, 8).unwrap();
        let b = Histogram::uniform(0.0, 1.0, 8).unwrap();
        let grid = Grid::new(0.5, 1.5, 4).unwrap();
        let s = a
            .add_with(&b, &OpOptions::default().with_grid(grid))
            .unwrap();
        assert!(close(s.total_mass(), 1.0, 1e-12));
        assert_eq!(s.support(), (0.5, 1.5));
        // Mass below 0.5 (= 12.5%) clamps into the first bin.
        assert!(s.prob(0) > 0.12);
    }

    #[test]
    fn midpoint_policy_gives_inner_bounds() {
        let a = Histogram::uniform(0.0, 1.0, 4).unwrap();
        let b = Histogram::uniform(0.0, 1.0, 4).unwrap();
        let opts = OpOptions::default()
            .with_deposit(DepositPolicy::Midpoint)
            .with_out_bins(16);
        let s = a.add_with(&b, &opts).unwrap();
        let (lo, hi) = s.effective_support(0.0);
        // Midpoints of extreme bin pairs are 0.25 and 1.75; the effective
        // support snaps outward to the edges of the bins containing them.
        let w = s.grid().bin_width();
        assert!(lo >= 0.25 - 1e-9);
        assert!(hi <= 1.75 + w + 1e-9);
    }

    #[test]
    fn binary_op_masses_are_conserved() {
        let a = Histogram::triangular(-1.0, 1.0, 16).unwrap();
        let b = Histogram::gaussian(0.0, 0.5, 16).unwrap();
        for op in ["add", "sub", "mul"] {
            let r = match op {
                "add" => a.add(&b).unwrap(),
                "sub" => a.sub(&b).unwrap(),
                _ => a.mul(&b).unwrap(),
            };
            assert!(close(r.total_mass(), 1.0, 1e-9), "mass lost in {op}");
        }
    }

    #[test]
    fn mean_linearity_of_add_sub() {
        let a = Histogram::triangular(0.0, 4.0, 32).unwrap();
        let b = Histogram::uniform(-1.0, 3.0, 32).unwrap();
        let s = a.add(&b).unwrap();
        assert!(close(s.mean(), a.mean() + b.mean(), 1e-9));
        let d = a.sub(&b).unwrap();
        assert!(close(d.mean(), a.mean() - b.mean(), 1e-9));
        // Independent ⇒ variances add, up to the O(w²) output-grid
        // requantization inflation (bounded by w²/6 empirically).
        let tol = d.grid().bin_width().powi(2) / 6.0 + 1e-9;
        assert!(close(s.variance(), a.variance() + b.variance(), tol));
        assert!(close(d.variance(), a.variance() + b.variance(), tol));
        // The inflation vanishes quadratically with finer output grids.
        let fine = a
            .add_with(
                &b,
                &OpOptions::default()
                    .with_deposit(DepositPolicy::Exact)
                    .with_out_bins(256),
            )
            .unwrap();
        assert!(close(fine.variance(), a.variance() + b.variance(), 2e-4));
    }
}
