use std::error::Error;
use std::fmt;

/// Errors produced by histogram constructors and operations.
#[derive(Clone, Debug, PartialEq)]
pub enum HistError {
    /// Requested a histogram or grid with zero bins.
    ZeroBins,
    /// The support interval is empty or inverted (`lo >= hi`).
    EmptySupport {
        /// Requested lower edge.
        lo: f64,
        /// Requested upper edge.
        hi: f64,
    },
    /// A bound, probability or sample was NaN or infinite.
    NonFinite {
        /// The offending value.
        value: f64,
    },
    /// A probability mass was negative.
    NegativeMass {
        /// The offending value.
        value: f64,
    },
    /// All probability mass was zero, so the histogram cannot be normalized.
    ZeroTotalMass,
    /// Division by a histogram whose support contains zero.
    DivisionByZero {
        /// Support of the denominator as `(lo, hi)`.
        denominator: (f64, f64),
    },
    /// An affine transform with zero scale would collapse the support.
    ZeroScale,
    /// No samples were provided to a sample-based constructor.
    NoSamples,
}

impl fmt::Display for HistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistError::ZeroBins => write!(f, "histogram requires at least one bin"),
            HistError::EmptySupport { lo, hi } => {
                write!(f, "histogram support is empty: [{lo}, {hi}]")
            }
            HistError::NonFinite { value } => {
                write!(f, "histogram input is not finite: {value}")
            }
            HistError::NegativeMass { value } => {
                write!(f, "probability mass is negative: {value}")
            }
            HistError::ZeroTotalMass => {
                write!(f, "total probability mass is zero; cannot normalize")
            }
            HistError::DivisionByZero { denominator } => write!(
                f,
                "division by histogram with support [{}, {}] containing zero",
                denominator.0, denominator.1
            ),
            HistError::ZeroScale => {
                write!(f, "affine transform with zero scale collapses the support")
            }
            HistError::NoSamples => write!(f, "no samples provided"),
        }
    }
}

impl Error for HistError {}
