//! Histogram probability-density representation and arithmetic.
//!
//! This crate implements the probabilistic core of Symbolic Noise Analysis
//! (SNA, Ahmadi & Zwolinski, DAC 2008): uncertain values are *histograms* — a
//! partition of a support interval into uniform-width bins, each carrying a
//! probability mass, with a *uniform-within-bin* interpretation.  Arithmetic
//! on histograms follows Berleant's method: a binary operation is evaluated
//! with interval arithmetic over the Cartesian product of operand bins, and
//! each partial result deposits its probability mass into the output grid.
//!
//! Compared to plain intervals (IA) a histogram carries full distribution
//! information; compared to affine forms (AA) the bounds do not suffer the
//! linear worst-case blow-up.
//!
//! # Example
//!
//! ```
//! use sna_hist::Histogram;
//!
//! # fn main() -> Result<(), sna_hist::HistError> {
//! // Two independent uniform uncertainties...
//! let a = Histogram::uniform(0.0, 1.0, 32)?;
//! let b = Histogram::uniform(0.0, 1.0, 32)?;
//! // ...their sum is triangular on [0, 2]:
//! let s = a.add(&b)?;
//! assert!((s.mean() - 1.0).abs() < 1e-9);
//! assert!((s.variance() - 2.0 / 12.0).abs() < 1e-3);
//! let (lo, hi) = s.support();
//! assert!((lo - 0.0).abs() < 1e-12 && (hi - 2.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod grid;
mod histogram;
mod metrics;
mod ops;
mod render;

pub use error::HistError;
pub use grid::Grid;
pub use histogram::Histogram;
pub use ops::{DepositPolicy, OpOptions};
pub use render::RenderOptions;

/// The paper's granularity parameter `l`: noise symbols on `[-1, 1]` are
/// partitioned into `2^(l+1)` bins.
///
/// The evaluation tables of the paper index histograms by the *bin count*
/// `g`; use [`Granularity::from_bins`] for that convention.
///
/// # Example
///
/// ```
/// use sna_hist::Granularity;
///
/// assert_eq!(Granularity::new(3).bins(), 16);
/// assert_eq!(Granularity::from_bins(16).bins(), 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Granularity {
    l: u32,
}

impl Granularity {
    /// Creates a granularity from the exponent `l` (bin count `2^(l+1)`).
    pub fn new(l: u32) -> Self {
        Granularity { l }
    }

    /// Creates the smallest granularity whose bin count is at least `bins`.
    ///
    /// # Panics
    ///
    /// Panics if `bins < 2`.
    pub fn from_bins(bins: usize) -> Self {
        assert!(bins >= 2, "granularity requires at least two bins");
        let mut l = 0;
        while (1usize << (l + 1)) < bins {
            l += 1;
        }
        Granularity { l }
    }

    /// The exponent `l`.
    pub fn level(&self) -> u32 {
        self.l
    }

    /// The number of bins, `2^(l+1)`.
    pub fn bins(&self) -> usize {
        1usize << (self.l + 1)
    }

    /// Bin width for a symbol on `[-1, 1]`: `2^-l`.
    pub fn symbol_bin_width(&self) -> f64 {
        2.0 / self.bins() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_round_trips() {
        for l in 0..8 {
            let g = Granularity::new(l);
            assert_eq!(g.level(), l);
            assert_eq!(g.bins(), 1 << (l + 1));
            assert_eq!(Granularity::from_bins(g.bins()), g);
        }
    }

    #[test]
    fn granularity_from_bins_rounds_up() {
        assert_eq!(Granularity::from_bins(2).bins(), 2);
        assert_eq!(Granularity::from_bins(3).bins(), 4);
        assert_eq!(Granularity::from_bins(5).bins(), 8);
        assert_eq!(Granularity::from_bins(64).bins(), 64);
    }

    #[test]
    fn symbol_bin_width_matches_paper() {
        // The paper divides [-1, 1] into 2^(l+1) bins of width 2^-l.
        let g = Granularity::new(4);
        assert_eq!(g.symbol_bin_width(), 2.0_f64.powi(-4));
    }
}
