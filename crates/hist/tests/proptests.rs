//! Property-based tests for histogram arithmetic.
//!
//! Core invariants:
//! * every operation conserves probability mass;
//! * supports obey interval-arithmetic enclosure;
//! * means are linear for `+`/`-` and multiplicative for independent `*`;
//! * CDFs are monotone with correct limits.

use proptest::prelude::*;
use sna_hist::{DepositPolicy, Grid, Histogram, OpOptions};

fn hist_strategy() -> impl Strategy<Value = Histogram> {
    (
        -100.0..100.0f64,
        0.1..50.0f64,
        2usize..24,
        proptest::collection::vec(0.0..1.0f64, 24),
    )
        .prop_map(|(lo, width, bins, masses)| {
            let grid = Grid::new(lo, lo + width, bins).unwrap();
            let mut m: Vec<f64> = masses[..bins].to_vec();
            // Ensure at least one bin carries mass.
            if m.iter().all(|&x| x <= 0.0) {
                m[0] = 1.0;
            } else if m.iter().sum::<f64>() <= 0.0 {
                m[0] += 1.0;
            }
            Histogram::from_masses(grid, m).unwrap()
        })
}

proptest! {
    #[test]
    fn add_conserves_mass_and_mean(a in hist_strategy(), b in hist_strategy()) {
        let s = a.add(&b).unwrap();
        prop_assert!((s.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!((s.mean() - (a.mean() + b.mean())).abs()
                     < 1e-6 * (1.0 + a.mean().abs() + b.mean().abs()) + s.grid().bin_width());
    }

    #[test]
    fn sub_support_is_interval_difference(a in hist_strategy(), b in hist_strategy()) {
        let d = a.sub(&b).unwrap();
        let (alo, ahi) = a.support();
        let (blo, bhi) = b.support();
        let (dlo, dhi) = d.support();
        prop_assert!((dlo - (alo - bhi)).abs() < 1e-9 * (1.0 + dlo.abs()));
        prop_assert!((dhi - (ahi - blo)).abs() < 1e-9 * (1.0 + dhi.abs()));
    }

    #[test]
    fn mul_conserves_mass(a in hist_strategy(), b in hist_strategy()) {
        let p = a.mul(&b).unwrap();
        prop_assert!((p.total_mass() - 1.0).abs() < 1e-9);
        // Support must be contained in the interval product.
        let sup = sna_interval::Interval::new(a.support().0, a.support().1).unwrap()
            * sna_interval::Interval::new(b.support().0, b.support().1).unwrap();
        let (plo, phi) = p.support();
        prop_assert!(plo >= sup.lo() - 1e-6 * (1.0 + sup.lo().abs()));
        prop_assert!(phi <= sup.hi() + 1e-6 * (1.0 + sup.hi().abs()));
    }

    #[test]
    fn mul_mean_is_product_of_means(a in hist_strategy(), b in hist_strategy()) {
        let p = a.mul(&b).unwrap();
        let expected = a.mean() * b.mean();
        // Uniform deposit keeps the mean exact up to output-grid resolution.
        let tol = p.grid().bin_width() + 1e-6 * (1.0 + expected.abs());
        prop_assert!((p.mean() - expected).abs() < tol,
                     "mean {} vs expected {expected}", p.mean());
    }

    #[test]
    fn cdf_is_monotone_with_correct_limits(h in hist_strategy(), xs in proptest::collection::vec(-200.0..200.0f64, 8)) {
        let (lo, hi) = h.support();
        prop_assert_eq!(h.cdf(lo - 1.0), 0.0);
        prop_assert_eq!(h.cdf(hi + 1.0), 1.0);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for w in sorted.windows(2) {
            prop_assert!(h.cdf(w[0]) <= h.cdf(w[1]) + 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf(h in hist_strategy(), q in 0.01..0.99f64) {
        let x = h.quantile(q);
        prop_assert!((h.cdf(x) - q).abs() < 1e-6);
    }

    #[test]
    fn rebin_preserves_mass_and_approximate_mean(h in hist_strategy(), bins in 2usize..64) {
        let (lo, hi) = h.support();
        let pad = 0.1 * (hi - lo);
        let grid = Grid::new(lo - pad, hi + pad, bins).unwrap();
        let r = h.rebin(grid).unwrap();
        prop_assert!((r.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!((r.mean() - h.mean()).abs()
                     <= 0.51 * (r.grid().bin_width() + h.grid().bin_width()));
    }

    #[test]
    fn neg_is_involutive(h in hist_strategy()) {
        let round_trip = h.neg().neg();
        prop_assert!((round_trip.mean() - h.mean()).abs() < 1e-9 * (1.0 + h.mean().abs()));
        prop_assert!((round_trip.support().0 - h.support().0).abs() < 1e-9 * (1.0 + h.support().0.abs()));
    }

    #[test]
    fn scale_scales_moments(h in hist_strategy(), k in prop_oneof![-10.0..-0.1f64, 0.1..10.0f64]) {
        let s = h.scale(k).unwrap();
        prop_assert!((s.mean() - k * h.mean()).abs() < 1e-6 * (1.0 + (k * h.mean()).abs()));
        prop_assert!((s.variance() - k * k * h.variance()).abs()
                     < 1e-6 * (1.0 + (k * k * h.variance()).abs()));
    }

    #[test]
    fn sqr_support_is_dependent_square(h in hist_strategy()) {
        let s = h.sqr().unwrap();
        let iv = sna_interval::Interval::new(h.support().0, h.support().1).unwrap().sqr();
        let (slo, shi) = s.support();
        prop_assert!((slo - iv.lo()).abs() < 1e-6 * (1.0 + iv.lo().abs()));
        prop_assert!((shi - iv.hi()).abs() < 1e-6 * (1.0 + iv.hi().abs()));
        prop_assert!((s.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clamp_conserves_mass(h in hist_strategy(), c in 0.05..0.45f64) {
        let (lo, hi) = h.support();
        let w = hi - lo;
        let clamped = h.clamp(lo + c * w, hi - c * w).unwrap();
        prop_assert!((clamped.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!(clamped.support().0 >= lo + c * w - 1e-9);
        prop_assert!(clamped.support().1 <= hi - c * w + 1e-9);
    }

    #[test]
    fn trim_tails_keeps_mass_fraction(h in hist_strategy()) {
        if let Ok(t) = h.trim_tails(0.01) {
            prop_assert!((t.total_mass() - 1.0).abs() < 1e-9);
            let (tlo, thi) = t.support();
            let (lo, hi) = h.support();
            prop_assert!(tlo >= lo - 1e-12 && thi <= hi + 1e-12);
        }
    }

    #[test]
    fn exact_and_uniform_add_agree_on_mass_and_support(a in hist_strategy(), b in hist_strategy()) {
        let exact = a.add(&b).unwrap();
        let uniform = a
            .add_with(&b, &OpOptions::default().with_deposit(DepositPolicy::Uniform))
            .unwrap();
        prop_assert!((exact.total_mass() - uniform.total_mass()).abs() < 1e-9);
        prop_assert!((exact.support().0 - uniform.support().0).abs() < 1e-9 * (1.0 + exact.support().0.abs()));
        // The exact deposit never widens the spread beyond the uniform one,
        // up to the O(w²) requantization of the shared output grid (each
        // rebinned variance carries up to ~w²/6 of quantization error, so
        // the difference is bounded by ~w²/3).
        let w = exact.grid().bin_width();
        prop_assert!(exact.variance() <= uniform.variance() + w * w / 3.0 + 1e-9);
    }
}
