//! The unified engine surface: one trait implemented by all six
//! engines, one structured request, one structured report.
//!
//! Historically each engine had a bespoke entry point (`DfgEngine::analyze`
//! takes `(dfg, config, ranges)`, `LtiEngine` wants a two-phase
//! build/analyze, `NaModel` another shape again) and every consumer —
//! the CLI, the server, the optimizer — re-implemented engine selection
//! and artifact plumbing.  This module is the single seam instead:
//!
//! * [`Engine`] — the trait: `run(&Session, &AnalysisRequest)`;
//! * [`AnalysisRequest`] — engine choice (or [`EngineKind::Auto`]), word
//!   lengths ([`WlChoice`]), histogram resolution, per-output options;
//! * [`AnalysisReport`] — per-output [`NoiseReport`]s plus engine
//!   provenance (which engine actually ran after `Auto` resolution) and
//!   wall-clock timing.
//!
//! Engines read every compiled artifact (node ranges, the NA gain model,
//! the per-sample combinational view) from the shared [`Session`], so
//! repeated requests against one compiled program never re-derive them.

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Duration;

use sna_dfg::RangeOptions;
use sna_fixp::WlConfig;
use sna_interval::Interval;

use crate::{
    Budget, CartesianEngine, DfgEngine, EngineKind, EngineOptions, NoiseReport, Session, SnaError,
    SymbolicEngine, SymbolicOptions, UncertainInput,
};

/// How the word lengths of an analysis are specified.
#[derive(Clone, Debug)]
pub enum WlChoice {
    /// One word length for every node (integer parts still come from
    /// range analysis, exactly like `WlConfig::from_ranges`).
    Uniform(u8),
    /// A per-node word-length vector in node-id order (the optimizer's
    /// parameterization).
    PerNode(Vec<u8>),
    /// A fully explicit configuration. Engines that analyze a *derived*
    /// graph (the per-sample view of a sequential datapath) cannot remap
    /// it and reject sequential graphs under this choice.
    Config(WlConfig),
}

impl WlChoice {
    /// The uniform word length, when that is what was requested.
    #[must_use]
    pub fn uniform_bits(&self) -> Option<u8> {
        match self {
            WlChoice::Uniform(w) => Some(*w),
            _ => None,
        }
    }
}

/// One structured analysis request — the single shape every consumer
/// (CLI, server, library callers) speaks.
#[derive(Clone, Debug)]
pub struct AnalysisRequest {
    /// Which engine to run; [`EngineKind::Auto`] resolves from the
    /// graph's structure (LTI for linear graphs, histograms otherwise).
    pub engine: EngineKind,
    /// Word lengths of the analyzed configuration.
    pub words: WlChoice,
    /// Histogram resolution (the paper's granularity knob).
    pub bins: usize,
    /// Whether reports keep their full PDF (engines that produce one);
    /// with `false` the histograms are dropped from the returned
    /// reports. Moments and bounds are always present.
    pub include_pdf: bool,
    /// Cooperative execution budget: engines check it at cheap loop
    /// checkpoints and fail with [`SnaError::DeadlineExceeded`] /
    /// [`SnaError::Cancelled`] instead of running to completion.
    /// Defaults to unlimited.
    pub budget: Budget,
}

impl Default for AnalysisRequest {
    fn default() -> Self {
        AnalysisRequest {
            engine: EngineKind::Auto,
            words: WlChoice::Uniform(12),
            bins: 64,
            include_pdf: true,
            budget: Budget::unlimited(),
        }
    }
}

/// What a report's numbers mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReportKind {
    /// Quantization-noise statistics of the outputs.
    QuantizationNoise,
    /// The value-uncertainty PDF of the outputs (the Cartesian engine).
    ValuePdf,
}

impl ReportKind {
    /// The wire/CLI word for this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ReportKind::QuantizationNoise => "quantization-noise",
            ReportKind::ValuePdf => "value-pdf",
        }
    }
}

/// One structured analysis result.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// The engine that actually ran (never [`EngineKind::Auto`] — the
    /// provenance of the numbers).
    pub engine: EngineKind,
    /// Whether the numbers are quantization noise or a value PDF.
    pub kind: ReportKind,
    /// Per-output noise reports, in output-declaration order.
    pub reports: Vec<(String, NoiseReport)>,
    /// Wall-clock time the engine spent.
    pub elapsed: Duration,
}

/// The one trait all six engines implement.
///
/// Engines are stateless unit values; everything long-lived (ranges,
/// gain models, views, memos) lives in the [`Session`], so one session
/// can serve any engine — and any sequence of requests — without
/// recompiling.
pub trait Engine: Send + Sync {
    /// The engine's selector.
    fn kind(&self) -> EngineKind;

    /// The engine's wire/CLI name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// What this engine's reports mean.
    fn report_kind(&self) -> ReportKind {
        ReportKind::QuantizationNoise
    }

    /// Runs the engine against a compiled session.
    ///
    /// # Errors
    ///
    /// Engine-specific failures; see each implementation.
    fn run(
        &self,
        session: &Session,
        req: &AnalysisRequest,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError>;
}

/// Classical NA baseline: moments only, evaluated off the session's
/// cached gain model.
#[derive(Clone, Copy, Debug, Default)]
pub struct NaEngine;

impl Engine for NaEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Na
    }

    fn run(
        &self,
        session: &Session,
        req: &AnalysisRequest,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        let model = session.na_model()?;
        let config = session.wl_config(&req.words)?;
        Ok(model.evaluate(session.dfg(), &config))
    }
}

/// LTI gains + CLT shaping, off the session's cached gain model.
#[derive(Clone, Copy, Debug, Default)]
pub struct LtiNoiseEngine;

impl Engine for LtiNoiseEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Lti
    }

    fn run(
        &self,
        session: &Session,
        req: &AnalysisRequest,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        let engine = session.lti_engine(req.bins)?;
        let config = session.wl_config(&req.words)?;
        engine.analyze(session.dfg(), &config)
    }
}

/// Op-by-op histogram propagation; sequential graphs are analyzed
/// through the session's cached per-sample combinational view.
#[derive(Clone, Copy, Debug, Default)]
pub struct DfgNoiseEngine;

impl Engine for DfgNoiseEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Dfg
    }

    fn run(
        &self,
        session: &Session,
        req: &AnalysisRequest,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        let engine = DfgEngine::new(EngineOptions::default().with_bins(req.bins));
        if session.dfg().is_combinational() {
            let config = session.wl_config(&req.words)?;
            return engine.analyze_budgeted(
                session.dfg(),
                &config,
                session.input_ranges(),
                &req.budget,
            );
        }
        // Per-sample view: delays become state inputs whose ranges come
        // from range analysis of the original graph.
        let (ps, config) = session.per_sample_config(&req.words)?;
        engine.analyze_budgeted(&ps.view, &config, &ps.ranges, &req.budget)
    }
}

/// Polynomial propagation; sequential graphs go through the per-sample
/// view like [`DfgNoiseEngine`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SymbolicNoiseEngine;

impl Engine for SymbolicNoiseEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Symbolic
    }

    fn run(
        &self,
        session: &Session,
        req: &AnalysisRequest,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        let engine = SymbolicEngine::new(SymbolicOptions {
            symbol_bins: req.bins,
            out_bins: req.bins * 2,
            ..Default::default()
        });
        if session.dfg().is_combinational() {
            let config = session.wl_config(&req.words)?;
            let res = engine.analyze(session.dfg(), &config, session.input_ranges())?;
            return Ok(res.reports);
        }
        let (ps, config) = session.per_sample_config(&req.words)?;
        Ok(engine.analyze(&ps.view, &config, &ps.ranges)?.reports)
    }
}

/// The paper's Section-4 exact algorithm over the inputs' *value*
/// uncertainty — it characterizes the output PDF rather than
/// quantization noise, and ignores word lengths entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct CartesianValueEngine;

impl Engine for CartesianValueEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Cartesian
    }

    fn report_kind(&self) -> ReportKind {
        ReportKind::ValuePdf
    }

    fn run(
        &self,
        session: &Session,
        req: &AnalysisRequest,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        let dfg = session.dfg();
        let input_ranges = session.input_ranges();
        let bins = req.bins;
        if !dfg.is_combinational() {
            return Err(SnaError::CombinationalOnly {
                engine: "cartesian",
            });
        }
        let inputs: Vec<UncertainInput> = dfg
            .input_names()
            .iter()
            .zip(input_ranges)
            .map(|(name, range)| {
                UncertainInput::uniform(name.clone(), range.lo(), range.hi(), bins).map_err(|e| {
                    SnaError::InvalidInput {
                        name: name.clone(),
                        message: e.to_string(),
                    }
                })
            })
            .collect::<Result<_, _>>()?;
        // Fail early (and only once) if interval evaluation cannot cover
        // the full input box — sub-boxes are subsets, so they inherit
        // success.
        dfg.output_ranges(input_ranges, &RangeOptions::default())?;

        let engine = CartesianEngine::new(bins.max(2) * 2);
        // The engine sweeps every input sub-box once *per analyzed
        // output*, and each interval evaluation computes all outputs at
        // once. Memoize the per-sub-box output vector (bounded) so
        // multi-output datapaths pay for one sweep's worth of interval
        // evaluations, not k.
        const MEMO_CAP: usize = 1 << 20;
        let multi_output = dfg.outputs().len() > 1;
        let memo: RefCell<HashMap<Vec<u64>, Vec<Interval>>> = RefCell::new(HashMap::new());
        let eval_outputs = |ranges: &[Interval]| -> Vec<Interval> {
            let compute = || {
                dfg.output_ranges(ranges, &RangeOptions::default())
                    .expect("sub-box of a checked input box evaluates")
                    .into_iter()
                    .map(|(_, iv)| iv)
                    .collect::<Vec<_>>()
            };
            if !multi_output {
                return compute();
            }
            let key: Vec<u64> = ranges
                .iter()
                .flat_map(|r| [r.lo().to_bits(), r.hi().to_bits()])
                .collect();
            if let Some(cached) = memo.borrow().get(&key) {
                return cached.clone();
            }
            let value = compute();
            let mut memo = memo.borrow_mut();
            if memo.len() < MEMO_CAP {
                memo.insert(key, value.clone());
            }
            value
        };
        dfg.outputs()
            .iter()
            .enumerate()
            .map(|(k, (name, _))| {
                let report = engine.analyze(&inputs, |ranges| eval_outputs(ranges)[k])?;
                Ok((name.clone(), report))
            })
            .collect()
    }
}

/// Vectorized Monte-Carlo simulation over the session's compiled
/// bytecode program: *empirical* per-output error statistics
/// (`quantized − exact` samples), not a model prediction.  The full
/// empirical-vs-predicted comparison lives in
/// [`Session::simulate`](crate::Session::simulate); this engine adapts
/// it to the uniform request/report shape so the CLI, server, and batch
/// paths get simulation through the same seam as every other engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimulateEngine;

impl Engine for SimulateEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Simulate
    }

    fn run(
        &self,
        session: &Session,
        req: &AnalysisRequest,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        let sim_req = crate::SimRequest {
            words: req.words.clone(),
            bins: req.bins,
            budget: req.budget.clone(),
            ..crate::SimRequest::default()
        };
        let report = session.simulate(&sim_req)?;
        Ok(report
            .outputs
            .into_iter()
            .map(|out| {
                let mut empirical = out.empirical;
                if !req.include_pdf {
                    empirical.histogram = None;
                }
                (out.name, empirical)
            })
            .collect())
    }
}

static NA: NaEngine = NaEngine;
static LTI: LtiNoiseEngine = LtiNoiseEngine;
static DFG: DfgNoiseEngine = DfgNoiseEngine;
static SYMBOLIC: SymbolicNoiseEngine = SymbolicNoiseEngine;
static CARTESIAN: CartesianValueEngine = CartesianValueEngine;
static SIMULATE: SimulateEngine = SimulateEngine;

impl EngineKind {
    /// The engine implementing this selector — `None` for
    /// [`EngineKind::Auto`], which must be resolved against a session
    /// first (see [`Session::resolve_engine`]).
    #[must_use]
    pub fn engine(self) -> Option<&'static dyn Engine> {
        match self {
            EngineKind::Auto => None,
            EngineKind::Na => Some(&NA),
            EngineKind::Lti => Some(&LTI),
            EngineKind::Dfg => Some(&DFG),
            EngineKind::Symbolic => Some(&SYMBOLIC),
            EngineKind::Cartesian => Some(&CARTESIAN),
            EngineKind::Simulate => Some(&SIMULATE),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_concrete_kind_has_an_engine_with_matching_identity() {
        for kind in [
            EngineKind::Na,
            EngineKind::Lti,
            EngineKind::Dfg,
            EngineKind::Symbolic,
            EngineKind::Cartesian,
            EngineKind::Simulate,
        ] {
            let engine = kind.engine().expect("concrete kind");
            assert_eq!(engine.kind(), kind);
            assert_eq!(engine.name(), kind.name());
        }
        assert!(EngineKind::Auto.engine().is_none());
    }

    #[test]
    fn report_kinds_separate_value_pdf_from_noise() {
        assert_eq!(CartesianValueEngine.report_kind(), ReportKind::ValuePdf);
        assert_eq!(NaEngine.report_kind(), ReportKind::QuantizationNoise);
        assert_eq!(ReportKind::ValuePdf.as_str(), "value-pdf");
        assert_eq!(ReportKind::QuantizationNoise.as_str(), "quantization-noise");
    }
}
