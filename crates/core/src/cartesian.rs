//! The exact SNA algorithm of Section 4, for closed-form expressions over
//! a handful of uncertain inputs.
//!
//! Every uncertain input is a histogram; the expression is evaluated with
//! interval arithmetic over the full Cartesian product of input bins
//! (`∏ binsᵢ` combinations), and each partial result deposits the product
//! probability into the output histogram.  Exponential in the number of
//! inputs — exactly what the paper prescribes, and practical for the
//! quadratic/table examples it evaluates.

use sna_hist::{DepositPolicy, Grid, Histogram};
use sna_interval::Interval;

use crate::{NoiseReport, SnaError};

/// One uncertain input of a [`CartesianEngine`] analysis.
#[derive(Clone, Debug)]
pub struct UncertainInput {
    /// Display name.
    pub name: String,
    /// The input's distribution over its own support (e.g. uniform on
    /// `[9, 10]` for the paper's coefficient `a`).
    pub pdf: Histogram,
}

impl UncertainInput {
    /// Uniformly distributed input over `[lo, hi]` with `bins` bins — the
    /// paper's standard noise-symbol assumption applied to an input range.
    ///
    /// # Errors
    ///
    /// Propagates histogram construction failures.
    pub fn uniform(
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<Self, SnaError> {
        Ok(UncertainInput {
            name: name.into(),
            pdf: Histogram::uniform(lo, hi, bins)?,
        })
    }

    /// Input with an arbitrary PDF (the paper's "practically extracted or
    /// stimulus based model" option).
    pub fn with_pdf(name: impl Into<String>, pdf: Histogram) -> Self {
        UncertainInput {
            name: name.into(),
            pdf,
        }
    }
}

/// Exact Cartesian SNA evaluation of a user-supplied interval function.
///
/// # Example
///
/// The paper's quadratic `y = a·x² + b·x + c`:
///
/// ```
/// use sna_core::{CartesianEngine, UncertainInput};
///
/// # fn main() -> Result<(), sna_core::SnaError> {
/// let g = 16; // bins per symbol
/// let inputs = vec![
///     UncertainInput::uniform("x", -1.0, 1.0, g)?,
///     UncertainInput::uniform("a", 9.0, 10.0, g)?,
///     UncertainInput::uniform("b", -6.0, -4.0, g)?,
///     UncertainInput::uniform("c", 6.0, 7.0, g)?,
/// ];
/// let engine = CartesianEngine::new(128);
/// let report = engine.analyze(&inputs, |v| v[1] * v[0].sqr() + v[2] * v[0] + v[3])?;
/// // Converges toward the true range [5, 23] as g grows.
/// assert!(report.support.0 >= -0.1 && report.support.1 <= 23.1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CartesianEngine {
    out_bins: usize,
    deposit: DepositPolicy,
    max_combinations: u128,
}

impl CartesianEngine {
    /// Creates an engine producing `out_bins`-bin output histograms.
    pub fn new(out_bins: usize) -> Self {
        CartesianEngine {
            out_bins,
            deposit: DepositPolicy::Uniform,
            max_combinations: 1_000_000_000,
        }
    }

    /// Sets the deposit policy ([`DepositPolicy::Uniform`] is the paper's
    /// basic histogram method; [`DepositPolicy::Midpoint`] produces inner
    /// bounds).
    pub fn with_deposit(mut self, deposit: DepositPolicy) -> Self {
        self.deposit = deposit;
        self
    }

    /// Sets the combination budget.
    pub fn with_max_combinations(mut self, max: u128) -> Self {
        self.max_combinations = max;
        self
    }

    /// Runs the Section-4 algorithm on `f` over the Cartesian product of
    /// the input bins.
    ///
    /// `f` receives one interval per input (same order as `inputs`) and
    /// must be inclusion-isotonic — every composition of
    /// [`Interval`] primitives is.
    ///
    /// # Errors
    ///
    /// * [`SnaError::Expr`] ([`sna_expr::ExprError::TooManyCombinations`])
    ///   when the bin product exceeds the budget;
    /// * [`SnaError::Hist`] when the output histogram cannot be built
    ///   (degenerate support).
    pub fn analyze(
        &self,
        inputs: &[UncertainInput],
        f: impl Fn(&[Interval]) -> Interval,
    ) -> Result<NoiseReport, SnaError> {
        let mut combos: u128 = 1;
        for i in inputs {
            combos = combos.saturating_mul(i.pdf.n_bins() as u128);
        }
        if combos > self.max_combinations {
            return Err(SnaError::Expr(sna_expr::ExprError::TooManyCombinations {
                required: combos,
                budget: self.max_combinations,
            }));
        }

        // Output grid from the full-range interval evaluation.
        let full_ranges: Vec<Interval> = inputs
            .iter()
            .map(|i| {
                let (lo, hi) = i.pdf.support();
                Interval::new(lo, hi).expect("pdf support is valid")
            })
            .collect();
        let full = f(&full_ranges);
        let grid = Grid::over(full, self.out_bins).map_err(SnaError::Hist)?;
        let mut masses = vec![0.0; grid.n_bins()];

        let mut idx = vec![0usize; inputs.len()];
        let mut ranges = full_ranges.clone();
        loop {
            let mut mass = 1.0;
            for (k, input) in inputs.iter().enumerate() {
                ranges[k] = input.pdf.grid().bin_interval(idx[k]);
                mass *= input.pdf.prob(idx[k]);
            }
            if mass > 0.0 {
                let out = f(&ranges);
                match self.deposit {
                    DepositPolicy::Midpoint => masses[grid.bin_of(out.mid())] += mass,
                    _ => deposit_uniform_into(&grid, &mut masses, out, mass),
                }
            }
            // Odometer.
            let mut k = 0;
            loop {
                if k == idx.len() {
                    let hist = Histogram::from_masses(grid, masses).map_err(SnaError::Hist)?;
                    return Ok(NoiseReport::from_histogram(hist));
                }
                idx[k] += 1;
                if idx[k] < inputs[k].pdf.n_bins() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }
}

fn deposit_uniform_into(grid: &Grid, masses: &mut [f64], iv: Interval, mass: f64) {
    let w = iv.width();
    if w == 0.0 {
        masses[grid.bin_of(iv.mid())] += mass;
        return;
    }
    let below = (grid.lo() - iv.lo()).max(0.0).min(w);
    let above = (iv.hi() - grid.hi()).max(0.0).min(w);
    if below > 0.0 {
        masses[0] += mass * below / w;
    }
    if above > 0.0 {
        masses[grid.n_bins() - 1] += mass * above / w;
    }
    let lo_bin = grid.bin_of(iv.lo());
    let hi_bin = grid.bin_of(iv.hi());
    for (i, m) in masses.iter_mut().enumerate().take(hi_bin + 1).skip(lo_bin) {
        let overlap = grid.bin_interval(i).overlap_len(&iv);
        if overlap > 0.0 {
            *m += mass * overlap / w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_inputs(g: usize) -> Vec<UncertainInput> {
        vec![
            UncertainInput::uniform("x", -1.0, 1.0, g).unwrap(),
            UncertainInput::uniform("a", 9.0, 10.0, g).unwrap(),
            UncertainInput::uniform("b", -6.0, -4.0, g).unwrap(),
            UncertainInput::uniform("c", 6.0, 7.0, g).unwrap(),
        ]
    }

    fn quadratic(v: &[Interval]) -> Interval {
        v[1] * v[0].sqr() + v[2] * v[0] + v[3]
    }

    #[test]
    fn quadratic_bounds_tighten_with_granularity() {
        // The paper's Table 2: bounds converge monotonically toward the
        // true range [5, 23] (error range [-1.5, 16.5] around center 6.5).
        let mut widths = Vec::new();
        for g in [2usize, 4, 8, 16] {
            let report = CartesianEngine::new(64)
                .analyze(&quadratic_inputs(g), quadratic)
                .unwrap();
            // Bounds always enclose the true range.
            assert!(
                report.support.0 <= 5.0 + 1e-9,
                "g={g}: {:?}",
                report.support
            );
            assert!(
                report.support.1 >= 23.0 - 1e-9,
                "g={g}: {:?}",
                report.support
            );
            widths.push(report.support.1 - report.support.0);
        }
        for w in widths.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "widths must shrink: {widths:?}");
        }
        // At g=16 the overestimate is below one coarse bin.
        assert!(*widths.last().unwrap() < 18.0 + 1.5);
    }

    #[test]
    fn quadratic_moments_approach_analytic_values() {
        // E[y] = E[a]E[x²] + E[b]E[x] + E[c] = 9.5/3 + 6.5.
        // Var(y) = 16.5667 (see the paper's "Actual Values" row).
        let report = CartesianEngine::new(128)
            .analyze(&quadratic_inputs(32), quadratic)
            .unwrap();
        let expected_mean = 9.5 / 3.0 + 6.5;
        assert!(
            (report.mean - expected_mean).abs() < 0.05,
            "mean {} vs {expected_mean}",
            report.mean
        );
        assert!(
            (report.variance - 16.5667).abs() < 0.9,
            "variance {}",
            report.variance
        );
    }

    #[test]
    fn sna_is_tighter_than_affine_on_the_quadratic() {
        // AA yields [-10, 23]; SNA support at g>=8 must beat its width 33.
        let report = CartesianEngine::new(64)
            .analyze(&quadratic_inputs(8), quadratic)
            .unwrap();
        let width = report.support.1 - report.support.0;
        assert!(width < 33.0 - 5.0, "width {width}");
    }

    #[test]
    fn budget_is_enforced() {
        let inputs = quadratic_inputs(64);
        let err = CartesianEngine::new(64)
            .with_max_combinations(1000)
            .analyze(&inputs, quadratic)
            .unwrap_err();
        assert!(matches!(err, SnaError::Expr(_)));
    }

    #[test]
    fn midpoint_deposit_gives_inner_bounds() {
        let outer = CartesianEngine::new(64)
            .analyze(&quadratic_inputs(8), quadratic)
            .unwrap();
        let inner = CartesianEngine::new(64)
            .with_deposit(DepositPolicy::Midpoint)
            .analyze(&quadratic_inputs(8), quadratic)
            .unwrap();
        assert!(inner.support.0 >= outer.support.0 - 1e-9);
        assert!(inner.support.1 <= outer.support.1 + 1e-9);
    }

    #[test]
    fn custom_pdfs_shift_the_output() {
        // A triangular x concentrates mass near 0 ⇒ y concentrates near c.
        let g = 16;
        let tri =
            UncertainInput::with_pdf("x", sna_hist::Histogram::triangular(-1.0, 1.0, g).unwrap());
        let mut inputs = quadratic_inputs(g);
        inputs[0] = tri;
        let report = CartesianEngine::new(64)
            .analyze(&inputs, quadratic)
            .unwrap();
        let uniform_report = CartesianEngine::new(64)
            .analyze(&quadratic_inputs(g), quadratic)
            .unwrap();
        // x² smaller in expectation ⇒ smaller mean.
        assert!(report.mean < uniform_report.mean);
    }

    #[test]
    fn single_input_identity() {
        let inputs = vec![UncertainInput::uniform("x", 2.0, 4.0, 32).unwrap()];
        let report = CartesianEngine::new(32).analyze(&inputs, |v| v[0]).unwrap();
        assert!((report.mean - 3.0).abs() < 1e-9);
        assert!((report.variance - 4.0 / 12.0).abs() < 1e-9);
        assert_eq!(report.support, (2.0, 4.0));
    }
}
