//! The quantization noise-source model shared by all engines.
//!
//! A node introduces a noise source only when its output format *loses
//! precision* relative to the exact result of its operation — an adder whose
//! output keeps `max(fa, fb)` fractional bits is exact and contributes no
//! noise, while a multiplier almost always rounds (exact product needs
//! `fa + fb` bits).  Matching the bit-true simulator, which requantizes
//! after every operation, this rule is what makes analytical predictions
//! line up with Monte-Carlo measurements.

use sna_dfg::{Dfg, NodeId, Op};
use sna_fixp::{Quantizer, Rounding, WlConfig};
use sna_interval::Interval;

/// One quantization noise source: `error = offset + half_width·ε`,
/// `ε ~ U[-1, 1]`.
///
/// * round-to-nearest: `offset = 0`, `half_width = q/2`;
/// * truncation: `offset = -q/2`, `half_width = q/2` (error in `(-q, 0]`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseSource {
    /// The node whose output rounding generates this source.
    pub node: NodeId,
    /// Deterministic bias of the error.
    pub offset: f64,
    /// Half-width of the error range (the ε scale factor).
    pub half_width: f64,
}

impl NoiseSource {
    /// Builds the source for a quantizer (uniform error model).
    pub fn for_quantizer(node: NodeId, q: &Quantizer) -> Self {
        let step = q.format.resolution();
        match q.rounding {
            Rounding::Nearest => NoiseSource {
                node,
                offset: 0.0,
                half_width: step / 2.0,
            },
            Rounding::Truncate => NoiseSource {
                node,
                offset: -step / 2.0,
                half_width: step / 2.0,
            },
        }
    }

    /// Error variance of the source (`half_width²/3` for the uniform
    /// model).
    pub fn variance(&self) -> f64 {
        self.half_width * self.half_width / 3.0
    }

    /// Guaranteed error interval.
    pub fn interval(&self) -> Interval {
        Interval::centered(self.offset, self.half_width)
    }
}

/// Whether a node's format loses precision relative to the exact result of
/// its operation (and therefore introduces rounding noise).
pub trait IntroducesNoise {
    /// Evaluates the precision-loss rule for `node` under `config`.
    fn introduces_noise(&self, node: NodeId, config: &WlConfig) -> bool;
}

impl IntroducesNoise for Dfg {
    fn introduces_noise(&self, node: NodeId, config: &WlConfig) -> bool {
        let n = self.node(node);
        let f = config.format(node).frac_bits();
        let arg_frac = |k: usize| config.format(n.args()[k]).frac_bits();
        match n.op() {
            // External inputs arrive with unbounded precision.
            Op::Input(_) => true,
            // Constant rounding is a deterministic offset, not a random
            // source; it is handled separately by the engines.
            Op::Const(_) => false,
            Op::Add | Op::Sub => f < arg_frac(0).max(arg_frac(1)),
            Op::Mul => {
                // A multiply by an exactly-representable power of two is
                // exact when no fractional bits are dropped; the general
                // rule below treats the full product width as required.
                f < arg_frac(0) + arg_frac(1)
            }
            // Quotients are generically non-terminating.
            Op::Div => true,
            Op::Neg => f < arg_frac(0),
            Op::Delay => f < arg_frac(0),
        }
    }
}

/// Collects every active noise source of `dfg` under `config`, in node-id
/// order.
pub fn noise_sources(dfg: &Dfg, config: &WlConfig) -> Vec<NoiseSource> {
    dfg.nodes()
        .filter(|&(id, _)| dfg.introduces_noise(id, config))
        .map(|(id, _)| NoiseSource::for_quantizer(id, config.quantizer(id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_fixp::{Format, Overflow};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn nearest_source_is_centred() {
        let fmt = Format::new(8, 6).unwrap();
        let q = Quantizer::new(fmt, Rounding::Nearest, Overflow::Saturate);
        let s = NoiseSource::for_quantizer(NodeId::from_index(0), &q);
        assert_eq!(s.offset, 0.0);
        assert_eq!(s.half_width, fmt.resolution() / 2.0);
        let step = fmt.resolution();
        assert!((s.variance() - step * step / 12.0).abs() < 1e-18);
    }

    #[test]
    fn truncation_source_is_biased() {
        let fmt = Format::new(8, 6).unwrap();
        let q = Quantizer::new(fmt, Rounding::Truncate, Overflow::Saturate);
        let s = NoiseSource::for_quantizer(NodeId::from_index(0), &q);
        let step = fmt.resolution();
        assert_eq!(s.offset, -step / 2.0);
        let iv = s.interval();
        assert_eq!(iv.lo(), -step);
        assert_eq!(iv.hi(), 0.0);
    }

    #[test]
    fn adders_with_enough_bits_are_exact() {
        // y = x1 + x2 with all formats equal: the adder drops no bits.
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let y = b.add(x1, x2);
        b.output("y", y);
        let g = b.build().unwrap();
        let fmt = Format::new(12, 8).unwrap();
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        assert!(!g.introduces_noise(y, &cfg));
        // Inputs always introduce noise.
        assert!(g.introduces_noise(x1, &cfg));
        let sources = noise_sources(&g, &cfg);
        assert_eq!(sources.len(), 2); // the two inputs only
    }

    #[test]
    fn multipliers_almost_always_round() {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let y = b.mul(x1, x2);
        b.output("y", y);
        let g = b.build().unwrap();
        let fmt = Format::new(12, 8).unwrap();
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        assert!(g.introduces_noise(y, &cfg));
    }

    #[test]
    fn adder_that_narrows_rounds() {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let y = b.add(x1, x2);
        b.output("y", y);
        let g = b.build().unwrap();
        // Uniform format: all nodes share the fraction width, so the adder
        // is exact.
        let fmt = Format::new(16, 12).unwrap();
        let mut cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        assert!(!g.introduces_noise(y, &cfg));
        // Narrow only the adder: now it loses bits.
        cfg.set_word_length(y, 8).unwrap();
        assert!(g.introduces_noise(y, &cfg));
        // Range-derived formats grow the integer part at the adder (range
        // [-2, 2]), trading away one LSB — that *is* a rounding site.
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 16).unwrap();
        assert!(g.introduces_noise(y, &cfg));
    }

    #[test]
    fn constants_are_not_random_sources() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.constant(0.3);
        let y = b.mul(c, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let fmt = Format::new(8, 6).unwrap();
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        assert!(!g.introduces_noise(c, &cfg));
        let sources = noise_sources(&g, &cfg);
        // input + multiplier.
        assert_eq!(sources.len(), 2);
    }
}
