//! Op-by-op histogram propagation over a combinational DFG.
//!
//! Every node carries an [`Uncertain`] pair: the distribution of its
//! *signal value* (inputs assumed uniform over their ranges, per the
//! paper's probabilistic reading of interval data) and the distribution of
//! its *computational error*.  Errors compose exactly through the algebra
//! of the operation — e.g. for a product,
//!
//! ```text
//! (va+ea)(vb+eb) − va·vb  =  va·eb + vb·ea + ea·eb
//! ```
//!
//! — and each precision-losing node convolves in its own quantization
//! noise (see [`crate::sources`]).  Operand independence is assumed (exact
//! on trees; an approximation on reconvergent fanout, as in the paper).

use sna_dfg::{Dfg, Op};
use sna_fixp::WlConfig;
use sna_hist::{DepositPolicy, Histogram, OpOptions};
use sna_interval::Interval;

use crate::sources::{IntroducesNoise, NoiseSource};
use crate::{Budget, NoiseReport, SnaError};

/// A scalar-or-distribution value.
///
/// Constants (and exactly-zero errors) stay symbolic scalars so that the
/// common cases `x + 0`, `c·h` cost nothing and lose nothing.
#[derive(Clone, Debug)]
pub enum Value {
    /// A deterministic value.
    Const(f64),
    /// A distributed value.
    Hist(Histogram),
}

impl Value {
    /// The exactly-zero value.
    pub fn zero() -> Self {
        Value::Const(0.0)
    }

    /// Whether this is exactly zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, Value::Const(0.0))
    }

    /// Mean of the value.
    pub fn mean(&self) -> f64 {
        match self {
            Value::Const(c) => *c,
            Value::Hist(h) => h.mean(),
        }
    }

    /// Variance of the value.
    pub fn variance(&self) -> f64 {
        match self {
            Value::Const(_) => 0.0,
            Value::Hist(h) => h.variance(),
        }
    }

    /// Guaranteed range.
    pub fn support(&self) -> Interval {
        match self {
            Value::Const(c) => Interval::point(*c),
            Value::Hist(h) => {
                let (lo, hi) = h.support();
                Interval::new(lo, hi).expect("histogram support is valid")
            }
        }
    }

    fn add(&self, rhs: &Value, opts: &OpOptions) -> Result<Value, SnaError> {
        Ok(match (self, rhs) {
            (Value::Const(a), Value::Const(b)) => Value::Const(a + b),
            (Value::Const(a), Value::Hist(h)) | (Value::Hist(h), Value::Const(a)) => {
                if *a == 0.0 {
                    Value::Hist(h.clone())
                } else {
                    Value::Hist(h.shift(*a)?)
                }
            }
            (Value::Hist(a), Value::Hist(b)) => Value::Hist(a.add_with(b, opts)?),
        })
    }

    fn sub(&self, rhs: &Value, opts: &OpOptions) -> Result<Value, SnaError> {
        Ok(match (self, rhs) {
            (Value::Const(a), Value::Const(b)) => Value::Const(a - b),
            (Value::Hist(h), Value::Const(b)) => {
                if *b == 0.0 {
                    Value::Hist(h.clone())
                } else {
                    Value::Hist(h.shift(-*b)?)
                }
            }
            (Value::Const(a), Value::Hist(h)) => {
                let n = h.neg();
                if *a == 0.0 {
                    Value::Hist(n)
                } else {
                    Value::Hist(n.shift(*a)?)
                }
            }
            (Value::Hist(a), Value::Hist(b)) => Value::Hist(a.sub_with(b, opts)?),
        })
    }

    fn mul(&self, rhs: &Value, opts: &OpOptions) -> Result<Value, SnaError> {
        Ok(match (self, rhs) {
            (Value::Const(a), Value::Const(b)) => Value::Const(a * b),
            (Value::Const(a), Value::Hist(h)) | (Value::Hist(h), Value::Const(a)) => {
                if *a == 0.0 {
                    Value::Const(0.0)
                } else {
                    Value::Hist(h.scale(*a)?)
                }
            }
            (Value::Hist(a), Value::Hist(b)) => Value::Hist(a.mul_with(b, opts)?),
        })
    }

    fn div(&self, rhs: &Value, opts: &OpOptions) -> Result<Value, SnaError> {
        Ok(match (self, rhs) {
            (Value::Const(a), Value::Const(b)) => {
                if *b == 0.0 {
                    return Err(SnaError::Hist(sna_hist::HistError::DivisionByZero {
                        denominator: (0.0, 0.0),
                    }));
                }
                Value::Const(a / b)
            }
            (Value::Hist(h), Value::Const(b)) => {
                if *b == 0.0 {
                    return Err(SnaError::Hist(sna_hist::HistError::DivisionByZero {
                        denominator: (0.0, 0.0),
                    }));
                }
                Value::Hist(h.scale(1.0 / *b)?)
            }
            (Value::Const(a), Value::Hist(h)) => {
                if *a == 0.0 {
                    Value::Const(0.0)
                } else {
                    Value::Hist(h.recip()?.scale(*a)?)
                }
            }
            (Value::Hist(a), Value::Hist(b)) => Value::Hist(a.div_with(b, opts)?),
        })
    }

    fn neg(&self) -> Value {
        match self {
            Value::Const(c) => Value::Const(-c),
            Value::Hist(h) => Value::Hist(h.neg()),
        }
    }
}

/// The per-node analysis state: signal distribution + error distribution.
#[derive(Clone, Debug)]
pub struct Uncertain {
    /// Distribution of the (infinite-precision) signal value.
    pub value: Value,
    /// Distribution of the computational error at this node.
    pub error: Value,
}

/// A concurrent memo of per-node histogram states, keyed by
/// `(bins, node, widths of the node's upstream cone)`.
///
/// The key stores the widths themselves (not a hash), so a hit is
/// guaranteed to be the exact configuration and the returned state is
/// bit-equal to a recomputation.  The map sits behind an `RwLock` so the
/// evaluators of a multi-threaded nonlinear word-length search (annealing
/// restarts, exhaustive odometer chunks) — and successive searches over
/// one compiled session — share hits instead of each keeping a private
/// memo.  Entries are only ever *valid for one graph instance*: states
/// depend on constant values, so a coefficient swap needs a fresh memo.
#[derive(Debug, Default)]
pub struct HistMemo {
    map: std::sync::RwLock<std::collections::HashMap<MemoKey, Uncertain>>,
}

/// A memo key: `(bins, node, widths of the node's upstream cone)`.
pub type MemoKey = (u32, u32, Vec<u8>);

/// Entries kept before [`HistMemo`] sweeps itself clear (bounds memory on
/// long searches; the hot working set re-warms in one round of misses).
const HIST_MEMO_CAP: usize = 16_384;

impl HistMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized state for a `(bins, node, upstream widths)` key, if
    /// present.
    #[must_use]
    pub fn get(&self, bins: u32, node: u32, widths: &[u8]) -> Option<Uncertain> {
        self.map
            .read()
            .expect("memo lock")
            .get(&(bins, node, widths.to_vec()))
            .cloned()
    }

    /// Hot-path lookup: consumes the already-built widths key and, on a
    /// miss, hands it back so the caller can [`HistMemo::insert_key`]
    /// without a second allocation.
    ///
    /// # Errors
    ///
    /// The assembled key, on a miss.
    pub fn lookup(&self, bins: u32, node: u32, widths: Vec<u8>) -> Result<Uncertain, MemoKey> {
        let key = (bins, node, widths);
        match self.map.read().expect("memo lock").get(&key) {
            Some(state) => Ok(state.clone()),
            None => Err(key),
        }
    }

    /// Records a computed state (first writer wins; the cap triggers a
    /// clear-all sweep before insertion).
    pub fn insert(&self, bins: u32, node: u32, widths: Vec<u8>, state: Uncertain) {
        self.insert_key((bins, node, widths), state);
    }

    /// [`HistMemo::insert`] for a key handed back by
    /// [`HistMemo::lookup`].
    pub fn insert_key(&self, key: MemoKey, state: Uncertain) {
        let mut map = self.map.write().expect("memo lock");
        if map.len() >= HIST_MEMO_CAP {
            map.clear();
        }
        map.entry(key).or_insert(state);
    }

    /// Bulk first-writer-wins insertion under one lock acquisition — the
    /// evaluator-construction path, where every thread of a parallel
    /// search seeds the same start-point states.
    pub fn insert_many(&self, entries: impl IntoIterator<Item = (MemoKey, Uncertain)>) {
        let mut map = self.map.write().expect("memo lock");
        for (key, state) in entries {
            if map.len() >= HIST_MEMO_CAP {
                map.clear();
            }
            map.entry(key).or_insert(state);
        }
    }

    /// Number of memoized states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().expect("memo lock").len()
    }

    /// Whether the memo holds no states.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Options for [`DfgEngine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineOptions {
    /// Histogram resolution (bins) used throughout the propagation — the
    /// paper's granularity knob.
    pub bins: usize,
    /// Deposit policy for histogram operations.
    pub deposit: DepositPolicy,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            bins: 64,
            deposit: DepositPolicy::Uniform,
        }
    }
}

impl EngineOptions {
    /// Sets the histogram resolution.
    pub fn with_bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Sets the deposit policy.
    pub fn with_deposit(mut self, deposit: DepositPolicy) -> Self {
        self.deposit = deposit;
        self
    }
}

/// The scalable SNA engine: one histogram operation per DFG node.
///
/// Requires a combinational graph (run
/// [`sna_dfg::Dfg::combinational_view`] first, or use
/// [`crate::LtiEngine`] for feedback structures).
#[derive(Clone, Debug, Default)]
pub struct DfgEngine {
    opts: EngineOptions,
}

impl DfgEngine {
    /// Creates an engine with the given options.
    pub fn new(opts: EngineOptions) -> Self {
        DfgEngine { opts }
    }

    /// Propagates value and error distributions through `dfg` under
    /// `config`, returning `(output name, error report)` pairs.
    ///
    /// # Errors
    ///
    /// * [`SnaError::SequentialGraph`] for graphs with delays;
    /// * [`SnaError::Dfg`] for input-count mismatches;
    /// * histogram failures (e.g. division by a zero-straddling signal).
    pub fn analyze(
        &self,
        dfg: &Dfg,
        config: &WlConfig,
        input_ranges: &[Interval],
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        self.analyze_budgeted(dfg, config, input_ranges, &Budget::unlimited())
    }

    /// [`DfgEngine::analyze`] under a cooperative [`Budget`]: the
    /// propagation checks the budget between node steps (each is
    /// `O(bins²)`, so the check overhead is noise) and fails with
    /// [`SnaError::DeadlineExceeded`] / [`SnaError::Cancelled`] instead
    /// of finishing the sweep.
    ///
    /// # Errors
    ///
    /// Same as [`DfgEngine::analyze`], plus budget overruns.
    pub fn analyze_budgeted(
        &self,
        dfg: &Dfg,
        config: &WlConfig,
        input_ranges: &[Interval],
        budget: &Budget,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        let states = self.propagate_budgeted(dfg, config, input_ranges, budget)?;
        Ok(dfg
            .outputs()
            .iter()
            .map(|(name, id)| {
                let err = &states[id.index()].error;
                let report = match err {
                    Value::Const(c) => NoiseReport::from_moments(*c, 0.0, (*c, *c)),
                    Value::Hist(h) => NoiseReport::from_histogram(h.clone()),
                };
                (name.clone(), report)
            })
            .collect())
    }

    /// Full per-node propagation (exposed for inspection and for engines
    /// built on top).
    ///
    /// # Errors
    ///
    /// Same as [`DfgEngine::analyze`].
    pub fn propagate(
        &self,
        dfg: &Dfg,
        config: &WlConfig,
        input_ranges: &[Interval],
    ) -> Result<Vec<Uncertain>, SnaError> {
        self.propagate_budgeted(dfg, config, input_ranges, &Budget::unlimited())
    }

    /// [`DfgEngine::propagate`] under a cooperative [`Budget`], checked
    /// once per topo-order node step.
    ///
    /// # Errors
    ///
    /// Same as [`DfgEngine::propagate`], plus budget overruns.
    pub fn propagate_budgeted(
        &self,
        dfg: &Dfg,
        config: &WlConfig,
        input_ranges: &[Interval],
        budget: &Budget,
    ) -> Result<Vec<Uncertain>, SnaError> {
        if !dfg.is_combinational() {
            return Err(SnaError::SequentialGraph);
        }
        if input_ranges.len() != dfg.n_inputs() {
            return Err(SnaError::Dfg(sna_dfg::DfgError::WrongInputCount {
                expected: dfg.n_inputs(),
                got: input_ranges.len(),
            }));
        }
        let limited = !budget.is_unlimited();
        let mut states: Vec<Uncertain> = vec![
            Uncertain {
                value: Value::zero(),
                error: Value::zero(),
            };
            dfg.len()
        ];
        for &id in dfg.topo_order() {
            if limited {
                budget.check()?;
            }
            states[id.index()] = self.node_state(dfg, config, input_ranges, id, &states)?;
        }
        Ok(states)
    }

    /// Computes the state of a single node from the (already computed)
    /// states of its arguments — the one-node step of [`propagate`],
    /// exposed so incremental evaluators can re-propagate just the
    /// downstream cone of a changed node.
    ///
    /// `states` must hold valid entries for every argument of `id`; the
    /// result is bit-identical to what a full [`propagate`] would place at
    /// `id` under the same configuration.
    ///
    /// [`propagate`]: DfgEngine::propagate
    ///
    /// # Errors
    ///
    /// [`SnaError::SequentialGraph`] for a delay node (its value is
    /// state, not a combinational function of its argument); histogram
    /// failures otherwise, as in [`DfgEngine::analyze`].
    pub fn node_state(
        &self,
        dfg: &Dfg,
        config: &WlConfig,
        input_ranges: &[Interval],
        id: sna_dfg::NodeId,
        states: &[Uncertain],
    ) -> Result<Uncertain, SnaError> {
        let op_opts = OpOptions::default()
            .with_out_bins(self.opts.bins)
            .with_deposit(self.opts.deposit);
        {
            let node = dfg.node(id);
            let q = config.quantizer(id);
            let (value, mut error) = match node.op() {
                Op::Input(i) => {
                    let r = *input_ranges.get(i).ok_or(SnaError::Dfg(
                        sna_dfg::DfgError::WrongInputCount {
                            expected: dfg.n_inputs(),
                            got: input_ranges.len(),
                        },
                    ))?;
                    let value = if r.is_point() {
                        Value::Const(r.lo())
                    } else {
                        Value::Hist(Histogram::uniform(r.lo(), r.hi(), self.opts.bins)?)
                    };
                    (value, Value::zero())
                }
                Op::Const(c) => {
                    // Deterministic rounding offset of the constant.
                    let rounded = q.quantize(c);
                    (Value::Const(c), Value::Const(rounded - c))
                }
                Op::Add => {
                    let (a, b) = (
                        &states[node.args()[0].index()],
                        &states[node.args()[1].index()],
                    );
                    (
                        a.value.add(&b.value, &op_opts)?,
                        a.error.add(&b.error, &op_opts)?,
                    )
                }
                Op::Sub => {
                    let (a, b) = (
                        &states[node.args()[0].index()],
                        &states[node.args()[1].index()],
                    );
                    (
                        a.value.sub(&b.value, &op_opts)?,
                        a.error.sub(&b.error, &op_opts)?,
                    )
                }
                Op::Mul => {
                    let (a, b) = (
                        &states[node.args()[0].index()],
                        &states[node.args()[1].index()],
                    );
                    let value = a.value.mul(&b.value, &op_opts)?;
                    // (va+ea)(vb+eb) − va·vb = va·eb + vb·ea + ea·eb.
                    let t1 = a.value.mul(&b.error, &op_opts)?;
                    let t2 = b.value.mul(&a.error, &op_opts)?;
                    let t3 = a.error.mul(&b.error, &op_opts)?;
                    let error = t1.add(&t2, &op_opts)?.add(&t3, &op_opts)?;
                    (value, error)
                }
                Op::Div => {
                    let (a, b) = (
                        &states[node.args()[0].index()],
                        &states[node.args()[1].index()],
                    );
                    let value = a.value.div(&b.value, &op_opts)?;
                    // First-order: e ≈ ea/vb − va·eb/vb².
                    let t1 = a.error.div(&b.value, &op_opts)?;
                    let vb2 = b.value.mul(&b.value, &op_opts)?;
                    let t2 = a.value.mul(&b.error, &op_opts)?.div(&vb2, &op_opts)?;
                    let error = t1.sub(&t2, &op_opts)?;
                    (value, error)
                }
                Op::Neg => {
                    let a = &states[node.args()[0].index()];
                    (a.value.neg(), a.error.neg())
                }
                // Never reached from `propagate` (the topo order excludes
                // delays); external callers get the contract error.
                Op::Delay => return Err(SnaError::SequentialGraph),
            };
            // Convolve in this node's own quantization noise when its
            // format loses precision.
            if dfg.introduces_noise(id, config) {
                let src = NoiseSource::for_quantizer(id, q);
                let noise = Value::Hist(Histogram::uniform(
                    src.interval().lo(),
                    src.interval().hi(),
                    self.opts.bins,
                )?);
                error = error.add(&noise, &op_opts)?;
            }
            Ok(Uncertain { value, error })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_fixp::{monte_carlo_error, Format, MonteCarloOptions, Overflow, Rounding};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    fn weighted_sum() -> Dfg {
        // y = 0.3 x1 + 0.6 x2
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn prediction_matches_monte_carlo_for_linear_dfg() {
        let g = weighted_sum();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let predicted = &DfgEngine::new(EngineOptions::default().with_bins(128))
            .analyze(&g, &cfg, &ranges)
            .unwrap()[0]
            .1;
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 60_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        assert!(
            (predicted.mean - measured.mean).abs() < 3.0 * measured.variance.sqrt() / 50.0,
            "mean: predicted {} measured {}",
            predicted.mean,
            measured.mean
        );
        let ratio = predicted.variance / measured.variance;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "variance ratio {ratio}: predicted {} measured {}",
            predicted.variance,
            measured.variance
        );
        // Guaranteed bounds must cover the observed errors.
        assert!(predicted.support.0 <= measured.min + 1e-12);
        assert!(predicted.support.1 >= measured.max - 1e-12);
    }

    #[test]
    fn truncation_shifts_the_error_mean() {
        let g = weighted_sum();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let mut cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        cfg.set_rounding_all(Rounding::Truncate);
        let r = &DfgEngine::default().analyze(&g, &cfg, &ranges).unwrap()[0].1;
        assert!(
            r.mean < 0.0,
            "truncation bias should be negative: {}",
            r.mean
        );
    }

    #[test]
    fn coefficient_rounding_appears_as_deterministic_offset() {
        // y = 0.3·x with x restricted to a point: the only random noise is
        // input/multiplier rounding; constant error is deterministic.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul_const(0.3, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(1.0, 1.0)]; // point input
        let cfg = WlConfig::from_ranges(&g, &[iv(-2.0, 2.0)], 8).unwrap();
        let states = DfgEngine::default().propagate(&g, &cfg, &ranges).unwrap();
        // Find the constant node and check its error is Const.
        let const_id = g
            .nodes()
            .find(|(_, n)| matches!(n.op(), Op::Const(_)))
            .unwrap()
            .0;
        match &states[const_id.index()].error {
            Value::Const(e) => assert!(e.abs() < cfg.format(const_id).resolution()),
            Value::Hist(_) => panic!("constant error must stay deterministic"),
        }
    }

    #[test]
    fn nonlinear_product_error_includes_signal_scaling() {
        // y = x1 · x2 with wide signals: error ≈ x1·e2 + x2·e1 + q-noise;
        // the variance should grow with the signal amplitude.
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let y = b.mul(x1, x2);
        b.output("y", y);
        let g = b.build().unwrap();
        let narrow = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let wide = [iv(-4.0, 4.0), iv(-4.0, 4.0)];
        let cfg_n = WlConfig::from_ranges(&g, &narrow, 12).unwrap();
        let cfg_w = WlConfig::from_ranges(&g, &wide, 12).unwrap();
        let rn = &DfgEngine::default().analyze(&g, &cfg_n, &narrow).unwrap()[0].1;
        let rw = &DfgEngine::default().analyze(&g, &cfg_w, &wide).unwrap()[0].1;
        assert!(rw.variance > rn.variance);
    }

    #[test]
    fn sequential_graphs_are_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d = b.delay(x);
        let y = b.add(x, d);
        b.output("y", y);
        let g = b.build().unwrap();
        let cfg = WlConfig::uniform(
            &g,
            Format::new(8, 6).unwrap(),
            Rounding::Nearest,
            Overflow::Saturate,
        );
        assert!(matches!(
            DfgEngine::default().analyze(&g, &cfg, &[iv(-1.0, 1.0)]),
            Err(SnaError::SequentialGraph)
        ));
    }

    #[test]
    fn exact_adders_contribute_no_noise() {
        // x1 + x2 with a *uniform* format: the adder keeps every fractional
        // bit, so the error is exactly the two input quantizations.
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let y = b.add(x1, x2);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let fmt = Format::new(12, 9).unwrap();
        let cfg = WlConfig::uniform(&g, fmt, Rounding::Nearest, Overflow::Saturate);
        let r = &DfgEngine::default().analyze(&g, &cfg, &ranges).unwrap()[0].1;
        let q = fmt.resolution();
        let expected = 2.0 * q * q / 12.0;
        assert!(
            (r.variance - expected).abs() < 0.25 * expected,
            "var {} vs {expected}",
            r.variance
        );
    }

    #[test]
    fn node_state_rejects_delay_nodes() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d = b.delay(x);
        let y = b.add(x, d);
        b.output("y", y);
        let g = b.build().unwrap();
        let cfg = WlConfig::uniform(
            &g,
            Format::new(8, 6).unwrap(),
            Rounding::Nearest,
            Overflow::Saturate,
        );
        let engine = DfgEngine::default();
        let states = vec![
            Uncertain {
                value: Value::zero(),
                error: Value::zero(),
            };
            g.len()
        ];
        assert!(matches!(
            engine.node_state(&g, &cfg, &[iv(-1.0, 1.0)], d, &states),
            Err(SnaError::SequentialGraph)
        ));
    }

    #[test]
    fn error_grows_as_wordlength_shrinks() {
        let g = weighted_sum();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let mut powers = Vec::new();
        for w in [16u8, 12, 8] {
            let cfg = WlConfig::from_ranges(&g, &ranges, w).unwrap();
            let r = &DfgEngine::default().analyze(&g, &cfg, &ranges).unwrap()[0].1;
            powers.push(r.power);
        }
        assert!(powers[0] < powers[1] && powers[1] < powers[2]);
        assert!(powers[2] / powers[0] > 100.0);
    }
}
