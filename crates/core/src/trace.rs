//! Trace-driven noise analysis: measured signals in, empirical noise
//! reports out.
//!
//! [`Session::trace`] is the telemetry counterpart of
//! [`Session::simulate`]: instead of drawing Monte-Carlo samples from
//! the *declared* input ranges, it fits per-input ranges and
//! fixed-bin histograms from a recorded [`Trace`], feeds the fitted
//! ranges into the normal engine stack in place of the declarations
//! (so word-length scaling and the analytic prediction both reflect
//! the measured signal), replays the recorded rows through the VM's
//! paired exact/quantized lane banks, and reports *measured* output
//! noise next to the analytic prediction with abs/rel gaps per
//! output.
//!
//! Like the simulator, the replay is a pure function of
//! `(design, trace, request)` — the worker count never changes a bit
//! of the report.

use std::time::{Duration, Instant};

use sna_hist::Histogram;
use sna_interval::Interval;
use sna_trace::Trace;
use sna_vm::{Executable, ReplayOptions};

use crate::engine::{AnalysisRequest, WlChoice};
use crate::simulate::{vm_err, Gap, SimOutput};
use crate::{Budget, EngineKind, NoiseReport, Session, SnaError};

/// Rows collected per lane segment when replaying a sequential design
/// (combinational designs map rows straight onto lanes).
const SEQ_SEG_ROWS: usize = 512;

/// One trace-analysis request.
#[derive(Clone, Debug)]
pub struct TraceRequest {
    /// Word lengths of the replayed configuration.
    pub words: WlChoice,
    /// Bins of the fitted input histograms and the empirical error
    /// histograms.
    pub bins: usize,
    /// Overlap rows replayed before each segment of a sequential
    /// design to warm delay state; `None` picks 0 for combinational
    /// graphs and 64 for sequential ones. Exact for designs whose
    /// memory is at most this deep (FIR chains); an overlap
    /// approximation for longer feedback.
    pub warmup: Option<usize>,
    /// Worker threads (0 = available parallelism). Changes wall-clock
    /// only, never the report.
    pub workers: usize,
    /// Attempt the analytic prediction alongside the replay. `false`
    /// (the `replay` verb) reports measured numbers only and skips the
    /// engine pass entirely.
    pub predict: bool,
    /// Cooperative execution budget, checked before every replay
    /// chunk. A budget that never fires leaves the report
    /// bit-identical.
    pub budget: Budget,
}

impl Default for TraceRequest {
    fn default() -> Self {
        TraceRequest {
            words: WlChoice::Uniform(12),
            bins: 64,
            warmup: None,
            workers: 0,
            predict: true,
            budget: Budget::unlimited(),
        }
    }
}

/// One input's empirical fit from the trace.
#[derive(Clone, Debug)]
pub struct TraceInputFit {
    /// Input name as declared (vector banks per element, `v[0]`…).
    pub name: String,
    /// Accepted samples behind the fit.
    pub samples: usize,
    /// Measured mean.
    pub mean: f64,
    /// Measured population variance.
    pub variance: f64,
    /// Fitted range: the measured `[min, max]`, replacing the declared
    /// range everywhere downstream.
    pub range: Interval,
    /// Fixed-bin histogram of the measured samples.
    pub histogram: Histogram,
}

/// The full trace-analysis report.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Per-input empirical fits, in declaration order.
    pub fit: Vec<TraceInputFit>,
    /// Per-output measured-vs-predicted results, in declaration order.
    /// `empirical` holds the *measured* error statistics over exactly
    /// the trace's rows; `predicted` the analytic model's report under
    /// the fitted ranges, when a model applies.
    pub outputs: Vec<SimOutput>,
    /// Trace rows replayed (= error samples per output).
    pub rows: usize,
    /// Trace rows skipped at ingestion (ragged + non-finite).
    pub skipped: usize,
    /// Warmup rows after `None` resolution.
    pub warmup: usize,
    /// The engine that produced the predictions, when one applied.
    pub predicted_by: Option<EngineKind>,
    /// Wall-clock replay time (fit and prediction excluded).
    pub elapsed: Duration,
}

impl Session {
    /// Fits per-input ranges and fixed-bin histograms from a recorded
    /// trace, without replaying anything — the `sna trace fit` verb.
    ///
    /// # Errors
    ///
    /// [`SnaError::WrongInputCount`] / [`SnaError::InvalidInput`] when
    /// the trace's columns do not line up with the design's inputs,
    /// and histogram failures on degenerate data.
    pub fn fit_trace(&self, trace: &Trace, bins: usize) -> Result<Vec<TraceInputFit>, SnaError> {
        let names = self.dfg().input_names();
        if trace.names().len() != names.len() {
            return Err(SnaError::WrongInputCount {
                expected: names.len(),
                got: trace.names().len(),
            });
        }
        if let Some((bound, declared)) = trace.names().iter().zip(names).find(|(b, d)| b != d) {
            return Err(SnaError::InvalidInput {
                name: declared.clone(),
                message: format!("trace column bound to `{bound}` instead"),
            });
        }
        trace
            .stats()
            .iter()
            .zip(trace.columns())
            .zip(names)
            .map(|((stats, column), name)| {
                let range = Interval::new(stats.min(), stats.max()).map_err(|e| {
                    SnaError::InvalidInput {
                        name: name.clone(),
                        message: format!("fitted range is degenerate: {e}"),
                    }
                })?;
                let histogram = Histogram::from_samples(column.iter().copied(), bins)?;
                Ok(TraceInputFit {
                    name: name.clone(),
                    samples: stats.count() as usize,
                    mean: stats.mean(),
                    variance: stats.variance(),
                    range,
                    histogram,
                })
            })
            .collect()
    }

    /// A session over the same graph with the trace's *fitted* ranges
    /// in place of the declared ones — every engine downstream
    /// (ranges, word-length scaling, NA, histograms) then reasons
    /// about the measured signal.
    ///
    /// # Errors
    ///
    /// As [`Session::fit_trace`], plus session-construction failures
    /// on degenerate fitted ranges.
    pub fn empirical(&self, trace: &Trace) -> Result<Session, SnaError> {
        let fit = self.fit_trace(trace, 64)?;
        Session::new(
            self.dfg().clone(),
            fit.into_iter().map(|f| f.range).collect(),
        )
    }

    /// Replays a recorded trace through the compiled bytecode program
    /// and pairs the *measured* per-output error statistics with the
    /// analytic model's prediction under the fitted (not declared)
    /// input ranges.
    ///
    /// Combinational designs map rows straight onto VM lanes;
    /// sequential designs replay in overlapping segments (see
    /// [`TraceRequest::warmup`]). Either way every accepted trace row
    /// contributes exactly one error sample per output, in row order.
    ///
    /// # Errors
    ///
    /// Fit failures as [`Session::fit_trace`], word-length / range
    /// failures from configuration, and replay failures (division by
    /// zero, empty trace). A *prediction* failure is not an error:
    /// `predicted` is simply absent.
    pub fn trace(&self, trace: &Trace, req: &TraceRequest) -> Result<TraceReport, SnaError> {
        req.budget.check()?;
        let fit = self.fit_trace(trace, req.bins)?;
        let empirical = Session::new(self.dfg().clone(), fit.iter().map(|f| f.range).collect())?;

        let combinational = self.dfg().is_combinational();
        let warmup = req.warmup.unwrap_or(if combinational { 0 } else { 64 });
        let seg = if combinational { 1 } else { SEQ_SEG_ROWS };

        let program = empirical.vm_program();
        let config = empirical.wl_config(&req.words)?;
        let exe = Executable::new(program, empirical.dfg(), &config);
        let opts = ReplayOptions {
            seg,
            warmup,
            workers: req.workers,
            bins: req.bins,
        };
        let started = Instant::now();
        let budget = &req.budget;
        let cancelled = || !budget.is_unlimited() && budget.check().is_err();
        let stats = sna_vm::replay_with(&exe, trace.columns(), &opts, &cancelled)
            .map_err(|e| vm_err(e, budget))?;
        let elapsed = started.elapsed();

        // Best-effort analytic prediction through the normal engine
        // path, under the *fitted* ranges; `Auto` resolution rejects
        // nonlinear sequential graphs, and any other model failure
        // just leaves the comparison column empty.
        let prediction = if req.predict {
            empirical
                .analyze(&AnalysisRequest {
                    engine: EngineKind::Auto,
                    words: req.words.clone(),
                    bins: req.bins,
                    include_pdf: true,
                    budget: req.budget.clone(),
                })
                .ok()
        } else {
            None
        };
        let predicted_by = prediction.as_ref().map(|p| p.engine);

        let outputs = stats
            .into_iter()
            .enumerate()
            .map(|(k, s)| {
                let mut empirical = NoiseReport::from_histogram(s.histogram);
                // The histogram's moments are bin-resolution
                // approximations; keep the exact sample statistics.
                empirical.mean = s.mean;
                empirical.variance = s.variance;
                empirical.power = s.power;
                empirical.support = (s.min, s.max);
                let predicted = prediction.as_ref().map(|p| p.reports[k].1.clone());
                let mean_gap = predicted.as_ref().map(|p| Gap::between(s.mean, p.mean));
                let variance_gap = predicted
                    .as_ref()
                    .map(|p| Gap::between(s.variance, p.variance));
                SimOutput {
                    name: s.name,
                    empirical,
                    samples: s.samples,
                    predicted,
                    mean_gap,
                    variance_gap,
                }
            })
            .collect();

        Ok(TraceReport {
            fit,
            outputs,
            rows: trace.rows(),
            skipped: trace.skipped(),
            warmup,
            predicted_by,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_trace::{write_csv, TraceLimits};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    /// y = 0.3·x1 + 0.6·x2, declared ranges deliberately much wider
    /// than the recorded signal.
    fn linear_session() -> Session {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        Session::new(b.build().unwrap(), vec![iv(-8.0, 8.0), iv(-8.0, 8.0)]).unwrap()
    }

    /// A deterministic pseudo-uniform signal in (−amp, amp).
    fn wave(n: usize, amp: f64, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let s = (i as u64 + salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) * amp
            })
            .collect()
    }

    fn trace_of(names: &[&str], cols: &[Vec<f64>]) -> Trace {
        let names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        let rows: Vec<Vec<f64>> = (0..cols[0].len())
            .map(|i| cols.iter().map(|c| c[i]).collect())
            .collect();
        Trace::parse(&write_csv(&names, &rows), &names, &TraceLimits::default()).unwrap()
    }

    #[test]
    fn fitted_ranges_track_the_measured_signal_not_the_declaration() {
        let session = linear_session();
        let trace = trace_of(&["x1", "x2"], &[wave(4000, 0.9, 1), wave(4000, 0.9, 2)]);
        let fit = session.fit_trace(&trace, 64).unwrap();
        assert_eq!(fit.len(), 2);
        assert!(fit[0].range.lo() > -1.0 && fit[0].range.hi() < 1.0);
        assert_eq!(fit[0].samples, 4000);
        let empirical = session.empirical(&trace).unwrap();
        assert!(empirical.input_ranges()[0].hi() < 1.0);
    }

    #[test]
    fn measured_noise_lands_near_the_prediction_with_gaps() {
        let session = linear_session();
        let trace = trace_of(
            &["x1", "x2"],
            &[wave(30_000, 0.95, 1), wave(30_000, 0.95, 2)],
        );
        let report = session.trace(&trace, &TraceRequest::default()).unwrap();
        assert!(report.predicted_by.is_some());
        assert_eq!(report.rows, 30_000);
        let out = &report.outputs[0];
        assert_eq!(out.name, "y");
        assert_eq!(out.samples, 30_000);
        let gap = out.variance_gap.unwrap();
        let rel = gap.rel.unwrap();
        assert!(rel < 0.5, "measured variance off the prediction by {rel}");
    }

    #[test]
    fn worker_count_never_changes_a_bit() {
        let session = linear_session();
        let trace = trace_of(&["x1", "x2"], &[wave(20_000, 0.9, 3), wave(20_000, 0.9, 4)]);
        let base = session
            .trace(
                &trace,
                &TraceRequest {
                    workers: 1,
                    ..TraceRequest::default()
                },
            )
            .unwrap();
        for workers in [4, 8] {
            let alt = session
                .trace(
                    &trace,
                    &TraceRequest {
                        workers,
                        ..TraceRequest::default()
                    },
                )
                .unwrap();
            for (a, b) in base.outputs.iter().zip(&alt.outputs) {
                assert_eq!(a.empirical.mean.to_bits(), b.empirical.mean.to_bits());
                assert_eq!(
                    a.empirical.variance.to_bits(),
                    b.empirical.variance.to_bits()
                );
                assert_eq!(a.samples, b.samples);
            }
        }
    }

    #[test]
    fn sequential_designs_replay_with_segment_warmup() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let d1 = b.delay(x);
        let s = b.add(x, d1);
        let y = b.mul_const(0.5, s);
        b.output("y", y);
        let session = Session::new(b.build().unwrap(), vec![iv(-1.0, 1.0)]).unwrap();
        let trace = trace_of(&["x"], &[wave(5000, 0.8, 7)]);
        let report = session.trace(&trace, &TraceRequest::default()).unwrap();
        assert_eq!(report.warmup, 64);
        assert_eq!(report.outputs[0].samples, 5000);
    }

    #[test]
    fn mismatched_traces_and_dead_budgets_fail_structured() {
        let session = linear_session();
        let trace = trace_of(&["x1"], &[wave(100, 0.5, 9)]);
        assert!(matches!(
            session.fit_trace(&trace, 64),
            Err(SnaError::WrongInputCount {
                expected: 2,
                got: 1
            })
        ));
        let trace = trace_of(&["x2", "x1"], &[wave(10, 0.5, 1), wave(10, 0.5, 2)]);
        assert!(matches!(
            session.fit_trace(&trace, 64),
            Err(SnaError::InvalidInput { .. })
        ));
        let trace = trace_of(&["x1", "x2"], &[wave(10, 0.5, 1), wave(10, 0.5, 2)]);
        let req = TraceRequest {
            budget: Budget::pre_cancelled(),
            ..TraceRequest::default()
        };
        assert!(matches!(
            session.trace(&trace, &req),
            Err(SnaError::Cancelled)
        ));
    }
}
