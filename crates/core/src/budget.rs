//! Cooperative execution budgets: a deadline plus a cancellation flag
//! threaded through analysis requests so long-running work — optimizer
//! searches, histogram propagation, Monte-Carlo simulation — stops at
//! cheap checkpoints instead of pinning a worker thread.
//!
//! A [`Budget`] is deliberately *cooperative*: nothing is preempted.
//! Engines call [`Budget::check`] at loop boundaries whose per-iteration
//! cost is small (a topo-order node step, an annealing iteration, a
//! simulation chunk claim); an expired deadline or a raised cancel flag
//! surfaces as a structured [`SnaError`] that renders as exactly
//! `"deadline exceeded"` / `"request cancelled"` on the wire, so the
//! service layer can classify and count it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::SnaError;

/// A cooperative execution budget: an optional wall-clock deadline and a
/// shared cancellation flag.
///
/// Cloning is cheap and clones share the cancel flag — the service hands
/// one budget to a request and keeps a clone, so cancelling from outside
/// the worker is race-free. The default budget is unlimited.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    cancel: Arc<AtomicBool>,
}

impl Budget {
    /// A budget that never expires and is not cancelled — the default.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget expiring `timeout` from now.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        Budget {
            deadline: Instant::now().checked_add(timeout),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A budget whose cancel flag is already raised — the first
    /// checkpoint fails with [`SnaError::Cancelled`]. Used by the
    /// fault-injection harness to exercise cancellation paths
    /// deterministically.
    #[must_use]
    pub fn pre_cancelled() -> Self {
        let b = Budget::unlimited();
        b.cancel();
        b
    }

    /// Raises the cancellation flag; every clone observes it at its next
    /// checkpoint.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether this budget has neither a deadline nor a raised cancel
    /// flag *right now* — checkpoints in already-hot loops may skip
    /// their stride bookkeeping entirely when the budget is unlimited.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && !self.cancel.load(Ordering::Relaxed)
    }

    /// Whether the wall-clock deadline (if any) has passed.
    #[must_use]
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Whether the cancel flag is raised.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The checkpoint: cancellation is checked before the deadline so an
    /// explicit cancel renders as `"request cancelled"` even when the
    /// deadline also lapsed.
    ///
    /// # Errors
    ///
    /// [`SnaError::Cancelled`] when the flag is raised,
    /// [`SnaError::DeadlineExceeded`] when past the deadline.
    pub fn check(&self) -> Result<(), SnaError> {
        if self.is_cancelled() {
            return Err(SnaError::Cancelled);
        }
        if self.deadline_exceeded() {
            return Err(SnaError::DeadlineExceeded);
        }
        Ok(())
    }

    /// The error this budget's state implies, for code that learns "the
    /// work was stopped" through a side channel (e.g. the VM's
    /// cancellation token) and needs the precise diagnosis.
    #[must_use]
    pub fn overrun_error(&self) -> SnaError {
        if self.deadline_exceeded() && !self.is_cancelled() {
            SnaError::DeadlineExceeded
        } else {
            SnaError::Cancelled
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_passes() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check().is_ok());
        assert!(!b.deadline_exceeded());
    }

    #[test]
    fn zero_timeout_fails_the_first_checkpoint() {
        let b = Budget::with_timeout(Duration::ZERO);
        assert!(matches!(b.check(), Err(SnaError::DeadlineExceeded)));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn generous_timeout_passes() {
        let b = Budget::with_timeout(Duration::from_secs(3600));
        assert!(b.check().is_ok());
        assert!(!b.is_unlimited());
    }

    #[test]
    fn cancel_propagates_to_clones_and_wins_over_deadline() {
        let b = Budget::with_timeout(Duration::ZERO);
        let clone = b.clone();
        b.cancel();
        assert!(matches!(clone.check(), Err(SnaError::Cancelled)));
        assert!(matches!(clone.overrun_error(), SnaError::Cancelled));
    }

    #[test]
    fn pre_cancelled_fails_immediately() {
        let b = Budget::pre_cancelled();
        assert!(matches!(b.check(), Err(SnaError::Cancelled)));
    }

    #[test]
    fn overrun_error_diagnoses_deadline() {
        let b = Budget::with_timeout(Duration::ZERO);
        assert!(matches!(b.overrun_error(), SnaError::DeadlineExceeded));
    }
}
