//! SNA for linear datapaths with feedback: exact moments through LTI
//! gains, full PDFs by per-source shaping + convolution.
//!
//! For a linear graph, the output error is `Σᵢ Σₖ hᵢ[k]·eᵢ[n−k]`: each
//! source `eᵢ` (bounded, known PDF) enters through its impulse response
//! `hᵢ`.  The engine shapes each source's *total* contribution:
//!
//! * single-tap responses (combinational paths) keep the exact scaled
//!   source PDF — a scaled uniform;
//! * multi-tap responses (feedback) invoke the central limit theorem
//!   (as in Fang/Rutenbar and Pu/Ha, which the paper cites): a Gaussian
//!   with the *exact* mean and variance, truncated to the *guaranteed*
//!   per-tap bounds;
//!
//! and then convolves the per-source contributions (exact histogram
//! addition).  Moments and bounds in the returned report are the exact
//! analytic values from [`NaModel`]; the histogram carries the shape.

use sna_dfg::{Dfg, LtiOptions};
use sna_fixp::WlConfig;
use sna_hist::Histogram;
use sna_interval::Interval;

use crate::sources::NoiseSource;
use crate::{NaModel, NoiseReport, SnaError};

/// SNA engine for linear (possibly sequential) datapaths.
#[derive(Clone, Debug)]
pub struct LtiEngine {
    model: std::sync::Arc<NaModel>,
    bins: usize,
}

impl LtiEngine {
    /// Builds the engine (runs the one-off impulse-response and range
    /// analyses).
    ///
    /// # Errors
    ///
    /// Same as [`NaModel::build`].
    pub fn build(
        dfg: &Dfg,
        input_ranges: &[Interval],
        opts: &LtiOptions,
        bins: usize,
    ) -> Result<Self, SnaError> {
        Ok(Self::from_model(
            std::sync::Arc::new(NaModel::build(dfg, input_ranges, opts)?),
            bins,
        ))
    }

    /// Wraps an already built (and possibly shared) gain model — the path
    /// a [`crate::Session`] takes so the expensive impulse analysis is
    /// paid once per compiled program, not once per engine.
    #[must_use]
    pub fn from_model(model: std::sync::Arc<NaModel>, bins: usize) -> Self {
        LtiEngine { model, bins }
    }

    /// Access to the underlying gain model.
    pub fn model(&self) -> &NaModel {
        self.model.as_ref()
    }

    /// Analyzes output noise under `config`: exact moments + shaped PDF.
    ///
    /// # Errors
    ///
    /// Histogram construction failures are propagated.
    pub fn analyze(
        &self,
        dfg: &Dfg,
        config: &WlConfig,
    ) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        let moments = self.model.evaluate(dfg, config);
        let n_out = moments.len();
        let mut pdfs: Vec<Option<Histogram>> = vec![None; n_out];

        for src in self.model.shaped_sources(dfg, config) {
            let g = self
                .model
                .gains_from(src.node)
                .expect("shaped sources refer to analyzed nodes");
            for (pdf, &og) in pdfs.iter_mut().zip(g.per_output.iter()) {
                if og.l1 == 0.0 {
                    continue; // source does not reach this output
                }
                let contribution = shape_contribution(&src, og, self.bins)?;
                *pdf = Some(match pdf.take() {
                    None => contribution,
                    Some(acc) => acc.add_with(
                        &contribution,
                        &sna_hist::OpOptions::default()
                            .with_deposit(sna_hist::DepositPolicy::Exact)
                            .with_out_bins(self.bins),
                    )?,
                });
            }
        }

        Ok(moments
            .into_iter()
            .enumerate()
            .map(|(k, (name, m))| {
                let mut report = m;
                if let Some(pdf) = pdfs[k].take() {
                    // Shift by the deterministic offsets that are in the
                    // exact mean but not in the source convolution
                    // (constant rounding through linear paths).
                    let shift = report.mean - pdf.mean();
                    let shifted = if shift.abs() > 1e-15 {
                        pdf.shift(shift).unwrap_or(pdf)
                    } else {
                        pdf
                    };
                    report.histogram = Some(shifted);
                }
                (name, report)
            })
            .collect())
    }
}

/// Shapes the total contribution of one source through one transfer path.
fn shape_contribution(
    src: &NoiseSource,
    og: sna_dfg::OutputGain,
    bins: usize,
) -> Result<Histogram, SnaError> {
    let mean = src.offset * og.dc;
    let variance = src.variance() * og.l2_squared;
    // Per-tap extremal bounds (see NaModel::evaluate).
    let p = 0.5 * (og.l1 + og.dc);
    let n = 0.5 * (og.dc - og.l1);
    let a = src.offset - src.half_width;
    let b = src.offset + src.half_width;
    let lo = a * p + b * n;
    let hi = b * p + a * n;
    // Single-tap test: |h| concentrated on one tap ⇔ l1² == l2².
    let single_tap = (og.l1 * og.l1 - og.l2_squared).abs() <= 1e-9 * og.l1 * og.l1;
    if single_tap || hi - lo <= 0.0 {
        // Exact: scaled uniform over [lo, hi] (or a degenerate spike).
        if hi - lo <= 0.0 {
            let eps = 1e-18 + mean.abs() * 1e-15;
            return Ok(Histogram::uniform(mean - eps, mean + eps, bins.max(2))?);
        }
        Ok(Histogram::uniform(lo, hi, bins)?)
    } else {
        // CLT: truncated Gaussian with exact mean/variance on [lo, hi].
        let sd = variance.sqrt().max(1e-300);
        Ok(Histogram::from_density_fn(lo, hi, bins, |x| {
            let z = (x - mean) / sd;
            (-0.5 * z * z).exp()
        })?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_fixp::{monte_carlo_error, MonteCarloOptions, WlConfig};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    fn one_pole(pole: f64) -> Dfg {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(pole, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn iir_prediction_matches_monte_carlo() {
        let g = one_pole(0.5);
        let ranges = [iv(-0.4, 0.4)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 12).unwrap();
        let engine = LtiEngine::build(&g, &ranges, &LtiOptions::default(), 128).unwrap();
        let predicted = &engine.analyze(&g, &cfg).unwrap()[0].1;
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 60_000,
                steps: 96,
                warmup: 32,
                ..Default::default()
            },
        )
        .unwrap()[0];
        let ratio = predicted.variance / measured.variance;
        assert!(
            ratio > 0.5 && ratio < 2.0,
            "variance ratio {ratio} (pred {}, meas {})",
            predicted.variance,
            measured.variance
        );
        // Guaranteed bounds cover all observed errors.
        assert!(predicted.support.0 <= measured.min);
        assert!(predicted.support.1 >= measured.max);
        // A PDF is attached and is consistent with the exact mean.
        let pdf = predicted.histogram.as_ref().unwrap();
        assert!((pdf.mean() - predicted.mean).abs() < 1e-6);
    }

    #[test]
    fn feedback_pdf_is_bell_shaped() {
        let g = one_pole(0.9);
        let ranges = [iv(-0.05, 0.05)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 12).unwrap();
        let engine = LtiEngine::build(&g, &ranges, &LtiOptions::default(), 128).unwrap();
        let r = &engine.analyze(&g, &cfg).unwrap()[0].1;
        let pdf = r.histogram.as_ref().unwrap();
        // Center denser than two-sigma points.
        let mid = pdf.density(r.mean);
        let off = pdf.density(r.mean + 2.0 * r.std_dev());
        assert!(mid > 2.0 * off, "bell shape expected: {mid} vs {off}");
    }

    #[test]
    fn combinational_paths_stay_bounded() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul_const(0.5, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let engine = LtiEngine::build(&g, &ranges, &LtiOptions::default(), 64).unwrap();
        let r = &engine.analyze(&g, &cfg).unwrap()[0].1;
        let pdf = r.histogram.as_ref().unwrap();
        assert!(r.support.0 < 0.0 && r.support.1 > 0.0);
        assert!((pdf.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn moments_equal_na_model() {
        let g = one_pole(0.7);
        let ranges = [iv(-0.2, 0.2)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 14).unwrap();
        let engine = LtiEngine::build(&g, &ranges, &LtiOptions::default(), 64).unwrap();
        let na = engine.model().evaluate(&g, &cfg);
        let sna = engine.analyze(&g, &cfg).unwrap();
        assert_eq!(na[0].1.mean, sna[0].1.mean);
        assert_eq!(na[0].1.variance, sna[0].1.variance);
        assert_eq!(na[0].1.support, sna[0].1.support);
    }

    #[test]
    fn pdf_bounds_respect_analytic_support() {
        let g = one_pole(0.6);
        let ranges = [iv(-0.3, 0.3)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let engine = LtiEngine::build(&g, &ranges, &LtiOptions::default(), 128).unwrap();
        let r = &engine.analyze(&g, &cfg).unwrap()[0].1;
        let pdf = r.histogram.as_ref().unwrap();
        let (plo, phi) = pdf.support();
        // The convolved PDF may not exceed the analytic worst case by more
        // than a shift-epsilon.
        assert!(plo >= r.support.0 - 1e-9);
        assert!(phi <= r.support.1 + 1e-9);
    }
}
