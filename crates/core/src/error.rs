use std::error::Error;
use std::fmt;

use sna_dfg::{DfgError, NodeId};
use sna_expr::ExprError;
use sna_fixp::FixpError;
use sna_hist::HistError;

/// Errors produced by the SNA engines.
#[derive(Clone, Debug, PartialEq)]
pub enum SnaError {
    /// Underlying graph failure.
    Dfg(DfgError),
    /// Underlying fixed-point failure.
    Fixp(FixpError),
    /// Underlying histogram failure.
    Hist(HistError),
    /// Underlying symbolic-expression failure.
    Expr(ExprError),
    /// The selected engine cannot handle an operation of the graph.
    UnsupportedOp {
        /// The offending node.
        node: NodeId,
        /// Human-readable reason / remedy.
        reason: &'static str,
    },
    /// The engine requires a combinational graph (use
    /// [`sna_dfg::Dfg::combinational_view`] or the LTI engine).
    SequentialGraph,
    /// An expression analysis was asked for with mismatched input counts.
    WrongInputCount {
        /// Expected number of uncertain inputs.
        expected: usize,
        /// Provided number.
        got: usize,
    },
    /// A coefficient vector does not match the graph's constant slots
    /// (see [`crate::Session::with_coefficients`]).
    WrongCoefficientCount {
        /// Number of `Const` nodes in the graph.
        expected: usize,
        /// Provided number of coefficients.
        got: usize,
    },
    /// The selected engine handles combinational datapaths only.
    CombinationalOnly {
        /// The engine's wire/CLI name.
        engine: &'static str,
    },
    /// An input declaration cannot be turned into the engine's input
    /// model (e.g. a degenerate uncertainty range).
    InvalidInput {
        /// The input's name.
        name: String,
        /// The underlying failure, rendered.
        message: String,
    },
    /// The request's execution budget ran out of wall-clock time (see
    /// [`crate::Budget`]). Renders as exactly `deadline exceeded` — the
    /// service layer classifies on that string.
    DeadlineExceeded,
    /// The request was cancelled via its budget's cancel flag.
    Cancelled,
}

impl fmt::Display for SnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnaError::Dfg(e) => write!(f, "graph error: {e}"),
            SnaError::Fixp(e) => write!(f, "fixed-point error: {e}"),
            SnaError::Hist(e) => write!(f, "histogram error: {e}"),
            SnaError::Expr(e) => write!(f, "expression error: {e}"),
            SnaError::UnsupportedOp { node, reason } => {
                write!(f, "unsupported operation at node {node}: {reason}")
            }
            SnaError::SequentialGraph => {
                write!(f, "engine requires a combinational graph")
            }
            SnaError::WrongInputCount { expected, got } => {
                write!(f, "expected {expected} uncertain inputs, got {got}")
            }
            SnaError::WrongCoefficientCount { expected, got } => {
                write!(
                    f,
                    "the graph has {expected} constant slot(s), got {got} coefficient(s)"
                )
            }
            SnaError::CombinationalOnly { engine } => {
                write!(
                    f,
                    "the {engine} engine handles combinational datapaths only \
                     (this one contains delays)"
                )
            }
            SnaError::InvalidInput { name, message } => {
                write!(f, "input `{name}`: {message}")
            }
            SnaError::DeadlineExceeded => write!(f, "deadline exceeded"),
            SnaError::Cancelled => write!(f, "request cancelled"),
        }
    }
}

impl Error for SnaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnaError::Dfg(e) => Some(e),
            SnaError::Fixp(e) => Some(e),
            SnaError::Hist(e) => Some(e),
            SnaError::Expr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for SnaError {
    fn from(e: DfgError) -> Self {
        SnaError::Dfg(e)
    }
}

impl From<FixpError> for SnaError {
    fn from(e: FixpError) -> Self {
        SnaError::Fixp(e)
    }
}

impl From<HistError> for SnaError {
    fn from(e: HistError) -> Self {
        SnaError::Hist(e)
    }
}

impl From<ExprError> for SnaError {
    fn from(e: ExprError) -> Self {
        SnaError::Expr(e)
    }
}
