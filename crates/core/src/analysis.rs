//! High-level facade: pick an engine (or let the analysis pick one) and
//! get per-output [`NoiseReport`]s.
//!
//! [`SnaAnalysis`] predates the [`Session`](crate::Session) API and is
//! kept as a thin facade over it — new code should open a `Session` and
//! send [`AnalysisRequest`](crate::AnalysisRequest)s instead.

use sna_dfg::Dfg;
use sna_fixp::WlConfig;
use sna_interval::Interval;

use crate::engine::{AnalysisRequest, WlChoice};
use crate::{NaModel, NoiseReport, Session, SnaError};

/// Which analysis engine to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Choose automatically: LTI for sequential linear graphs, the DFG
    /// histogram engine otherwise.
    #[default]
    Auto,
    /// Op-by-op histogram propagation ([`crate::DfgEngine`]).
    Dfg,
    /// LTI gains + CLT shaping ([`crate::LtiEngine`]); linear graphs only.
    Lti,
    /// Polynomial propagation ([`crate::SymbolicEngine`]); combinational
    /// only.
    Symbolic,
    /// Classical NA baseline (moments only, no PDF).
    Na,
    /// The paper's Section-4 exact algorithm over the inputs' *value*
    /// uncertainty ([`crate::CartesianEngine`]); characterizes the output
    /// PDF rather than quantization noise.
    Cartesian,
    /// Vectorized Monte-Carlo simulation over the compiled bytecode
    /// program ([`crate::SimulateEngine`]): *empirical* per-output error
    /// statistics rather than a model prediction. Never chosen by
    /// `Auto`.
    Simulate,
}

impl EngineKind {
    /// Parses the `--engine` / `"engine"` selector.
    ///
    /// # Errors
    ///
    /// A usage-style message listing the accepted names.
    pub fn parse(raw: &str) -> Result<Self, String> {
        Ok(match raw {
            "auto" => EngineKind::Auto,
            "na" => EngineKind::Na,
            "dfg" => EngineKind::Dfg,
            "lti" => EngineKind::Lti,
            "symbolic" => EngineKind::Symbolic,
            "cartesian" => EngineKind::Cartesian,
            "simulate" => EngineKind::Simulate,
            other => {
                return Err(format!(
                    "unknown engine `{other}` (expected auto, na, dfg, lti, symbolic, cartesian \
                     or simulate)"
                ))
            }
        })
    }

    /// The selector's wire/CLI name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Auto => "auto",
            EngineKind::Na => "na",
            EngineKind::Dfg => "dfg",
            EngineKind::Lti => "lti",
            EngineKind::Symbolic => "symbolic",
            EngineKind::Cartesian => "cartesian",
            EngineKind::Simulate => "simulate",
        }
    }
}

/// One-stop analysis builder.
///
/// # Example
///
/// ```
/// use sna_core::{EngineKind, SnaAnalysis};
/// use sna_dfg::DfgBuilder;
/// use sna_fixp::WlConfig;
/// use sna_interval::Interval;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new();
/// let x = b.input("x");
/// let y = b.mul_const(0.5, x);
/// b.output("y", y);
/// let dfg = b.build()?;
/// let ranges = vec![Interval::new(-1.0, 1.0)?];
/// let cfg = WlConfig::from_ranges(&dfg, &ranges, 12)?;
///
/// let reports = SnaAnalysis::new(&dfg, &cfg, &ranges)
///     .engine(EngineKind::Auto)
///     .bins(64)
///     .run()?;
/// assert_eq!(reports[0].0, "y");
/// assert!(reports[0].1.variance > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SnaAnalysis<'a> {
    dfg: &'a Dfg,
    config: &'a WlConfig,
    input_ranges: &'a [Interval],
    engine: EngineKind,
    bins: usize,
    na_model: Option<&'a NaModel>,
}

impl<'a> SnaAnalysis<'a> {
    /// Starts an analysis of `dfg` under `config` with the given input
    /// ranges.
    pub fn new(dfg: &'a Dfg, config: &'a WlConfig, input_ranges: &'a [Interval]) -> Self {
        SnaAnalysis {
            dfg,
            config,
            input_ranges,
            engine: EngineKind::Auto,
            bins: 64,
            na_model: None,
        }
    }

    /// Selects the engine.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Supplies a prebuilt [`NaModel`] for the `Na` engine, skipping the
    /// model build — the expensive one-off — so repeated evaluations (a
    /// server loop, a word-length search) pay only the `O(#sources)`
    /// evaluation. The model must have been built from the same graph and
    /// input ranges.
    pub fn with_na_model(mut self, model: &'a NaModel) -> Self {
        self.na_model = Some(model);
        self
    }

    /// Sets the histogram resolution (granularity).
    pub fn bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Runs the analysis through a one-shot [`Session`].
    ///
    /// # Errors
    ///
    /// Propagates the selected engine's failures; `Auto` falls back from
    /// LTI to the DFG engine when the graph is nonlinear combinational.
    pub fn run(self) -> Result<Vec<(String, NoiseReport)>, SnaError> {
        // The one capability a session does not model: evaluating a
        // caller-owned prebuilt NA model.
        if self.engine == EngineKind::Na {
            if let Some(model) = self.na_model {
                return Ok(model.evaluate(self.dfg, self.config));
            }
        }
        let session = Session::new(self.dfg.clone(), self.input_ranges.to_vec())?;
        let req = AnalysisRequest {
            engine: self.engine,
            words: WlChoice::Config(self.config.clone()),
            bins: self.bins,
            ..AnalysisRequest::default()
        };
        Ok(session.analyze(&req)?.reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    fn linear_tree() -> Dfg {
        // A fanout-free tree: every engine's independence assumptions are
        // exact here, so all four must agree.
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn all_engines_agree_on_moments_for_linear_graphs() {
        let g = linear_tree();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let mut variances = Vec::new();
        for kind in [
            EngineKind::Dfg,
            EngineKind::Lti,
            EngineKind::Symbolic,
            EngineKind::Na,
        ] {
            let r = SnaAnalysis::new(&g, &cfg, &ranges)
                .engine(kind)
                .bins(64)
                .run()
                .unwrap();
            variances.push(r[0].1.variance);
        }
        let reference = variances[3]; // NA is the analytic baseline here
        for (i, v) in variances.iter().enumerate() {
            assert!(
                (v / reference - 1.0).abs() < 0.25,
                "engine {i} variance {v} vs reference {reference}"
            );
        }
    }

    #[test]
    fn auto_prefers_lti_for_sequential_linear() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-0.4, 0.4)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 12).unwrap();
        let r = SnaAnalysis::new(&g, &cfg, &ranges).run().unwrap();
        // PDF attached ⇒ the LTI engine ran (NA would not attach one).
        assert!(r[0].1.histogram.is_some());
    }

    #[test]
    fn auto_falls_back_to_dfg_for_nonlinear_combinational() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul(x, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let r = SnaAnalysis::new(&g, &cfg, &ranges).run().unwrap();
        assert!(r[0].1.variance > 0.0);
    }

    #[test]
    fn prebuilt_na_model_reproduces_the_built_in_na_path_exactly() {
        let g = linear_tree();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let fresh = SnaAnalysis::new(&g, &cfg, &ranges)
            .engine(EngineKind::Na)
            .run()
            .unwrap();
        let model = NaModel::build(&g, &ranges, &sna_dfg::LtiOptions::default()).unwrap();
        for _ in 0..3 {
            let reused = SnaAnalysis::new(&g, &cfg, &ranges)
                .engine(EngineKind::Na)
                .with_na_model(&model)
                .run()
                .unwrap();
            assert_eq!(fresh.len(), reused.len());
            for ((n1, r1), (n2, r2)) in fresh.iter().zip(&reused) {
                assert_eq!(n1, n2);
                assert_eq!(r1.mean.to_bits(), r2.mean.to_bits());
                assert_eq!(r1.variance.to_bits(), r2.variance.to_bits());
            }
        }
    }

    #[test]
    fn engine_types_are_send_and_sync() {
        // The service layer shares compiled graphs and models across a
        // thread pool behind `Arc`s; that is only sound if these stay
        // `Send + Sync`. A compile-time check, phrased as a test.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Dfg>();
        assert_send_sync::<WlConfig>();
        assert_send_sync::<NaModel>();
        assert_send_sync::<crate::NoiseReport>();
        assert_send_sync::<crate::LtiEngine>();
        assert_send_sync::<crate::DfgEngine>();
        assert_send_sync::<crate::SymbolicEngine>();
        assert_send_sync::<crate::CartesianEngine>();
        assert_send_sync::<SnaAnalysis<'static>>();
    }

    #[test]
    fn auto_rejects_nonlinear_sequential() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let sq = b.mul(fb, fb);
        let scaled = b.mul_const(0.1, sq);
        let y = b.add(x, scaled);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-0.5, 0.5)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 12).unwrap();
        assert!(matches!(
            SnaAnalysis::new(&g, &cfg, &ranges).run(),
            Err(SnaError::SequentialGraph)
        ));
    }
}
