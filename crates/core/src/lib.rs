//! Symbolic Noise Analysis (SNA) — the core contribution of
//! Ahmadi & Zwolinski, *"Symbolic Noise Analysis Approach to Computational
//! Hardware Optimization"*, DAC 2008.
//!
//! SNA models every finite-precision error in a datapath as a *noise
//! symbol*: a bounded random variable on `[-1, 1]` carrying a probability
//! density represented as a histogram.  Error propagation combines the two
//! classical schools — range analysis (IA/AA: guaranteed bounds, no
//! distribution) and statistical noise analysis (NA: distributions under
//! LTI + white-noise assumptions) — into one mechanism that yields bounds
//! *and* full output PDFs without restrictive statistical assumptions.
//!
//! Four engines cover the practical trade-off space:
//!
//! | engine | inputs | cost | produces |
//! |---|---|---|---|
//! | [`CartesianEngine`] | closed-form expression | exponential in #symbols | exact Section-4 algorithm |
//! | [`DfgEngine`] | combinational [`sna_dfg::Dfg`] | per-op `O(bins²)` | value + error histograms per node |
//! | [`LtiEngine`] | linear (incl. feedback) DFG | gains once, then `O(#sources)` | moments exact, PDF by CLT + convolution |
//! | [`SymbolicEngine`] | combinational polynomial DFG | term growth bounded | Eq.(1) polynomials; exact moments |
//!
//! The classical NA baseline ([`NaModel`]) and the shared noise-source
//! model ([`NoiseSource`], [`noise_sources`]) live here too.
//!
//! # Example
//!
//! Analyze the rounding noise of `y = 0.3·x₁ + 0.6·x₂` at 8 bits:
//!
//! ```
//! use sna_core::{DfgEngine, EngineOptions};
//! use sna_dfg::DfgBuilder;
//! use sna_fixp::WlConfig;
//! use sna_interval::Interval;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new();
//! let x1 = b.input("x1");
//! let x2 = b.input("x2");
//! let t1 = b.mul_const(0.3, x1);
//! let t2 = b.mul_const(0.6, x2);
//! let y = b.add(t1, t2);
//! b.output("y", y);
//! let dfg = b.build()?;
//!
//! let ranges = [Interval::new(-1.0, 1.0)?, Interval::new(-1.0, 1.0)?];
//! let cfg = WlConfig::from_ranges(&dfg, &ranges, 8)?;
//! let reports = DfgEngine::new(EngineOptions::default())
//!     .analyze(&dfg, &cfg, &ranges)?;
//! let y_noise = &reports[0].1;
//! assert!(y_noise.variance > 0.0);
//! assert!(y_noise.support.0 < 0.0 && y_noise.support.1 > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod budget;
mod cartesian;
mod dfg_engine;
pub mod engine;
mod error;
mod lti_engine;
mod na;
mod report;
mod session;
mod simulate;
mod sources;
mod symbolic;
mod trace;

pub use analysis::{EngineKind, SnaAnalysis};
pub use budget::Budget;
pub use cartesian::{CartesianEngine, UncertainInput};
pub use dfg_engine::{DfgEngine, EngineOptions, HistMemo, Uncertain, Value};
pub use engine::{AnalysisReport, AnalysisRequest, Engine, ReportKind, SimulateEngine, WlChoice};
pub use error::SnaError;
pub use lti_engine::LtiEngine;
pub use na::{CoeffKind, CoeffSite, GainPatch, NaModel};
pub use report::NoiseReport;
pub use session::{PerSample, Session, SessionStats};
pub use simulate::{Gap, SimOutput, SimReport, SimRequest};
pub use sources::{noise_sources, IntroducesNoise, NoiseSource};
pub use symbolic::{SymbolicEngine, SymbolicOptions, SymbolicResult};
pub use trace::{TraceInputFit, TraceReport, TraceRequest};
