use std::fmt;

use sna_hist::Histogram;

/// The result of a noise analysis at one output: moments, guaranteed
/// bounds, and (when the engine produces one) the full error PDF.
///
/// This is the SNA deliverable the paper emphasizes: *"a PDF can be found
/// for the output uncertainty to show the probability of the output taking
/// each value inside the bounded interval"* — plus the `mean`, `variance`,
/// `xl`, `xh` columns of Table 2.
#[derive(Clone, Debug)]
pub struct NoiseReport {
    /// Mean error.
    pub mean: f64,
    /// Error variance.
    pub variance: f64,
    /// Mean squared error (`variance + mean²`) — the "Noise" rows of
    /// Tables 3–6 constrain this quantity.
    pub power: f64,
    /// Guaranteed error bounds `(xl, xh)`.
    pub support: (f64, f64),
    /// The error PDF, when the engine computes one.
    pub histogram: Option<Histogram>,
}

impl NoiseReport {
    /// Builds a report from an error histogram (moments and bounds are
    /// derived from it).
    pub fn from_histogram(h: Histogram) -> Self {
        NoiseReport {
            mean: h.mean(),
            variance: h.variance(),
            power: h.noise_power(),
            support: h.effective_support(0.0),
            histogram: Some(h),
        }
    }

    /// Builds a moments-only report (no PDF available).
    pub fn from_moments(mean: f64, variance: f64, support: (f64, f64)) -> Self {
        NoiseReport {
            mean,
            variance,
            power: variance + mean * mean,
            support,
            histogram: None,
        }
    }

    /// A report for an exactly-zero error (e.g. a datapath wide enough to
    /// be exact).
    pub fn zero() -> Self {
        NoiseReport {
            mean: 0.0,
            variance: 0.0,
            power: 0.0,
            support: (0.0, 0.0),
            histogram: None,
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Central interval holding `coverage` probability, from the PDF when
    /// available, else ±k·σ around the mean clipped to the support
    /// (Chebyshev-style fallback).
    ///
    /// # Panics
    ///
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn credible_interval(&self, coverage: f64) -> (f64, f64) {
        assert!((0.0..=1.0).contains(&coverage), "coverage in [0, 1]");
        match &self.histogram {
            Some(h) => h.credible_interval(coverage),
            None => {
                // Chebyshev: P(|X−μ| ≥ kσ) ≤ 1/k².
                let k = (1.0 / (1.0 - coverage).max(1e-12)).sqrt();
                let lo = (self.mean - k * self.std_dev()).max(self.support.0);
                let hi = (self.mean + k * self.std_dev()).min(self.support.1);
                (lo, hi)
            }
        }
    }

    /// Signal-to-quantization-noise ratio in dB for a signal of the given
    /// power.
    pub fn sqnr_db(&self, signal_power: f64) -> f64 {
        10.0 * (signal_power / self.power.max(1e-300)).log10()
    }
}

impl fmt::Display for NoiseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean={:.6e} var={:.6e} power={:.6e} bounds=[{:.6e}, {:.6e}]{}",
            self.mean,
            self.variance,
            self.power,
            self.support.0,
            self.support.1,
            if self.histogram.is_some() {
                " (pdf available)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_histogram_derives_moments() {
        let h = Histogram::uniform(-0.5, 0.5, 64).unwrap();
        let r = NoiseReport::from_histogram(h);
        assert!(r.mean.abs() < 1e-12);
        assert!((r.variance - 1.0 / 12.0).abs() < 1e-9);
        assert!((r.power - r.variance - r.mean * r.mean).abs() < 1e-12);
        assert_eq!(r.support, (-0.5, 0.5));
        assert!(r.histogram.is_some());
    }

    #[test]
    fn from_moments_has_no_pdf() {
        let r = NoiseReport::from_moments(0.1, 0.04, (-1.0, 1.0));
        assert!(r.histogram.is_none());
        assert!((r.power - 0.05).abs() < 1e-12);
        assert!((r.std_dev() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn credible_interval_with_and_without_pdf() {
        let h = Histogram::gaussian(0.0, 1.0, 256).unwrap();
        let with_pdf = NoiseReport::from_histogram(h);
        let (lo, hi) = with_pdf.credible_interval(0.95);
        assert!(lo < -1.5 && hi > 1.5);
        let no_pdf = NoiseReport::from_moments(0.0, 1.0, (-4.0, 4.0));
        let (clo, chi) = no_pdf.credible_interval(0.95);
        // Chebyshev is conservative: wider than the Gaussian interval.
        assert!(clo <= lo + 0.5 && chi >= hi - 0.5);
    }

    #[test]
    fn sqnr_scales_with_noise_power() {
        let quiet = NoiseReport::from_moments(0.0, 1e-8, (-1e-3, 1e-3));
        let loud = NoiseReport::from_moments(0.0, 1e-4, (-0.1, 0.1));
        assert!(quiet.sqnr_db(1.0) > loud.sqnr_db(1.0));
        assert!((quiet.sqnr_db(1.0) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn zero_report() {
        let r = NoiseReport::zero();
        assert_eq!(r.power, 0.0);
        assert_eq!(r.support, (0.0, 0.0));
    }
}
