//! Monte-Carlo simulation through the session's compiled bytecode
//! program, with the analytic model's prediction alongside — the
//! empirical cross-check the paper's Table 2 calls "Actual Values".
//!
//! [`Session::simulate`] runs K×N sampled paths on the `sna_vm`
//! backend (deterministic for a given seed, whatever the worker count)
//! and pairs each output's empirical (mean, variance, min/max,
//! histogram) with the best available model prediction:
//!
//! * linear graphs → the NA gain model ([`EngineKind::Na`]);
//! * nonlinear combinational graphs → histogram propagation
//!   ([`EngineKind::Dfg`]);
//! * nonlinear sequential graphs → no model applies; the simulation
//!   itself is the only number anyone has.

use std::time::{Duration, Instant};

use sna_dfg::DfgError;
use sna_fixp::FixpError;
use sna_vm::{Executable, SimOptions, VmError};

use crate::engine::{AnalysisRequest, WlChoice};
use crate::{Budget, EngineKind, NoiseReport, Session, SnaError};

/// One simulation request.
#[derive(Clone, Debug)]
pub struct SimRequest {
    /// Word lengths of the simulated configuration.
    pub words: WlChoice,
    /// Independent sample paths.
    pub paths: usize,
    /// RNG seed; the report is a pure function of it (and the request).
    pub seed: u64,
    /// Steps per path; `None` picks 1 for combinational graphs and 64
    /// for sequential ones.
    pub steps: Option<usize>,
    /// Warmup steps discarded per path; `None` picks 0 / 16 to match
    /// `steps`.
    pub warmup: Option<usize>,
    /// Worker threads (0 = available parallelism). Changes wall-clock
    /// only, never the report.
    pub workers: usize,
    /// Bins of the empirical error histogram.
    pub bins: usize,
    /// Cooperative execution budget, checked before every simulation
    /// chunk. Defaults to unlimited; a budget that never fires leaves
    /// the report bit-identical.
    pub budget: Budget,
}

impl Default for SimRequest {
    fn default() -> Self {
        SimRequest {
            words: WlChoice::Uniform(12),
            paths: 100_000,
            seed: 0x5eed_cafe,
            steps: None,
            warmup: None,
            workers: 0,
            bins: 64,
            budget: Budget::unlimited(),
        }
    }
}

/// An absolute/relative disagreement between empirical and predicted.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gap {
    /// `|empirical − predicted|`.
    pub abs: f64,
    /// `abs / |predicted|`; `None` when the prediction is exactly zero.
    pub rel: Option<f64>,
}

impl Gap {
    pub(crate) fn between(empirical: f64, predicted: f64) -> Gap {
        let abs = (empirical - predicted).abs();
        Gap {
            abs,
            rel: (predicted != 0.0).then(|| abs / predicted.abs()),
        }
    }
}

/// One output's simulation result.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Output name as declared.
    pub name: String,
    /// Empirical error statistics (support = observed min/max, the
    /// histogram attached).
    pub empirical: NoiseReport,
    /// Collected error samples behind [`SimOutput::empirical`].
    pub samples: usize,
    /// The analytic model's report, when a model applies.
    pub predicted: Option<NoiseReport>,
    /// Empirical-vs-predicted mean disagreement.
    pub mean_gap: Option<Gap>,
    /// Empirical-vs-predicted variance disagreement.
    pub variance_gap: Option<Gap>,
}

/// The full simulation report.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-output results, in declaration order.
    pub outputs: Vec<SimOutput>,
    /// Paths actually simulated.
    pub paths: usize,
    /// Steps per path after `None` resolution.
    pub steps: usize,
    /// Warmup steps after `None` resolution.
    pub warmup: usize,
    /// The seed the lanes were fanned out from.
    pub seed: u64,
    /// The engine that produced the predictions, when one applied.
    pub predicted_by: Option<EngineKind>,
    /// Wall-clock simulation time (prediction excluded).
    pub elapsed: Duration,
}

/// Maps a VM failure onto [`SnaError`]; `Cancelled` is diagnosed
/// against the request's budget (deadline vs explicit cancel).
pub(crate) fn vm_err(e: VmError, budget: &Budget) -> SnaError {
    match e {
        VmError::DivisionByZero { node } => SnaError::Dfg(DfgError::DivisionByZero { node }),
        VmError::InputArity { expected, got } => {
            SnaError::Dfg(DfgError::WrongInputCount { expected, got })
        }
        VmError::NoSamples => SnaError::Fixp(FixpError::NoSamples),
        VmError::Histogram(e) => SnaError::Hist(e),
        VmError::Cancelled => budget.overrun_error(),
    }
}

impl Session {
    /// Runs a Monte-Carlo simulation over the compiled bytecode program
    /// and pairs the empirical per-output statistics with the analytic
    /// model's prediction (NA for linear graphs, histogram propagation
    /// for nonlinear combinational ones; none for nonlinear sequential
    /// graphs, where simulation is the only source of truth).
    ///
    /// The program compiles lazily on first use and is cached on the
    /// session — including across [`Session::with_coefficients`]
    /// descendants, since the bytecode is shape-only.
    ///
    /// # Errors
    ///
    /// Word-length / range failures from configuration, and simulation
    /// failures (division by zero, zero paths). A *prediction* failure
    /// is not an error: `predicted` is simply absent.
    pub fn simulate(&self, req: &SimRequest) -> Result<SimReport, SnaError> {
        // Pre-flight: an already-expired budget fails before the
        // configuration is even built.
        req.budget.check()?;
        let combinational = self.dfg().is_combinational();
        let steps = req.steps.unwrap_or(if combinational { 1 } else { 64 });
        let warmup = req.warmup.unwrap_or(if combinational { 0 } else { 16 });

        let program = self.vm_program();
        let config = self.wl_config(&req.words)?;
        let exe = Executable::new(program, self.dfg(), &config);
        let opts = SimOptions {
            paths: req.paths,
            seed: req.seed,
            steps,
            warmup,
            workers: req.workers,
            bins: req.bins,
        };
        let started = Instant::now();
        let budget = &req.budget;
        let cancelled = || !budget.is_unlimited() && budget.check().is_err();
        let stats = sna_vm::simulate_with(&exe, self.input_ranges(), &opts, &cancelled)
            .map_err(|e| vm_err(e, budget))?;
        let elapsed = started.elapsed();

        // Best-effort analytic prediction through the normal engine
        // path; `Auto` resolution rejects nonlinear sequential graphs,
        // and any other model failure also just leaves the comparison
        // column empty.
        let prediction = self
            .analyze(&AnalysisRequest {
                engine: EngineKind::Auto,
                words: req.words.clone(),
                bins: req.bins,
                include_pdf: true,
                budget: req.budget.clone(),
            })
            .ok();
        let predicted_by = prediction.as_ref().map(|p| p.engine);

        let outputs = stats
            .into_iter()
            .enumerate()
            .map(|(k, s)| {
                let mut empirical = NoiseReport::from_histogram(s.histogram);
                // The histogram's moments are bin-resolution
                // approximations; keep the exact sample statistics.
                empirical.mean = s.mean;
                empirical.variance = s.variance;
                empirical.power = s.power;
                empirical.support = (s.min, s.max);
                let predicted = prediction.as_ref().map(|p| p.reports[k].1.clone());
                let mean_gap = predicted.as_ref().map(|p| Gap::between(s.mean, p.mean));
                let variance_gap = predicted
                    .as_ref()
                    .map(|p| Gap::between(s.variance, p.variance));
                SimOutput {
                    name: s.name,
                    empirical,
                    samples: s.samples,
                    predicted,
                    mean_gap,
                    variance_gap,
                }
            })
            .collect();

        Ok(SimReport {
            outputs,
            paths: req.paths,
            steps,
            warmup,
            seed: req.seed,
            predicted_by,
            elapsed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_interval::Interval;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    fn linear_session() -> Session {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        Session::new(b.build().unwrap(), vec![iv(-1.0, 1.0), iv(-1.0, 1.0)]).unwrap()
    }

    #[test]
    fn linear_graphs_get_na_predictions_with_gaps() {
        let session = linear_session();
        let req = SimRequest {
            paths: 20_000,
            ..SimRequest::default()
        };
        let report = session.simulate(&req).unwrap();
        assert_eq!(report.predicted_by, Some(EngineKind::Lti));
        assert_eq!(report.steps, 1);
        assert_eq!(report.warmup, 0);
        let out = &report.outputs[0];
        assert_eq!(out.name, "y");
        assert_eq!(out.samples, 20_000);
        assert!(out.predicted.is_some());
        let gap = out.variance_gap.unwrap();
        let rel = gap.rel.unwrap();
        assert!(rel < 0.5, "variance off by {rel}");
        assert!(out.empirical.histogram.is_some());
    }

    #[test]
    fn nonlinear_sequential_graphs_simulate_without_a_prediction() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let sq = b.mul(fb, fb);
        let scaled = b.mul_const(0.1, sq);
        let y = b.add(x, scaled);
        b.bind_delay(fb, y).unwrap();
        b.output("y", y);
        let session = Session::new(b.build().unwrap(), vec![iv(-0.5, 0.5)]).unwrap();
        let req = SimRequest {
            paths: 5_000,
            ..SimRequest::default()
        };
        let report = session.simulate(&req).unwrap();
        assert_eq!(report.predicted_by, None);
        assert_eq!(report.steps, 64);
        assert_eq!(report.warmup, 16);
        let out = &report.outputs[0];
        assert!(out.predicted.is_none() && out.mean_gap.is_none());
        assert!(out.empirical.variance > 0.0);
    }

    #[test]
    fn simulation_is_deterministic_and_cached_across_coefficient_swaps() {
        let session = linear_session();
        let req = SimRequest {
            paths: 4_000,
            ..SimRequest::default()
        };
        let a = session.simulate(&req).unwrap();
        let b = session.simulate(&req).unwrap();
        assert_eq!(
            a.outputs[0].empirical.mean.to_bits(),
            b.outputs[0].empirical.mean.to_bits()
        );
        assert_eq!(session.stats().vm_compiles, 1);

        // A coefficient swap keeps the compiled program (shape-only).
        let swapped = session.with_coefficients(&[0.25, 0.5]).unwrap();
        assert!(swapped.vm_program_built());
        let c = swapped.simulate(&req).unwrap();
        assert_eq!(session.stats().vm_compiles, 1, "program was recompiled");
        assert_ne!(
            a.outputs[0].empirical.variance.to_bits(),
            c.outputs[0].empirical.variance.to_bits(),
            "different coefficients must simulate differently"
        );
    }

    #[test]
    fn overrun_budgets_fail_structured_not_slow() {
        let session = linear_session();
        let req = SimRequest {
            paths: 100_000,
            budget: Budget::with_timeout(Duration::ZERO),
            ..SimRequest::default()
        };
        assert!(matches!(
            session.simulate(&req),
            Err(SnaError::DeadlineExceeded)
        ));
        let req = SimRequest {
            budget: Budget::pre_cancelled(),
            ..SimRequest::default()
        };
        assert!(matches!(session.simulate(&req), Err(SnaError::Cancelled)));
        // The analyze path honours the budget too.
        let err = session
            .analyze(&AnalysisRequest {
                budget: Budget::with_timeout(Duration::ZERO),
                ..AnalysisRequest::default()
            })
            .unwrap_err();
        assert!(matches!(err, SnaError::DeadlineExceeded));
        assert_eq!(err.to_string(), "deadline exceeded");
    }

    #[test]
    fn simulate_engine_runs_through_the_uniform_analyze_path() {
        let session = linear_session();
        let report = session
            .analyze(&AnalysisRequest {
                engine: EngineKind::Simulate,
                ..AnalysisRequest::default()
            })
            .unwrap();
        assert_eq!(report.engine, EngineKind::Simulate);
        assert_eq!(report.reports[0].0, "y");
        assert!(report.reports[0].1.variance > 0.0);
        assert!(report.reports[0].1.histogram.is_some());
    }
}
