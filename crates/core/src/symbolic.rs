//! The symbolic engine: Eq. (1) made concrete.
//!
//! Every input uncertainty and every rounding site becomes a *noise symbol*
//! `ε ∈ [-1, 1]` with a PDF; each node's ideal value and computational
//! error are propagated as sparse multivariate **polynomials** over those
//! symbols ([`sna_expr::Poly`]).  At the outputs this yields:
//!
//! * **exact moments** (mean/variance from symbol moments, no sampling,
//!   no linearization);
//! * **guaranteed bounds** (interval evaluation of the polynomial);
//! * an **output PDF** by term-wise histogram evaluation and convolution
//!   (exact for affine error polynomials — every linear datapath — and an
//!   independence approximation across monomials sharing symbols).
//!
//! Polynomial growth through multiplications is kept in check by a degree
//! cap: truncated terms are *absorbed conservatively* into a fresh bounded
//! symbol spanning their interval hull, so bounds never become unsound.

use sna_dfg::{Dfg, Op};
use sna_expr::{HistEvalOptions, Poly, SymbolId, SymbolTable};
use sna_fixp::WlConfig;
use sna_hist::{DepositPolicy, Histogram, OpOptions};
use sna_interval::Interval;

use crate::sources::{IntroducesNoise, NoiseSource};
use crate::{NoiseReport, SnaError};

/// Options for [`SymbolicEngine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SymbolicOptions {
    /// Histogram bins per noise symbol (the granularity knob).
    pub symbol_bins: usize,
    /// Bins of derived/output histograms.
    pub out_bins: usize,
    /// Maximum polynomial degree before conservative absorption.
    pub max_degree: u32,
    /// Combination budget if exact Cartesian PDF evaluation is requested.
    pub max_combinations: u128,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            symbol_bins: 32,
            out_bins: 128,
            max_degree: 3,
            max_combinations: 50_000_000,
        }
    }
}

/// The outcome of a symbolic analysis.
#[derive(Clone, Debug)]
pub struct SymbolicResult {
    /// Per output: `(name, report)` with exact moments, guaranteed bounds
    /// and a convolution-built PDF.
    pub reports: Vec<(String, NoiseReport)>,
    /// The symbol registry (inspect PDFs, names, moments).
    pub table: SymbolTable,
    /// Per output: the error polynomial (Eq. (1) numerator).
    pub error_polys: Vec<Poly>,
    /// Per output: the ideal-value polynomial over the input symbols.
    pub value_polys: Vec<Poly>,
}

impl SymbolicResult {
    /// Evaluates an output's error PDF by the *exact* Cartesian method
    /// instead of the default convolution (exponential in the symbol count
    /// — use on small polynomials).
    ///
    /// # Errors
    ///
    /// Propagates [`sna_expr::ExprError`] (combination budget, degenerate
    /// support).
    pub fn exact_pdf(&self, output: usize, opts: &HistEvalOptions) -> Result<Histogram, SnaError> {
        Ok(self.error_polys[output].eval_histogram(&self.table, opts)?)
    }
}

/// The Eq.(1) polynomial propagation engine (combinational graphs).
#[derive(Clone, Debug, Default)]
pub struct SymbolicEngine {
    opts: SymbolicOptions,
}

impl SymbolicEngine {
    /// Creates an engine with the given options.
    pub fn new(opts: SymbolicOptions) -> Self {
        SymbolicEngine { opts }
    }

    /// Runs the symbolic propagation.
    ///
    /// # Errors
    ///
    /// * [`SnaError::SequentialGraph`] for graphs with delays;
    /// * [`SnaError::UnsupportedOp`] for division by a signal-dependent
    ///   divisor (use [`crate::DfgEngine`] there);
    /// * input-count and histogram failures as usual.
    pub fn analyze(
        &self,
        dfg: &Dfg,
        config: &WlConfig,
        input_ranges: &[Interval],
    ) -> Result<SymbolicResult, SnaError> {
        if !dfg.is_combinational() {
            return Err(SnaError::SequentialGraph);
        }
        if input_ranges.len() != dfg.n_inputs() {
            return Err(SnaError::Dfg(sna_dfg::DfgError::WrongInputCount {
                expected: dfg.n_inputs(),
                got: input_ranges.len(),
            }));
        }
        let mut table = SymbolTable::new();
        let mut values: Vec<Poly> = vec![Poly::zero(); dfg.len()];
        let mut errors: Vec<Poly> = vec![Poly::zero(); dfg.len()];
        // Noise symbols (as opposed to input-uncertainty symbols).
        let mut is_noise = Vec::<SymbolId>::new();

        for &id in dfg.topo_order() {
            let node = dfg.node(id);
            let q = config.quantizer(id);
            let (value, mut error) = match node.op() {
                Op::Input(i) => {
                    let r = input_ranges[i];
                    let value = if r.is_point() {
                        Poly::constant(r.lo())
                    } else {
                        let sym = table.add_uniform(
                            format!("in:{}", dfg.input_names()[i]),
                            self.opts.symbol_bins,
                        )?;
                        Poly::affine(r.mid(), [(sym, r.rad())])
                    };
                    (value, Poly::zero())
                }
                Op::Const(c) => (Poly::constant(c), Poly::constant(q.quantize(c) - c)),
                Op::Add => {
                    let (a, b) = (node.args()[0].index(), node.args()[1].index());
                    (values[a].add(&values[b]), errors[a].add(&errors[b]))
                }
                Op::Sub => {
                    let (a, b) = (node.args()[0].index(), node.args()[1].index());
                    (values[a].sub(&values[b]), errors[a].sub(&errors[b]))
                }
                Op::Mul => {
                    let (a, b) = (node.args()[0].index(), node.args()[1].index());
                    let value = values[a].mul(&values[b]);
                    let error = values[a]
                        .mul(&errors[b])
                        .add(&values[b].mul(&errors[a]))
                        .add(&errors[a].mul(&errors[b]));
                    (
                        self.absorb(value, &mut table, id, "val")?,
                        self.absorb(error, &mut table, id, "err")?,
                    )
                }
                Op::Div => {
                    let (a, b) = (node.args()[0].index(), node.args()[1].index());
                    if !values[b].is_constant() || !errors[b].is_constant() {
                        return Err(SnaError::UnsupportedOp {
                            node: id,
                            reason: "symbolic engine requires a signal-independent divisor",
                        });
                    }
                    let den = values[b].constant_term() + errors[b].constant_term();
                    if den == 0.0 {
                        return Err(SnaError::Hist(sna_hist::HistError::DivisionByZero {
                            denominator: (0.0, 0.0),
                        }));
                    }
                    let ideal_den = values[b].constant_term();
                    let value = values[a].scale(1.0 / ideal_den);
                    // (va+ea)/(vb+eb) − va/vb, denominators constant.
                    let error = values[a]
                        .add(&errors[a])
                        .scale(1.0 / den)
                        .sub(&values[a].scale(1.0 / ideal_den));
                    (value, error)
                }
                Op::Neg => {
                    let a = node.args()[0].index();
                    (values[a].neg(), errors[a].neg())
                }
                Op::Delay => unreachable!("combinational graph"),
            };
            if dfg.introduces_noise(id, config) {
                let src = NoiseSource::for_quantizer(id, q);
                let sym = table.add_uniform(format!("q:{id}"), self.opts.symbol_bins)?;
                is_noise.push(sym);
                error = error.add(&Poly::affine(src.offset, [(sym, src.half_width)]));
            }
            values[id.index()] = value;
            errors[id.index()] = error;
        }

        let mut reports = Vec::new();
        let mut error_polys = Vec::new();
        let mut value_polys = Vec::new();
        for (name, out) in dfg.outputs() {
            let err = errors[out.index()].clone();
            let mean = err.mean(&table);
            let variance = err.variance(&table);
            let bounds = err.eval_interval(|_| Interval::UNIT);
            let pdf = self.convolve_pdf(&err, &table)?;
            let mut report = match pdf {
                Some(h) => {
                    let mut r = NoiseReport::from_histogram(h);
                    // Moments are exact symbolically; prefer them.
                    r.mean = mean;
                    r.variance = variance;
                    r.power = variance + mean * mean;
                    r
                }
                None => NoiseReport::from_moments(mean, variance, (bounds.lo(), bounds.hi())),
            };
            report.support = (bounds.lo(), bounds.hi());
            reports.push((name.clone(), report));
            error_polys.push(err);
            value_polys.push(values[out.index()].clone());
        }
        Ok(SymbolicResult {
            reports,
            table,
            error_polys,
            value_polys,
        })
    }

    /// Caps polynomial degree, absorbing dropped terms into a fresh bounded
    /// symbol spanning their interval hull (keeps bounds sound).
    fn absorb(
        &self,
        poly: Poly,
        table: &mut SymbolTable,
        node: sna_dfg::NodeId,
        tag: &str,
    ) -> Result<Poly, SnaError> {
        let (kept, dropped) = poly.truncate_degree(self.opts.max_degree);
        if dropped.is_zero() {
            return Ok(kept);
        }
        let hull = dropped.eval_interval(|_| Interval::UNIT);
        if hull.rad() == 0.0 {
            return Ok(kept.shift(hull.mid()));
        }
        let sym = table.add_uniform(format!("abs:{node}:{tag}"), self.opts.symbol_bins)?;
        Ok(kept.add(&Poly::affine(hull.mid(), [(sym, hull.rad())])))
    }

    /// Builds the output PDF by term-wise histogram evaluation and
    /// convolution.  Returns `None` for a deterministic (constant) error.
    fn convolve_pdf(
        &self,
        poly: &Poly,
        table: &SymbolTable,
    ) -> Result<Option<Histogram>, SnaError> {
        let opts = OpOptions::default()
            .with_out_bins(self.opts.out_bins)
            .with_deposit(DepositPolicy::Exact);
        let mul_opts = OpOptions::default().with_out_bins(self.opts.out_bins);
        let mut acc: Option<Histogram> = None;
        let mut constant = 0.0;
        for (mono, coeff) in poly.terms() {
            if mono.is_one() {
                constant += coeff;
                continue;
            }
            // Histogram of the monomial: product of per-symbol powers.
            let mut mh: Option<Histogram> = None;
            for (sym, e) in mono.factors() {
                let base = table.info(sym).pdf();
                let powed = if e == 1 { base.clone() } else { base.powi(e)? };
                mh = Some(match mh {
                    None => powed,
                    Some(h) => h.mul_with(&powed, &mul_opts)?,
                });
            }
            let term = mh
                .expect("non-constant monomial has factors")
                .scale(coeff)?;
            acc = Some(match acc {
                None => term,
                Some(h) => h.add_with(&term, &opts)?,
            });
        }
        match acc {
            None => Ok(None),
            Some(h) => {
                if constant != 0.0 {
                    Ok(Some(h.shift(constant)?))
                } else {
                    Ok(Some(h))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_fixp::{monte_carlo_error, MonteCarloOptions, Rounding};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    fn weighted_sum() -> Dfg {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        b.build().unwrap()
    }

    #[test]
    fn linear_error_poly_is_affine_in_noise_symbols() {
        let g = weighted_sum();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let res = SymbolicEngine::default()
            .analyze(&g, &cfg, &ranges)
            .unwrap();
        let err = &res.error_polys[0];
        assert!(err.degree() <= 2, "error poly degree {}", err.degree());
        // Error must not be identically zero and must have bounded range.
        assert!(!err.is_zero());
        let r = &res.reports[0].1;
        assert!(r.support.0 < 0.0 && r.support.1 > 0.0);
    }

    #[test]
    fn symbolic_moments_match_monte_carlo() {
        let g = weighted_sum();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let res = SymbolicEngine::default()
            .analyze(&g, &cfg, &ranges)
            .unwrap();
        let predicted = &res.reports[0].1;
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 60_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        let ratio = predicted.variance / measured.variance;
        assert!(ratio > 0.5 && ratio < 2.0, "variance ratio {ratio}");
        assert!(predicted.support.0 <= measured.min);
        assert!(predicted.support.1 >= measured.max);
    }

    #[test]
    fn truncation_bias_appears_in_the_mean() {
        let g = weighted_sum();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let mut cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        cfg.set_rounding_all(Rounding::Truncate);
        let res = SymbolicEngine::default()
            .analyze(&g, &cfg, &ranges)
            .unwrap();
        assert!(res.reports[0].1.mean < 0.0);
    }

    #[test]
    fn nonlinear_square_keeps_sound_bounds() {
        // y = x², x ∈ [-1, 1]: value poly degree 2, error has symbol
        // products — bounds must still enclose Monte-Carlo errors.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul(x, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let res = SymbolicEngine::default()
            .analyze(&g, &cfg, &ranges)
            .unwrap();
        let predicted = &res.reports[0].1;
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 30_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        assert!(predicted.support.0 <= measured.min + 1e-12);
        assert!(predicted.support.1 >= measured.max - 1e-12);
    }

    #[test]
    fn degree_cap_absorbs_terms_conservatively() {
        // Chain of multiplies: x⁴ would be degree 4; cap at 2.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let x2 = b.mul(x, x);
        let x4 = b.mul(x2, x2);
        b.output("y", x4);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 12).unwrap();
        let capped = SymbolicEngine::new(SymbolicOptions {
            max_degree: 2,
            ..Default::default()
        })
        .analyze(&g, &cfg, &ranges)
        .unwrap();
        let loose = SymbolicEngine::new(SymbolicOptions {
            max_degree: 8,
            ..Default::default()
        })
        .analyze(&g, &cfg, &ranges)
        .unwrap();
        // Capped value poly has low degree.
        assert!(capped.value_polys[0].degree() <= 2);
        // Capped bounds enclose the loose (tighter) ones.
        let (cl, ch) = capped.reports[0].1.support;
        let (ll, lh) = loose.reports[0].1.support;
        assert!(cl <= ll + 1e-12 && ch >= lh - 1e-12);
    }

    #[test]
    fn division_by_constant_is_supported() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.constant(4.0);
        let y = b.div(x, c);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let res = SymbolicEngine::default()
            .analyze(&g, &cfg, &ranges)
            .unwrap();
        assert!(res.reports[0].1.variance > 0.0);
    }

    #[test]
    fn division_by_signal_is_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let q = b.div(x, y);
        b.output("q", q);
        let g = b.build().unwrap();
        let ranges = [iv(0.0, 1.0), iv(1.0, 2.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        assert!(matches!(
            SymbolicEngine::default().analyze(&g, &cfg, &ranges),
            Err(SnaError::UnsupportedOp { .. })
        ));
    }

    #[test]
    fn exact_pdf_matches_convolved_pdf_for_affine_error() {
        let g = weighted_sum();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 8).unwrap();
        let res = SymbolicEngine::new(SymbolicOptions {
            symbol_bins: 8,
            out_bins: 64,
            ..Default::default()
        })
        .analyze(&g, &cfg, &ranges)
        .unwrap();
        let conv = res.reports[0].1.histogram.as_ref().unwrap();
        let exact = res
            .exact_pdf(0, &HistEvalOptions::default().with_out_bins(64))
            .unwrap();
        // Same support and similar shape.
        assert!((conv.support().0 - exact.support().0).abs() < 1e-9);
        assert!((conv.support().1 - exact.support().1).abs() < 1e-9);
        assert!(conv.kolmogorov_distance(&exact) < 0.05);
    }
}
