//! The classical Noise Analysis (NA) baseline and the fast moment model
//! used inside optimization loops.
//!
//! NA treats every rounding site as an independent wide-sense-stationary
//! noise source with a uniform PDF and propagates only *moments* through
//! precomputed LTI gains (Section 3, first category).  The gains depend
//! only on the datapath's constant coefficients — not on word lengths — so
//! [`NaModel::build`] runs the impulse-response analysis once and
//! [`NaModel::evaluate`] is `O(#sources)` per word-length configuration.
//! That asymmetry is what makes noise-constrained word-length search
//! practical.
//!
//! Two effects beyond textbook NA are modelled, both of which bit-true
//! simulation exhibits:
//!
//! * **linear constant offsets** — a rounded additive constant shifts the
//!   output deterministically through its DC gain;
//! * **coefficient rounding** — a rounded multiplier coefficient `c+ec`
//!   produces the *signal-dependent* error `ec·x` at the multiplier (and
//!   analogously for constant divisors), modelled as a bounded source with
//!   mean `ec·mid(x)` and half-width `|ec|·rad(x)` injected at the
//!   multiplier's site.

use sna_dfg::{Dfg, ImpulseGains, LtiOptions, NodeId, Op, OutputGain, RangeOptions};
use sna_fixp::WlConfig;
use sna_interval::Interval;

use crate::sources::{IntroducesNoise, NoiseSource};
use crate::{NoiseReport, SnaError};

/// How a rounded constant perturbs a consumer site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CoeffKind {
    /// `(c+ec)·x − c·x = ec·x` at a multiplier.
    MulFactor,
    /// `x/(c+ec) − x/c = x·(1/(c+ec) − 1/c)` at a divider.
    DivDenominator,
}

/// A site where a rounded constant interacts bilinearly with a signal.
///
/// Exposed so incremental evaluators can recompute exactly the pseudo
/// source affected by one constant's word-length change instead of
/// re-collecting every source.
#[derive(Clone, Copy, Debug)]
pub struct CoeffSite {
    const_node: NodeId,
    constant: f64,
    /// The multiplier/divider whose gains the error propagates through.
    site: NodeId,
    kind: CoeffKind,
    /// Uniform-signal model of the other operand: midpoint and radius.
    other_mid: f64,
    other_rad: f64,
}

impl CoeffSite {
    /// The constant node whose rounding drives this pseudo source.
    pub fn const_node(&self) -> NodeId {
        self.const_node
    }

    /// The multiplier/divider through whose gains the error propagates.
    pub fn site(&self) -> NodeId {
        self.site
    }

    /// The effective coefficient perturbation under quantizer `q`:
    /// `ec` for a multiplier factor, `1/(c+ec) − 1/c` for a divisor.
    pub fn delta(&self, q: &sna_fixp::Quantizer) -> f64 {
        match self.kind {
            CoeffKind::MulFactor => q.quantize(self.constant) - self.constant,
            CoeffKind::DivDenominator => {
                let rounded = q.quantize(self.constant);
                if rounded == 0.0 || self.constant == 0.0 {
                    0.0
                } else {
                    1.0 / rounded - 1.0 / self.constant
                }
            }
        }
    }

    /// The pseudo source injected at [`CoeffSite::site`] for perturbation
    /// `delta`: mean `delta·mid(x)`, half-width `|delta|·rad(x)`.
    pub fn source_for_delta(&self, delta: f64) -> NoiseSource {
        NoiseSource {
            node: self.site,
            offset: delta * self.other_mid,
            half_width: delta.abs() * self.other_rad,
        }
    }
}

/// Outcome counters of [`NaModel::patched`]: how each source's gains
/// were obtained.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GainPatch {
    /// Sources whose gains were re-simulated (forward impulse analysis).
    pub rebuilt: usize,
    /// Sources whose gains were *derived* from neighbouring stored
    /// response sequences by the consumer recurrence — no simulation.
    pub derived: usize,
    /// Sources whose gains were cloned from the donor unchanged.
    pub reused: usize,
}

/// Budget (in `f64`s) for the stored impulse-response sequences of one
/// model. Within it, coefficient swaps can derive changed gains by the
/// consumer recurrence instead of re-simulating; past it, later sources
/// simply fall back to forward simulation when patched.
const MAX_RESPONSE_FLOATS: usize = 1 << 18;

/// Precomputed noise-transfer gains for every potential noise source of a
/// linear datapath, plus the coefficient-site inventory.
#[derive(Clone, Debug)]
pub struct NaModel {
    /// `gains[i]` = impulse gains from node `i`, for analyzed nodes.
    gains: Vec<Option<ImpulseGains>>,
    /// `responses[i][k]` = the raw impulse-response sequence from node
    /// `i` to output `k`, kept while the model is under
    /// [`MAX_RESPONSE_FLOATS`] — the material incremental coefficient
    /// updates recombine.
    responses: Vec<Option<Vec<Vec<f64>>>>,
    output_names: Vec<String>,
    coeff_sites: Vec<CoeffSite>,
}

impl NaModel {
    /// Runs the one-off analyses: impulse gains from every potential
    /// source, signal ranges for the coefficient-site inventory.
    ///
    /// # Errors
    ///
    /// * [`SnaError::Dfg`] wrapping `NonlinearNode` for nonlinear graphs,
    ///   `UnstableImpulse` for unstable feedback, or range failures.
    pub fn build(
        dfg: &Dfg,
        input_ranges: &[Interval],
        opts: &LtiOptions,
    ) -> Result<Self, SnaError> {
        dfg.require_linear()?;
        let ranges = dfg.ranges_auto(input_ranges, &RangeOptions::default(), opts)?;
        Self::build_with_ranges(dfg, &ranges, opts)
    }

    /// [`NaModel::build`] over precomputed per-node ranges — the path for
    /// callers (a [`crate::Session`], an optimizer) that already ran range
    /// analysis and must not pay for (or drift from) a second run.  With
    /// `node_ranges` equal to `ranges_auto`'s output this is bit-identical
    /// to [`NaModel::build`].
    ///
    /// # Errors
    ///
    /// Same as [`NaModel::build`], minus the range-analysis failures.
    pub fn build_with_ranges(
        dfg: &Dfg,
        node_ranges: &[Interval],
        opts: &LtiOptions,
    ) -> Result<Self, SnaError> {
        dfg.require_linear()?;
        let mut gains = Vec::with_capacity(dfg.len());
        let mut responses = Vec::with_capacity(dfg.len());
        let mut stored_floats = 0usize;
        for (id, node) in dfg.nodes() {
            if Self::analyzed(node.op()) {
                let (g, seqs) = dfg.impulse_response(id, opts)?;
                gains.push(Some(g));
                let floats: usize = seqs.iter().map(Vec::len).sum();
                if stored_floats + floats <= MAX_RESPONSE_FLOATS {
                    stored_floats += floats;
                    responses.push(Some(seqs));
                } else {
                    responses.push(None);
                }
            } else {
                gains.push(None);
                responses.push(None);
            }
        }
        Ok(NaModel {
            gains,
            responses,
            output_names: dfg.outputs().iter().map(|(n, _)| n.clone()).collect(),
            coeff_sites: Self::collect_coeff_sites(dfg, node_ranges),
        })
    }

    /// Whether a node's op gets impulse gains.
    fn analyzed(op: Op) -> bool {
        op.is_arithmetic() || matches!(op, Op::Input(_) | Op::Const(_) | Op::Delay)
    }

    /// Inventory of constant-coefficient interaction sites.
    fn collect_coeff_sites(dfg: &Dfg, ranges: &[Interval]) -> Vec<CoeffSite> {
        let mut coeff_sites = Vec::new();
        for (site, node) in dfg.nodes() {
            match node.op() {
                Op::Mul => {
                    for (slot, &arg) in node.args().iter().enumerate() {
                        if let Op::Const(c) = dfg.node(arg).op() {
                            let other = node.args()[1 - slot];
                            let r = ranges[other.index()];
                            coeff_sites.push(CoeffSite {
                                const_node: arg,
                                constant: c,
                                site,
                                kind: CoeffKind::MulFactor,
                                other_mid: r.mid(),
                                other_rad: r.rad(),
                            });
                        }
                    }
                }
                Op::Div => {
                    if let Op::Const(c) = dfg.node(node.args()[1]).op() {
                        let num = node.args()[0];
                        let r = ranges[num.index()];
                        coeff_sites.push(CoeffSite {
                            const_node: node.args()[1],
                            constant: c,
                            site,
                            kind: CoeffKind::DivDenominator,
                            other_mid: r.mid(),
                            other_rad: r.rad(),
                        });
                    }
                }
                _ => {}
            }
        }
        coeff_sites
    }

    /// Rebuilds the model for a coefficient-swapped copy of the graph it
    /// was built from, recomputing impulse gains only where the swap
    /// could have changed them (`dirty[i]` true) and cloning the rest —
    /// the gain-level reuse behind [`crate::Session::with_coefficients`].
    ///
    /// Dirty sources are recomputed two ways, cheapest first:
    ///
    /// 1. **Consumer recurrence** — for a linear graph, the response from
    ///    node `i` decomposes over its consumers:
    ///    `h_i[t] = Σ_comb w(j)·h_j[t] + Σ_delay h_d[t−1] (+ δ[t] if i is
    ///    an output)`, where `w(j)` is the consumer's local coefficient
    ///    (±1 for add/sub/neg, `c` for a constant multiplier, `1/c` for a
    ///    constant divisor).  When every consumer edge has such a
    ///    constant weight and the consumers' response *sequences* are
    ///    stored, the dirty source's new response is recombined in
    ///    `O(T·fan-out)` flops — no simulation.  This covers the
    ///    dominant case (the delay chain feeding a retuned tap).
    /// 2. **Forward simulation** — everything else (the changed constant
    ///    itself, signal-dependent consumer weights, missing sequences,
    ///    cyclic dirty regions) re-runs the impulse analysis.
    ///
    /// `dfg` must have the same shape as the original graph (same nodes,
    /// edges, outputs) with only `Const` values differing, and `dirty`
    /// must cover every source whose transfer path crosses a changed
    /// local coefficient (see `Session` for the sound over-approximation).
    /// The coefficient-site inventory is always rebuilt from
    /// `node_ranges`.  Recurrence-derived aggregates match forward
    /// simulation to float accuracy (well inside the 1e-12 equivalence
    /// bound), and on exactly-decaying responses (feed-forward graphs)
    /// they are exact.
    ///
    /// # Errors
    ///
    /// Same as [`NaModel::build_with_ranges`].
    pub fn patched(
        &self,
        dfg: &Dfg,
        node_ranges: &[Interval],
        opts: &LtiOptions,
        dirty: &[bool],
    ) -> Result<(Self, GainPatch), SnaError> {
        dfg.require_linear()?;
        let n = dfg.len();
        let n_out = dfg.outputs().len();
        let mut patch = GainPatch::default();

        // Consumer edges with constant weights, and per-source
        // recurrence eligibility.
        let (edges, eligible) = consumer_edges(dfg);
        // Which outputs a node feeds *directly* (the δ[t] term).
        let mut output_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, (_, id)) in dfg.outputs().iter().enumerate() {
            output_of[id.index()].push(k);
        }

        // Seed the new response store with the clean sources' sequences,
        // keeping the same storage budget the builder enforces (patched
        // models live long in shape-tier caches).
        let mut responses: Vec<Option<Vec<Vec<f64>>>> = (0..n)
            .map(|i| {
                let clean = !dirty.get(i).copied().unwrap_or(true);
                if clean {
                    self.responses[i].clone()
                } else {
                    None
                }
            })
            .collect();
        let mut stored_floats: usize = responses
            .iter()
            .flatten()
            .flat_map(|seqs| seqs.iter().map(Vec::len))
            .sum();
        let store =
            |slot: &mut Option<Vec<Vec<f64>>>, seqs: Vec<Vec<f64>>, stored_floats: &mut usize| {
                let floats: usize = seqs.iter().map(Vec::len).sum();
                if *stored_floats + floats <= MAX_RESPONSE_FLOATS {
                    *stored_floats += floats;
                    *slot = Some(seqs);
                }
            };
        let mut gains: Vec<Option<ImpulseGains>> = (0..n)
            .map(|i| {
                let clean = !dirty.get(i).copied().unwrap_or(true);
                if clean {
                    self.gains[i].clone()
                } else {
                    None
                }
            })
            .collect();

        // Recurrence passes: derive every dirty source whose consumers'
        // sequences are all available, repeating until a pass makes no
        // progress (cyclic or ineligible leftovers fall through to
        // simulation).
        let analyzed: Vec<bool> = dfg.nodes().map(|(_, nd)| Self::analyzed(nd.op())).collect();
        loop {
            let mut progressed = false;
            for i in 0..n {
                if gains[i].is_some() || !analyzed[i] || !eligible[i] {
                    continue;
                }
                let ready = edges[i]
                    .iter()
                    .all(|(j, _)| responses[*j as usize].is_some());
                if !ready {
                    continue;
                }
                let mut seqs: Vec<Vec<f64>> = Vec::with_capacity(n_out);
                let mut per_output = Vec::with_capacity(n_out);
                for k in 0..n_out {
                    let mut len = if output_of[i].contains(&k) { 1 } else { 0 };
                    for (j, w) in &edges[i] {
                        let consumer = responses[*j as usize].as_ref().expect("checked ready");
                        let l = consumer[k].len() + usize::from(matches!(w, EdgeW::Delayed));
                        len = len.max(l);
                    }
                    let mut h = vec![0.0; len];
                    for (j, w) in &edges[i] {
                        let consumer = responses[*j as usize].as_ref().expect("checked ready");
                        match w {
                            EdgeW::Comb(c) => {
                                for (t, &v) in consumer[k].iter().enumerate() {
                                    h[t] += c * v;
                                }
                            }
                            EdgeW::Delayed => {
                                for (t, &v) in consumer[k].iter().enumerate() {
                                    h[t + 1] += v;
                                }
                            }
                        }
                    }
                    if output_of[i].contains(&k) {
                        h[0] += 1.0;
                    }
                    let mut g = sna_dfg::OutputGain::default();
                    for &v in &h {
                        g.l1 += v.abs();
                        g.l2_squared += v * v;
                        g.dc += v;
                    }
                    per_output.push(g);
                    seqs.push(h);
                }
                gains[i] = Some(ImpulseGains {
                    source: NodeId::from_index(i),
                    per_output,
                });
                store(&mut responses[i], seqs, &mut stored_floats);
                patch.derived += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }

        // Whatever the recurrence could not reach re-simulates.
        for i in 0..n {
            if !analyzed[i] {
                continue;
            }
            if gains[i].is_none() {
                let (g, seqs) = dfg.impulse_response(NodeId::from_index(i), opts)?;
                gains[i] = Some(g);
                store(&mut responses[i], seqs, &mut stored_floats);
                patch.rebuilt += 1;
            }
        }
        patch.reused = analyzed.iter().filter(|&&a| a).count() - patch.rebuilt - patch.derived;

        let model = NaModel {
            gains,
            responses,
            output_names: dfg.outputs().iter().map(|(nm, _)| nm.clone()).collect(),
            coeff_sites: Self::collect_coeff_sites(dfg, node_ranges),
        };
        Ok((model, patch))
    }

    /// Names of the outputs the gains refer to.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// Number of outputs the per-node gains refer to.
    pub fn n_outputs(&self) -> usize {
        self.output_names.len()
    }

    /// The gains from one node, when it was analyzed.
    pub fn gains_from(&self, node: NodeId) -> Option<&ImpulseGains> {
        self.gains.get(node.index()).and_then(|g| g.as_ref())
    }

    /// The constant-coefficient interaction sites, in inventory order —
    /// the per-node terms incremental evaluators key their updates on.
    pub fn coeff_sites(&self) -> &[CoeffSite] {
        &self.coeff_sites
    }

    /// The storage budget (in `f64`s) for a model's impulse-response
    /// sequences. Sources whose sequences did not fit fall back to
    /// forward simulation when the model is [`NaModel::patched`].
    pub const RESPONSE_FLOAT_BUDGET: usize = MAX_RESPONSE_FLOATS;

    /// Total `f64`s of impulse-response sequences this model stores
    /// (always within [`NaModel::RESPONSE_FLOAT_BUDGET`]).
    pub fn stored_response_floats(&self) -> usize {
        self.responses
            .iter()
            .flatten()
            .flat_map(|seqs| seqs.iter().map(Vec::len))
            .sum()
    }

    /// Analyzed sources whose response sequences were *dropped* by the
    /// storage budget — each will re-simulate instead of recombining
    /// when a coefficient swap dirties it.
    pub fn budgeted_out_sources(&self) -> usize {
        self.gains
            .iter()
            .zip(&self.responses)
            .filter(|(g, r)| g.is_some() && r.is_none())
            .count()
    }

    /// All *random* bounded sources under `config`, each attached to the
    /// node whose gains it propagates through: the precision-losing
    /// quantization sites plus the coefficient pseudo-sources.
    pub fn shaped_sources(&self, dfg: &Dfg, config: &WlConfig) -> Vec<NoiseSource> {
        let mut out = Vec::new();
        for (id, node) in dfg.nodes() {
            if matches!(node.op(), Op::Const(_)) {
                continue;
            }
            if self.gains[id.index()].is_none() || !dfg.introduces_noise(id, config) {
                continue;
            }
            out.push(NoiseSource::for_quantizer(id, config.quantizer(id)));
        }
        for cs in &self.coeff_sites {
            let delta = cs.delta(config.quantizer(cs.const_node));
            if delta == 0.0 {
                continue;
            }
            out.push(cs.source_for_delta(delta));
        }
        out
    }

    /// Deterministic constant offsets under `config`, attached to the
    /// constant node whose (linear) gains they propagate through.
    pub fn deterministic_offsets(&self, dfg: &Dfg, config: &WlConfig) -> Vec<(NodeId, f64)> {
        let mut out = Vec::new();
        for (id, node) in dfg.nodes() {
            if let Op::Const(c) = node.op() {
                if self.gains[id.index()].is_none() {
                    continue;
                }
                let offset = config.quantizer(id).quantize(c) - c;
                if offset != 0.0 {
                    out.push((id, offset));
                }
            }
        }
        out
    }

    /// Evaluates output noise under a word-length configuration:
    /// moments-only reports (mean, variance, worst-case bounds), one per
    /// output.
    pub fn evaluate(&self, dfg: &Dfg, config: &WlConfig) -> Vec<(String, NoiseReport)> {
        let n_out = self.output_names.len();
        let mut mean = vec![0.0; n_out];
        let mut variance = vec![0.0; n_out];
        let mut lo = vec![0.0; n_out];
        let mut hi = vec![0.0; n_out];
        for src in self.shaped_sources(dfg, config) {
            let g = self.gains[src.node.index()]
                .as_ref()
                .expect("shaped sources refer to analyzed nodes");
            for k in 0..n_out {
                let og = g.per_output[k];
                // Per-tap extremal split: P = Σ max(h,0), N = Σ min(h,0).
                let p = 0.5 * (og.l1 + og.dc);
                let n = 0.5 * (og.dc - og.l1);
                let a = src.offset - src.half_width;
                let b = src.offset + src.half_width;
                mean[k] += src.offset * og.dc;
                variance[k] += src.variance() * og.l2_squared;
                lo[k] += a * p + b * n;
                hi[k] += b * p + a * n;
            }
        }
        for (node, offset) in self.deterministic_offsets(dfg, config) {
            let g = self.gains[node.index()]
                .as_ref()
                .expect("offsets refer to analyzed nodes");
            for k in 0..n_out {
                let contrib = offset * g.per_output[k].dc;
                mean[k] += contrib;
                lo[k] += contrib;
                hi[k] += contrib;
            }
        }
        self.output_names
            .iter()
            .enumerate()
            .map(|(k, name)| {
                (
                    name.clone(),
                    NoiseReport::from_moments(mean[k], variance[k], (lo[k], hi[k])),
                )
            })
            .collect()
    }

    /// Total output noise power (`Σ power` across outputs) — the scalar the
    /// optimizer constrains.
    pub fn total_power(&self, dfg: &Dfg, config: &WlConfig) -> f64 {
        self.evaluate(dfg, config)
            .iter()
            .map(|(_, r)| r.power)
            .sum()
    }
}

/// One consumer edge of the impulse-response recurrence.
#[derive(Clone, Copy, Debug)]
enum EdgeW {
    /// Combinational edge with a constant weight (`±1`, `c`, `1/c`).
    Comb(f64),
    /// The sequential edge into a delay: contributes the consumer's
    /// response shifted one step later.
    Delayed,
}

/// Builds, per node, the consumer edges with constant recurrence weights,
/// plus a per-node eligibility flag (`false` where some consumer edge's
/// weight is signal- or value-trajectory-dependent: the signal operand is
/// not a literal constant, or the node is a divisor — whose perturbation
/// is a secant, not a linear coefficient).
fn consumer_edges(dfg: &Dfg) -> (Vec<Vec<(u32, EdgeW)>>, Vec<bool>) {
    let n = dfg.len();
    let mut edges: Vec<Vec<(u32, EdgeW)>> = vec![Vec::new(); n];
    let mut eligible = vec![true; n];
    for (j, node) in dfg.nodes() {
        let ji = j.index() as u32;
        let args = node.args();
        match node.op() {
            Op::Add => {
                for &a in args {
                    edges[a.index()].push((ji, EdgeW::Comb(1.0)));
                }
            }
            Op::Sub => {
                edges[args[0].index()].push((ji, EdgeW::Comb(1.0)));
                edges[args[1].index()].push((ji, EdgeW::Comb(-1.0)));
            }
            Op::Neg => edges[args[0].index()].push((ji, EdgeW::Comb(-1.0))),
            Op::Delay => edges[args[0].index()].push((ji, EdgeW::Delayed)),
            Op::Mul => {
                for (slot, &a) in args.iter().enumerate() {
                    let other = args[1 - slot];
                    if let Op::Const(c) = dfg.node(other).op() {
                        edges[a.index()].push((ji, EdgeW::Comb(c)));
                    } else {
                        // The edge weight is the other operand's value
                        // trajectory — not a constant.
                        eligible[a.index()] = false;
                    }
                }
            }
            Op::Div => {
                if let Op::Const(c) = dfg.node(args[1]).op() {
                    if c != 0.0 {
                        edges[args[0].index()].push((ji, EdgeW::Comb(1.0 / c)));
                    } else {
                        eligible[args[0].index()] = false;
                    }
                } else {
                    eligible[args[0].index()] = false;
                }
                // A divisor perturbation acts through a secant of 1/x.
                eligible[args[1].index()] = false;
            }
            Op::Input(_) | Op::Const(_) => {}
        }
    }
    (edges, eligible)
}

// ----------------------------------------------------------------------
// Artifact-store serialization
// ----------------------------------------------------------------------

impl NaModel {
    /// Encodes the model for the persistent artifact store (see
    /// `sna_store::wire` for the encoding rules). Gains, response
    /// sequences and coefficient sites all travel as exact `f64` bit
    /// patterns, so a loaded model evaluates **bit-identically** to the
    /// one that was stored.
    #[must_use]
    pub fn to_wire(&self) -> Vec<u8> {
        use sna_store::WireWriter;
        let mut w = WireWriter::new();
        w.len(self.output_names.len());
        for name in &self.output_names {
            w.str(name);
        }
        w.len(self.gains.len());
        for g in &self.gains {
            match g {
                None => w.u8(0),
                Some(g) => {
                    w.u8(1);
                    w.u64(g.source.index() as u64);
                    w.len(g.per_output.len());
                    for og in &g.per_output {
                        w.f64(og.l1);
                        w.f64(og.l2_squared);
                        w.f64(og.dc);
                    }
                }
            }
        }
        w.len(self.responses.len());
        for r in &self.responses {
            match r {
                None => w.u8(0),
                Some(seqs) => {
                    w.u8(1);
                    w.len(seqs.len());
                    for seq in seqs {
                        w.len(seq.len());
                        for &v in seq {
                            w.f64(v);
                        }
                    }
                }
            }
        }
        w.len(self.coeff_sites.len());
        for cs in &self.coeff_sites {
            w.u64(cs.const_node.index() as u64);
            w.f64(cs.constant);
            w.u64(cs.site.index() as u64);
            w.u8(match cs.kind {
                CoeffKind::MulFactor => 0,
                CoeffKind::DivDenominator => 1,
            });
            w.f64(cs.other_mid);
            w.f64(cs.other_rad);
        }
        w.finish()
    }

    /// Decodes a model written by [`NaModel::to_wire`], validating every
    /// node reference against the graph it will be attached to
    /// (`n_nodes` nodes, `n_outputs` declared outputs).
    ///
    /// # Errors
    ///
    /// `sna_store::WireError` on any malformed, truncated or
    /// out-of-bounds input — never panics.
    pub fn from_wire(
        bytes: &[u8],
        n_nodes: usize,
        n_outputs: usize,
    ) -> Result<NaModel, sna_store::WireError> {
        use sna_store::{WireError, WireReader};
        let node = |raw: u64| -> Result<NodeId, WireError> {
            let i = usize::try_from(raw).unwrap_or(usize::MAX);
            if i < n_nodes {
                Ok(NodeId::from_index(i))
            } else {
                Err(WireError::new(format!(
                    "node reference {raw} out of range ({n_nodes})"
                )))
            }
        };
        let mut r = WireReader::new(bytes);
        let count = r.read_count(8)?;
        if count != n_outputs {
            return Err(WireError::new(format!(
                "model names {count} output(s), graph declares {n_outputs}"
            )));
        }
        let mut output_names = Vec::with_capacity(count);
        for _ in 0..count {
            output_names.push(r.str()?);
        }
        let count = r.read_count(1)?;
        if count != n_nodes {
            return Err(WireError::new(format!(
                "model covers {count} node(s), graph has {n_nodes}"
            )));
        }
        let mut gains = Vec::with_capacity(count);
        for _ in 0..count {
            gains.push(match r.u8()? {
                0 => None,
                1 => {
                    let source = node(r.u64()?)?;
                    let n = r.read_count(24)?;
                    if n != n_outputs {
                        return Err(WireError::new("per-output gain count mismatch"));
                    }
                    let mut per_output = Vec::with_capacity(n);
                    for _ in 0..n {
                        per_output.push(OutputGain {
                            l1: r.f64()?,
                            l2_squared: r.f64()?,
                            dc: r.f64()?,
                        });
                    }
                    Some(ImpulseGains { source, per_output })
                }
                f => return Err(WireError::new(format!("bad gains flag {f}"))),
            });
        }
        let count = r.read_count(1)?;
        if count != n_nodes {
            return Err(WireError::new("response table length mismatch"));
        }
        let mut responses = Vec::with_capacity(count);
        let mut stored_floats = 0usize;
        for _ in 0..count {
            responses.push(match r.u8()? {
                0 => None,
                1 => {
                    let n = r.read_count(8)?;
                    if n != n_outputs {
                        return Err(WireError::new("response sequence count mismatch"));
                    }
                    let mut seqs = Vec::with_capacity(n);
                    for _ in 0..n {
                        let len = r.read_count(8)?;
                        stored_floats += len;
                        if stored_floats > MAX_RESPONSE_FLOATS {
                            return Err(WireError::new("response sequences exceed budget"));
                        }
                        let mut seq = Vec::with_capacity(len);
                        for _ in 0..len {
                            seq.push(r.f64()?);
                        }
                        seqs.push(seq);
                    }
                    Some(seqs)
                }
                f => return Err(WireError::new(format!("bad response flag {f}"))),
            });
        }
        let count = r.read_count(34)?;
        let mut coeff_sites = Vec::with_capacity(count);
        for _ in 0..count {
            let const_node = node(r.u64()?)?;
            let constant = r.f64()?;
            let site = node(r.u64()?)?;
            let kind = match r.u8()? {
                0 => CoeffKind::MulFactor,
                1 => CoeffKind::DivDenominator,
                k => return Err(WireError::new(format!("bad coeff kind {k}"))),
            };
            coeff_sites.push(CoeffSite {
                const_node,
                constant,
                site,
                kind,
                other_mid: r.f64()?,
                other_rad: r.f64()?,
            });
        }
        r.expect_end()?;
        Ok(NaModel {
            gains,
            responses,
            output_names,
            coeff_sites,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_fixp::{monte_carlo_error, MonteCarloOptions};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn combinational_na_matches_monte_carlo() {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let predicted = &model.evaluate(&g, &cfg)[0].1;
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 50_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        let ratio = predicted.variance / measured.variance;
        assert!(ratio > 0.5 && ratio < 2.0, "variance ratio {ratio}");
        assert!(
            predicted.support.0 <= measured.min,
            "lo: predicted {} measured {}",
            predicted.support.0,
            measured.min
        );
        assert!(
            predicted.support.1 >= measured.max,
            "hi: predicted {} measured {}",
            predicted.support.1,
            measured.max
        );
    }

    #[test]
    fn coefficient_rounding_is_captured() {
        // y = 0.3·x with a *coarse* constant: the dominant error is ec·x.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul_const(0.3, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 6).unwrap();
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let predicted = &model.evaluate(&g, &cfg)[0].1;
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 40_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        assert!(predicted.support.0 <= measured.min);
        assert!(predicted.support.1 >= measured.max);
        let ratio = predicted.variance / measured.variance;
        assert!(ratio > 0.4 && ratio < 2.5, "variance ratio {ratio}");
    }

    #[test]
    fn iir_feedback_amplifies_noise() {
        let mk = |pole: f64| {
            let mut b = DfgBuilder::new();
            let x = b.input("x");
            let fb = b.delay_placeholder();
            let t = b.mul_const(pole, fb);
            let y = b.add(x, t);
            b.bind_delay(fb, y).unwrap();
            b.output("y", y);
            b.build().unwrap()
        };
        let sharp = mk(0.9);
        let soft = mk(0.1);
        let ranges = [iv(-0.05, 0.05)];
        let cfg_sharp = WlConfig::from_ranges(&sharp, &ranges, 12).unwrap();
        let cfg_soft = WlConfig::from_ranges(&soft, &ranges, 12).unwrap();
        let m_sharp = NaModel::build(&sharp, &ranges, &LtiOptions::default()).unwrap();
        let m_soft = NaModel::build(&soft, &ranges, &LtiOptions::default()).unwrap();
        let v_sharp = m_sharp.evaluate(&sharp, &cfg_sharp)[0].1.variance;
        let v_soft = m_soft.evaluate(&soft, &cfg_soft)[0].1.variance;
        assert!(
            v_sharp > 2.0 * v_soft,
            "sharp pole must amplify noise: {v_sharp} vs {v_soft}"
        );
    }

    #[test]
    fn evaluate_is_cheap_after_build() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(0.5, x);
        let y = b.add(t, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let mut last = f64::INFINITY;
        for w in (6..=24).rev() {
            let cfg = WlConfig::from_ranges(&g, &ranges, w).unwrap();
            let p = model.total_power(&g, &cfg);
            if w < 24 {
                assert!(p > last, "power must grow as w shrinks (w={w})");
            }
            last = p;
        }
    }

    #[test]
    fn additive_constants_shift_the_output_deterministically() {
        // y = x + 0.3 at a very coarse format: the rounded 0.3 biases y.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.constant(0.3);
        let y = b.add(x, c);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 5).unwrap();
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let predicted = &model.evaluate(&g, &cfg)[0].1;
        // Constant offset: 0.3 in Q0.4 (the tight range-derived format)
        // rounds to 5/16 = 0.3125, a +0.0125 deterministic bias.
        assert!(
            (predicted.mean - 0.0125).abs() < 1e-9,
            "expected the +0.0125 constant bias, got {}",
            predicted.mean
        );
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 20_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        assert!((predicted.mean - measured.mean).abs() < 0.02);
    }

    #[test]
    fn nonlinear_graph_is_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let sq = b.mul(x, x);
        b.output("y", sq);
        let g = b.build().unwrap();
        assert!(matches!(
            NaModel::build(&g, &[iv(-1.0, 1.0)], &LtiOptions::default()),
            Err(SnaError::Dfg(_))
        ));
    }

    #[test]
    fn wire_round_trip_evaluates_bit_identically() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let fb = b.delay_placeholder();
        let t = b.mul_const(0.5, fb);
        let y = b.add(x, t);
        b.bind_delay(fb, y).unwrap();
        let scaled = b.mul_const(0.3, y);
        b.output("y", scaled);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let bytes = model.to_wire();
        let decoded = NaModel::from_wire(&bytes, g.len(), g.outputs().len()).unwrap();
        assert_eq!(decoded.to_wire(), bytes);
        let cfg = WlConfig::from_ranges(&g, &ranges, 9).unwrap();
        let a = &model.evaluate(&g, &cfg)[0].1;
        let b = &decoded.evaluate(&g, &cfg)[0].1;
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.variance.to_bits(), b.variance.to_bits());
        assert_eq!(a.support.0.to_bits(), b.support.0.to_bits());
    }

    #[test]
    fn wire_rejects_damage_and_wrong_shape() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(0.25, x);
        b.output("y", t);
        let g = b.build().unwrap();
        let model = NaModel::build(&g, &[iv(-1.0, 1.0)], &LtiOptions::default()).unwrap();
        let good = model.to_wire();
        // A different node count must be rejected outright.
        assert!(NaModel::from_wire(&good, g.len() + 1, g.outputs().len()).is_err());
        assert!(NaModel::from_wire(&good, g.len(), g.outputs().len() + 1).is_err());
        for cut in 0..good.len() {
            assert!(
                NaModel::from_wire(&good[..cut], g.len(), g.outputs().len()).is_err(),
                "cut at {cut}"
            );
        }
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x5A;
            // may err, must not panic
            let _ = NaModel::from_wire(&bad, g.len(), g.outputs().len());
        }
    }
}
