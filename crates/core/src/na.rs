//! The classical Noise Analysis (NA) baseline and the fast moment model
//! used inside optimization loops.
//!
//! NA treats every rounding site as an independent wide-sense-stationary
//! noise source with a uniform PDF and propagates only *moments* through
//! precomputed LTI gains (Section 3, first category).  The gains depend
//! only on the datapath's constant coefficients — not on word lengths — so
//! [`NaModel::build`] runs the impulse-response analysis once and
//! [`NaModel::evaluate`] is `O(#sources)` per word-length configuration.
//! That asymmetry is what makes noise-constrained word-length search
//! practical.
//!
//! Two effects beyond textbook NA are modelled, both of which bit-true
//! simulation exhibits:
//!
//! * **linear constant offsets** — a rounded additive constant shifts the
//!   output deterministically through its DC gain;
//! * **coefficient rounding** — a rounded multiplier coefficient `c+ec`
//!   produces the *signal-dependent* error `ec·x` at the multiplier (and
//!   analogously for constant divisors), modelled as a bounded source with
//!   mean `ec·mid(x)` and half-width `|ec|·rad(x)` injected at the
//!   multiplier's site.

use sna_dfg::{Dfg, ImpulseGains, LtiOptions, NodeId, Op, RangeOptions};
use sna_fixp::WlConfig;
use sna_interval::Interval;

use crate::sources::{IntroducesNoise, NoiseSource};
use crate::{NoiseReport, SnaError};

/// How a rounded constant perturbs a consumer site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CoeffKind {
    /// `(c+ec)·x − c·x = ec·x` at a multiplier.
    MulFactor,
    /// `x/(c+ec) − x/c = x·(1/(c+ec) − 1/c)` at a divider.
    DivDenominator,
}

/// A site where a rounded constant interacts bilinearly with a signal.
///
/// Exposed so incremental evaluators can recompute exactly the pseudo
/// source affected by one constant's word-length change instead of
/// re-collecting every source.
#[derive(Clone, Copy, Debug)]
pub struct CoeffSite {
    const_node: NodeId,
    constant: f64,
    /// The multiplier/divider whose gains the error propagates through.
    site: NodeId,
    kind: CoeffKind,
    /// Uniform-signal model of the other operand: midpoint and radius.
    other_mid: f64,
    other_rad: f64,
}

impl CoeffSite {
    /// The constant node whose rounding drives this pseudo source.
    pub fn const_node(&self) -> NodeId {
        self.const_node
    }

    /// The multiplier/divider through whose gains the error propagates.
    pub fn site(&self) -> NodeId {
        self.site
    }

    /// The effective coefficient perturbation under quantizer `q`:
    /// `ec` for a multiplier factor, `1/(c+ec) − 1/c` for a divisor.
    pub fn delta(&self, q: &sna_fixp::Quantizer) -> f64 {
        match self.kind {
            CoeffKind::MulFactor => q.quantize(self.constant) - self.constant,
            CoeffKind::DivDenominator => {
                let rounded = q.quantize(self.constant);
                if rounded == 0.0 || self.constant == 0.0 {
                    0.0
                } else {
                    1.0 / rounded - 1.0 / self.constant
                }
            }
        }
    }

    /// The pseudo source injected at [`CoeffSite::site`] for perturbation
    /// `delta`: mean `delta·mid(x)`, half-width `|delta|·rad(x)`.
    pub fn source_for_delta(&self, delta: f64) -> NoiseSource {
        NoiseSource {
            node: self.site,
            offset: delta * self.other_mid,
            half_width: delta.abs() * self.other_rad,
        }
    }
}

/// Precomputed noise-transfer gains for every potential noise source of a
/// linear datapath, plus the coefficient-site inventory.
#[derive(Clone, Debug)]
pub struct NaModel {
    /// `gains[i]` = impulse gains from node `i`, for analyzed nodes.
    gains: Vec<Option<ImpulseGains>>,
    output_names: Vec<String>,
    coeff_sites: Vec<CoeffSite>,
}

impl NaModel {
    /// Runs the one-off analyses: impulse gains from every potential
    /// source, signal ranges for the coefficient-site inventory.
    ///
    /// # Errors
    ///
    /// * [`SnaError::Dfg`] wrapping `NonlinearNode` for nonlinear graphs,
    ///   `UnstableImpulse` for unstable feedback, or range failures.
    pub fn build(
        dfg: &Dfg,
        input_ranges: &[Interval],
        opts: &LtiOptions,
    ) -> Result<Self, SnaError> {
        dfg.require_linear()?;
        let ranges = dfg.ranges_auto(input_ranges, &RangeOptions::default(), opts)?;
        let mut gains = Vec::with_capacity(dfg.len());
        for (id, node) in dfg.nodes() {
            let relevant = node.op().is_arithmetic()
                || matches!(node.op(), Op::Input(_) | Op::Const(_) | Op::Delay);
            if relevant {
                gains.push(Some(dfg.impulse_gains(id, opts)?));
            } else {
                gains.push(None);
            }
        }
        // Inventory of constant-coefficient interaction sites.
        let mut coeff_sites = Vec::new();
        for (site, node) in dfg.nodes() {
            match node.op() {
                Op::Mul => {
                    for (slot, &arg) in node.args().iter().enumerate() {
                        if let Op::Const(c) = dfg.node(arg).op() {
                            let other = node.args()[1 - slot];
                            let r = ranges[other.index()];
                            coeff_sites.push(CoeffSite {
                                const_node: arg,
                                constant: c,
                                site,
                                kind: CoeffKind::MulFactor,
                                other_mid: r.mid(),
                                other_rad: r.rad(),
                            });
                        }
                    }
                }
                Op::Div => {
                    if let Op::Const(c) = dfg.node(node.args()[1]).op() {
                        let num = node.args()[0];
                        let r = ranges[num.index()];
                        coeff_sites.push(CoeffSite {
                            const_node: node.args()[1],
                            constant: c,
                            site,
                            kind: CoeffKind::DivDenominator,
                            other_mid: r.mid(),
                            other_rad: r.rad(),
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(NaModel {
            gains,
            output_names: dfg.outputs().iter().map(|(n, _)| n.clone()).collect(),
            coeff_sites,
        })
    }

    /// Names of the outputs the gains refer to.
    pub fn output_names(&self) -> &[String] {
        &self.output_names
    }

    /// Number of outputs the per-node gains refer to.
    pub fn n_outputs(&self) -> usize {
        self.output_names.len()
    }

    /// The gains from one node, when it was analyzed.
    pub fn gains_from(&self, node: NodeId) -> Option<&ImpulseGains> {
        self.gains.get(node.index()).and_then(|g| g.as_ref())
    }

    /// The constant-coefficient interaction sites, in inventory order —
    /// the per-node terms incremental evaluators key their updates on.
    pub fn coeff_sites(&self) -> &[CoeffSite] {
        &self.coeff_sites
    }

    /// All *random* bounded sources under `config`, each attached to the
    /// node whose gains it propagates through: the precision-losing
    /// quantization sites plus the coefficient pseudo-sources.
    pub fn shaped_sources(&self, dfg: &Dfg, config: &WlConfig) -> Vec<NoiseSource> {
        let mut out = Vec::new();
        for (id, node) in dfg.nodes() {
            if matches!(node.op(), Op::Const(_)) {
                continue;
            }
            if self.gains[id.index()].is_none() || !dfg.introduces_noise(id, config) {
                continue;
            }
            out.push(NoiseSource::for_quantizer(id, config.quantizer(id)));
        }
        for cs in &self.coeff_sites {
            let delta = cs.delta(config.quantizer(cs.const_node));
            if delta == 0.0 {
                continue;
            }
            out.push(cs.source_for_delta(delta));
        }
        out
    }

    /// Deterministic constant offsets under `config`, attached to the
    /// constant node whose (linear) gains they propagate through.
    pub fn deterministic_offsets(&self, dfg: &Dfg, config: &WlConfig) -> Vec<(NodeId, f64)> {
        let mut out = Vec::new();
        for (id, node) in dfg.nodes() {
            if let Op::Const(c) = node.op() {
                if self.gains[id.index()].is_none() {
                    continue;
                }
                let offset = config.quantizer(id).quantize(c) - c;
                if offset != 0.0 {
                    out.push((id, offset));
                }
            }
        }
        out
    }

    /// Evaluates output noise under a word-length configuration:
    /// moments-only reports (mean, variance, worst-case bounds), one per
    /// output.
    pub fn evaluate(&self, dfg: &Dfg, config: &WlConfig) -> Vec<(String, NoiseReport)> {
        let n_out = self.output_names.len();
        let mut mean = vec![0.0; n_out];
        let mut variance = vec![0.0; n_out];
        let mut lo = vec![0.0; n_out];
        let mut hi = vec![0.0; n_out];
        for src in self.shaped_sources(dfg, config) {
            let g = self.gains[src.node.index()]
                .as_ref()
                .expect("shaped sources refer to analyzed nodes");
            for k in 0..n_out {
                let og = g.per_output[k];
                // Per-tap extremal split: P = Σ max(h,0), N = Σ min(h,0).
                let p = 0.5 * (og.l1 + og.dc);
                let n = 0.5 * (og.dc - og.l1);
                let a = src.offset - src.half_width;
                let b = src.offset + src.half_width;
                mean[k] += src.offset * og.dc;
                variance[k] += src.variance() * og.l2_squared;
                lo[k] += a * p + b * n;
                hi[k] += b * p + a * n;
            }
        }
        for (node, offset) in self.deterministic_offsets(dfg, config) {
            let g = self.gains[node.index()]
                .as_ref()
                .expect("offsets refer to analyzed nodes");
            for k in 0..n_out {
                let contrib = offset * g.per_output[k].dc;
                mean[k] += contrib;
                lo[k] += contrib;
                hi[k] += contrib;
            }
        }
        self.output_names
            .iter()
            .enumerate()
            .map(|(k, name)| {
                (
                    name.clone(),
                    NoiseReport::from_moments(mean[k], variance[k], (lo[k], hi[k])),
                )
            })
            .collect()
    }

    /// Total output noise power (`Σ power` across outputs) — the scalar the
    /// optimizer constrains.
    pub fn total_power(&self, dfg: &Dfg, config: &WlConfig) -> f64 {
        self.evaluate(dfg, config)
            .iter()
            .map(|(_, r)| r.power)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sna_dfg::DfgBuilder;
    use sna_fixp::{monte_carlo_error, MonteCarloOptions};

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn combinational_na_matches_monte_carlo() {
        let mut b = DfgBuilder::new();
        let x1 = b.input("x1");
        let x2 = b.input("x2");
        let t1 = b.mul_const(0.3, x1);
        let t2 = b.mul_const(0.6, x2);
        let y = b.add(t1, t2);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0), iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 10).unwrap();
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let predicted = &model.evaluate(&g, &cfg)[0].1;
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 50_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        let ratio = predicted.variance / measured.variance;
        assert!(ratio > 0.5 && ratio < 2.0, "variance ratio {ratio}");
        assert!(
            predicted.support.0 <= measured.min,
            "lo: predicted {} measured {}",
            predicted.support.0,
            measured.min
        );
        assert!(
            predicted.support.1 >= measured.max,
            "hi: predicted {} measured {}",
            predicted.support.1,
            measured.max
        );
    }

    #[test]
    fn coefficient_rounding_is_captured() {
        // y = 0.3·x with a *coarse* constant: the dominant error is ec·x.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let y = b.mul_const(0.3, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 6).unwrap();
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let predicted = &model.evaluate(&g, &cfg)[0].1;
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 40_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        assert!(predicted.support.0 <= measured.min);
        assert!(predicted.support.1 >= measured.max);
        let ratio = predicted.variance / measured.variance;
        assert!(ratio > 0.4 && ratio < 2.5, "variance ratio {ratio}");
    }

    #[test]
    fn iir_feedback_amplifies_noise() {
        let mk = |pole: f64| {
            let mut b = DfgBuilder::new();
            let x = b.input("x");
            let fb = b.delay_placeholder();
            let t = b.mul_const(pole, fb);
            let y = b.add(x, t);
            b.bind_delay(fb, y).unwrap();
            b.output("y", y);
            b.build().unwrap()
        };
        let sharp = mk(0.9);
        let soft = mk(0.1);
        let ranges = [iv(-0.05, 0.05)];
        let cfg_sharp = WlConfig::from_ranges(&sharp, &ranges, 12).unwrap();
        let cfg_soft = WlConfig::from_ranges(&soft, &ranges, 12).unwrap();
        let m_sharp = NaModel::build(&sharp, &ranges, &LtiOptions::default()).unwrap();
        let m_soft = NaModel::build(&soft, &ranges, &LtiOptions::default()).unwrap();
        let v_sharp = m_sharp.evaluate(&sharp, &cfg_sharp)[0].1.variance;
        let v_soft = m_soft.evaluate(&soft, &cfg_soft)[0].1.variance;
        assert!(
            v_sharp > 2.0 * v_soft,
            "sharp pole must amplify noise: {v_sharp} vs {v_soft}"
        );
    }

    #[test]
    fn evaluate_is_cheap_after_build() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let t = b.mul_const(0.5, x);
        let y = b.add(t, x);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let mut last = f64::INFINITY;
        for w in (6..=24).rev() {
            let cfg = WlConfig::from_ranges(&g, &ranges, w).unwrap();
            let p = model.total_power(&g, &cfg);
            if w < 24 {
                assert!(p > last, "power must grow as w shrinks (w={w})");
            }
            last = p;
        }
    }

    #[test]
    fn additive_constants_shift_the_output_deterministically() {
        // y = x + 0.3 at a very coarse format: the rounded 0.3 biases y.
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let c = b.constant(0.3);
        let y = b.add(x, c);
        b.output("y", y);
        let g = b.build().unwrap();
        let ranges = [iv(-1.0, 1.0)];
        let cfg = WlConfig::from_ranges(&g, &ranges, 5).unwrap();
        let model = NaModel::build(&g, &ranges, &LtiOptions::default()).unwrap();
        let predicted = &model.evaluate(&g, &cfg)[0].1;
        // Constant offset: 0.3 in Q0.4 (the tight range-derived format)
        // rounds to 5/16 = 0.3125, a +0.0125 deterministic bias.
        assert!(
            (predicted.mean - 0.0125).abs() < 1e-9,
            "expected the +0.0125 constant bias, got {}",
            predicted.mean
        );
        let measured = &monte_carlo_error(
            &g,
            &cfg,
            &ranges,
            &MonteCarloOptions {
                samples: 20_000,
                ..Default::default()
            },
        )
        .unwrap()[0];
        assert!((predicted.mean - measured.mean).abs() < 0.02);
    }

    #[test]
    fn nonlinear_graph_is_rejected() {
        let mut b = DfgBuilder::new();
        let x = b.input("x");
        let sq = b.mul(x, x);
        b.output("y", sq);
        let g = b.build().unwrap();
        assert!(matches!(
            NaModel::build(&g, &[iv(-1.0, 1.0)], &LtiOptions::default()),
            Err(SnaError::Dfg(_))
        ));
    }
}
